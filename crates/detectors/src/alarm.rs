//! Alarms: what detectors report.
//!
//! An alarm is "a set of traffic features that designates a particular
//! traffic identified by a detector" (paper §2.1.1). The four detector
//! families use four different feature sets, captured by
//! [`AlarmScope`]; the traffic extractor later resolves each scope +
//! time window into concrete packet/flow sets.

use mawilab_model::{FlowKey, Packet, TimeWindow, TrafficRule};
use std::fmt;
use std::net::Ipv4Addr;

/// The four detector families of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DetectorKind {
    /// Sketch + principal-subspace detector.
    Pca,
    /// Sketch + multi-resolution Gamma-model detector.
    Gamma,
    /// Hough-transform line detector.
    Hough,
    /// KL-divergence histogram detector.
    Kl,
}

impl DetectorKind {
    /// All families, in the paper's presentation order.
    pub const ALL: [DetectorKind; 4] = [
        DetectorKind::Pca,
        DetectorKind::Gamma,
        DetectorKind::Hough,
        DetectorKind::Kl,
    ];

    /// Stable index `0..4` (used for vote-table columns).
    pub fn index(self) -> usize {
        match self {
            DetectorKind::Pca => 0,
            DetectorKind::Gamma => 1,
            DetectorKind::Hough => 2,
            DetectorKind::Kl => 3,
        }
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorKind::Pca => write!(f, "PCA"),
            DetectorKind::Gamma => write!(f, "Gamma"),
            DetectorKind::Hough => write!(f, "Hough"),
            DetectorKind::Kl => write!(f, "KL"),
        }
    }
}

/// The three parameter tunings per detector (paper §3.2: "optimal,
/// sensitive or conservative setting").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tuning {
    /// High thresholds — few, high-confidence alarms.
    Conservative,
    /// The middle setting.
    Optimal,
    /// Low thresholds — many alarms, more false positives.
    Sensitive,
}

impl Tuning {
    /// All tunings, conservative first.
    pub const ALL: [Tuning; 3] = [Tuning::Conservative, Tuning::Optimal, Tuning::Sensitive];

    /// Stable index `0..3` within a detector family.
    pub fn index(self) -> usize {
        match self {
            Tuning::Conservative => 0,
            Tuning::Optimal => 1,
            Tuning::Sensitive => 2,
        }
    }
}

impl fmt::Display for Tuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tuning::Conservative => write!(f, "conservative"),
            Tuning::Optimal => write!(f, "optimal"),
            Tuning::Sensitive => write!(f, "sensitive"),
        }
    }
}

/// The traffic features an alarm designates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlarmScope {
    /// All traffic *from* this host (PCA, Gamma-src).
    SrcHost(Ipv4Addr),
    /// All traffic *to* this host (Gamma-dst).
    DstHost(Ipv4Addr),
    /// An explicit set of unidirectional flows (Hough).
    FlowSet(Vec<FlowKey>),
    /// A 4-tuple pattern with wildcards (KL association rules).
    Rule(TrafficRule),
}

impl AlarmScope {
    /// Whether a packet matches the scope's feature constraints
    /// (time is checked separately against the alarm window).
    pub fn matches(&self, p: &Packet) -> bool {
        match self {
            AlarmScope::SrcHost(ip) => p.src == *ip,
            AlarmScope::DstHost(ip) => p.dst == *ip,
            AlarmScope::FlowSet(keys) => keys.contains(&FlowKey::of(p)),
            AlarmScope::Rule(rule) => rule.matches(p),
        }
    }

    /// [`matches`](Self::matches) evaluated on a flow key. Every scope
    /// constrains only 5-tuple fields, so for any packet `p`:
    /// `matches(p) == matches_key(&FlowKey::of(p))`. Deferred
    /// extraction relies on this to match retired `(FlowKey, ts)`
    /// evidence against alarms after the packets are gone.
    pub fn matches_key(&self, k: &FlowKey) -> bool {
        match self {
            AlarmScope::SrcHost(ip) => k.src == *ip,
            AlarmScope::DstHost(ip) => k.dst == *ip,
            AlarmScope::FlowSet(keys) => keys.contains(k),
            AlarmScope::Rule(rule) => rule.matches_key(k),
        }
    }
}

impl fmt::Display for AlarmScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlarmScope::SrcHost(ip) => write!(f, "src {ip}"),
            AlarmScope::DstHost(ip) => write!(f, "dst {ip}"),
            AlarmScope::FlowSet(keys) => write!(f, "{} flows", keys.len()),
            AlarmScope::Rule(r) => write!(f, "rule {r}"),
        }
    }
}

/// One alarm reported by one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// Detector family that raised it.
    pub detector: DetectorKind,
    /// Tuning of the raising configuration.
    pub tuning: Tuning,
    /// Time span the alarm covers.
    pub window: TimeWindow,
    /// Traffic features designated.
    pub scope: AlarmScope,
    /// Detector-specific anomaly score (larger = more anomalous);
    /// comparable only within one configuration.
    pub score: f64,
}

impl Alarm {
    /// Global configuration index `0..12` (detector-major, tuning
    /// minor) — the vote-table column of the raising configuration.
    pub fn config_index(&self) -> usize {
        self.detector.index() * 3 + self.tuning.index()
    }
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {} in {} (score {:.2})",
            self.detector, self.tuning, self.scope, self.window, self.score
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_model::{Protocol, TcpFlags};

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 8, d)
    }

    fn pkt() -> Packet {
        Packet::tcp(100, ip(1), 4000, ip(2), 80, TcpFlags::syn(), 40)
    }

    #[test]
    fn scope_matching_src_dst() {
        assert!(AlarmScope::SrcHost(ip(1)).matches(&pkt()));
        assert!(!AlarmScope::SrcHost(ip(2)).matches(&pkt()));
        assert!(AlarmScope::DstHost(ip(2)).matches(&pkt()));
        assert!(!AlarmScope::DstHost(ip(1)).matches(&pkt()));
    }

    #[test]
    fn scope_matching_flowset_and_rule() {
        let key = FlowKey::of(&pkt());
        assert!(AlarmScope::FlowSet(vec![key]).matches(&pkt()));
        assert!(!AlarmScope::FlowSet(vec![key.reversed()]).matches(&pkt()));
        let rule = TrafficRule {
            dport: Some(80),
            proto: Some(Protocol::Tcp),
            ..Default::default()
        };
        assert!(AlarmScope::Rule(rule).matches(&pkt()));
    }

    #[test]
    fn key_matching_agrees_with_packet_matching_for_every_scope() {
        // The invariant deferred (post-drain) extraction rests on:
        // scopes are pure functions of the 5-tuple, so matching the
        // packet and matching its flow key must never disagree.
        let mut packets = Vec::new();
        for s in 0..4u8 {
            for d in 0..3u8 {
                packets.push(Packet::tcp(
                    7,
                    ip(s),
                    4000 + s as u16,
                    ip(100 + d),
                    if d == 0 { 80 } else { 445 },
                    TcpFlags::syn(),
                    40,
                ));
                packets.push(Packet::udp(9, ip(d), 53, ip(s), 33_000 + s as u16, 90));
            }
        }
        let scopes = [
            AlarmScope::SrcHost(ip(1)),
            AlarmScope::DstHost(ip(101)),
            AlarmScope::FlowSet(vec![FlowKey::of(&packets[0]), FlowKey::of(&packets[5])]),
            AlarmScope::Rule(TrafficRule {
                dport: Some(445),
                ..Default::default()
            }),
            AlarmScope::Rule(TrafficRule {
                src: Some(ip(2)),
                sport: Some(4002),
                proto: Some(Protocol::Tcp),
                ..Default::default()
            }),
            AlarmScope::Rule(TrafficRule::any()),
        ];
        for scope in &scopes {
            for p in &packets {
                assert_eq!(
                    scope.matches(p),
                    scope.matches_key(&FlowKey::of(p)),
                    "scope {scope} disagrees on {p:?}"
                );
            }
        }
    }

    #[test]
    fn config_index_is_bijective_over_families_and_tunings() {
        let mut seen = std::collections::HashSet::new();
        for d in DetectorKind::ALL {
            for t in Tuning::ALL {
                let a = Alarm {
                    detector: d,
                    tuning: t,
                    window: TimeWindow::new(0, 1),
                    scope: AlarmScope::SrcHost(ip(1)),
                    score: 1.0,
                };
                assert!(seen.insert(a.config_index()));
                assert!(a.config_index() < 12);
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn display_is_informative() {
        let a = Alarm {
            detector: DetectorKind::Kl,
            tuning: Tuning::Optimal,
            window: TimeWindow::new(0, 1_000_000),
            scope: AlarmScope::Rule(TrafficRule::dst_port(445, None)),
            score: 3.25,
        };
        let s = a.to_string();
        assert!(s.contains("KL"), "{s}");
        assert!(s.contains("445"), "{s}");
    }
}
