//! Hough-transform detector: line detection in 2-D traffic pictures.
//!
//! Reproduces detector 3 of the paper (§3.2, after Fontugne & Fukuda
//! [14]): traffic is rendered as two scatter pictures — (time ×
//! destination port) and (time × hashed destination address) — in
//! which anomalies appear as *lines*: a SYN flood or heavy transfer is
//! a horizontal line (one port / one host, long duration), a port
//! scan sweeps ports and a worm sweeps addresses, drawing slanted or
//! vertical streaks. The Hough transform votes every active pixel
//! onto the (ρ, θ) parameter plane; accumulator peaks are detected
//! lines, and the alarm is the **set of flows** whose packets drew the
//! line's pixels — the aggregated-flow granularity the paper ascribes
//! to this detector.

use crate::alarm::{Alarm, AlarmScope, DetectorKind, Tuning};
use crate::{ChunkView, Detector, IncrementalDetector};
use mawilab_model::{FlowKey, TimeWindow, TraceMeta};
use std::collections::{HashMap, HashSet};

/// Picture cells: `(x, y)` pixel → (packet count, contributing flow
/// keys). Flow keys are kept so an anomalous line can be resolved
/// back to the exact flows that drew it.
type PictureCells = HashMap<(u16, u16), (u32, HashSet<FlowKey>)>;

/// Which picture a pixel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Picture {
    /// y = destination port (bucketed).
    Port,
    /// y = destination address (hashed).
    Addr,
}

/// The Hough-transform line detector (one configuration).
#[derive(Debug, Clone)]
pub struct HoughDetector {
    tuning: Tuning,
    /// Picture width (time bins).
    time_bins: usize,
    /// Picture height.
    y_bins: usize,
    /// Packets needed to activate a pixel.
    pixel_min: u32,
    /// Accumulator votes needed to accept a line.
    min_line_pixels: usize,
    /// Maximum lines reported per picture.
    max_lines: usize,
    /// Angular resolution of the accumulator.
    n_angles: usize,
    /// ρ resolution of the accumulator.
    rho_bins: usize,
}

impl HoughDetector {
    /// Builds the detector with one of the paper's three tunings.
    pub fn new(tuning: Tuning) -> Self {
        let (pixel_min, min_line_pixels, max_lines) = match tuning {
            Tuning::Conservative => (4, 40, 10),
            Tuning::Optimal => (3, 26, 18),
            Tuning::Sensitive => (2, 14, 28),
        };
        HoughDetector {
            tuning,
            time_bins: 120,
            y_bins: 1024,
            pixel_min,
            min_line_pixels,
            max_lines,
            n_angles: 24,
            rho_bins: 256,
        }
    }

    /// Pixel of one packet in one picture.
    fn pixel(
        &self,
        picture: Picture,
        window_start_us: u64,
        bin_us: u64,
        p: &mawilab_model::Packet,
    ) -> (u16, u16) {
        let x =
            ((p.ts_us.saturating_sub(window_start_us) / bin_us) as usize).min(self.time_bins - 1);
        let y = match picture {
            Picture::Port => (p.dport as usize * self.y_bins) >> 16, // port/64
            Picture::Addr => (u32::from(p.dst).wrapping_mul(2_654_435_761) as usize) % self.y_bins,
        };
        (x as u16, y as u16)
    }

    fn finish_picture(
        &self,
        window: TimeWindow,
        bin_us: u64,
        cells: &PictureCells,
        out: &mut Vec<Alarm>,
    ) {
        // Per-row (y) baseline: the median count across all time bins
        // of the row, zeros included. A pixel is *anomalous* only when
        // it exceeds the baseline by `pixel_min` — constant service
        // rows (port 80 HTTP, popular hosts) have a high baseline and
        // stop producing always-on false lines, while transient
        // floods/scans rise far above their row's median.
        let mut row_counts: HashMap<u16, Vec<u32>> = HashMap::new();
        for (&(_, y), (c, _)) in cells {
            row_counts.entry(y).or_default().push(*c);
        }
        let mut row_median: HashMap<u16, u32> = HashMap::new();
        for (y, mut counts) in row_counts {
            let zeros = self.time_bins.saturating_sub(counts.len());
            let mid = self.time_bins / 2;
            let med = if zeros > mid {
                0
            } else {
                counts.sort_unstable();
                counts[mid - zeros]
            };
            row_median.insert(y, med);
        }
        // Active pixels in a deterministic order.
        let mut pixels: Vec<((u16, u16), &HashSet<FlowKey>)> = cells
            .iter()
            .filter(|(&(_, y), (c, _))| {
                c.saturating_sub(*row_median.get(&y).unwrap_or(&0)) >= self.pixel_min
            })
            .map(|(k, (_, flows))| (*k, flows))
            .collect();
        pixels.sort_by_key(|(k, _)| *k);
        if pixels.len() < self.min_line_pixels {
            return;
        }

        // Hough accumulation in normalised [0,1]² coordinates.
        // ρ ∈ [-1, √2] for θ ∈ [0, π).
        let rho_min = -1.0f64;
        let rho_span = 1.0 + std::f64::consts::SQRT_2;
        let rho_step = rho_span / self.rho_bins as f64;
        let angles: Vec<(f64, f64)> = (0..self.n_angles)
            .map(|i| {
                let th = std::f64::consts::PI * i as f64 / self.n_angles as f64;
                (th.cos(), th.sin())
            })
            .collect();
        let mut acc: HashMap<(u16, u16), u32> = HashMap::new();
        let coord = |(x, y): (u16, u16)| {
            (
                (x as f64 + 0.5) / self.time_bins as f64,
                (y as f64 + 0.5) / self.y_bins as f64,
            )
        };
        for &(px, _) in &pixels {
            let (xn, yn) = coord(px);
            for (ai, &(c, s)) in angles.iter().enumerate() {
                let rho = xn * c + yn * s;
                let ri = (((rho - rho_min) / rho_step) as usize).min(self.rho_bins - 1);
                *acc.entry((ai as u16, ri as u16)).or_insert(0) += 1;
            }
        }

        // Peak extraction with simple non-maximum suppression.
        let mut peaks: Vec<((u16, u16), u32)> = acc
            .iter()
            .filter(|(_, &v)| v as usize >= self.min_line_pixels)
            .map(|(&k, &v)| (k, v))
            .collect();
        peaks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut taken: Vec<(u16, u16)> = Vec::new();
        let mut used_pixels: HashSet<(u16, u16)> = HashSet::new();
        for (key, votes) in peaks {
            if taken.len() >= self.max_lines {
                break;
            }
            let near_existing = taken.iter().any(|&(a, r)| {
                (a as i32 - key.0 as i32).abs() <= 1 && (r as i32 - key.1 as i32).abs() <= 2
            });
            if near_existing {
                continue;
            }
            // Gather this line's pixels.
            let (c, s) = angles[key.0 as usize];
            let mut flows: HashSet<FlowKey> = HashSet::new();
            let mut x_min = u16::MAX;
            let mut x_max = 0u16;
            let mut fresh = 0usize;
            for &(px, flowset) in &pixels {
                let (xn, yn) = coord(px);
                let rho = xn * c + yn * s;
                let ri = (((rho - rho_min) / rho_step) as usize).min(self.rho_bins - 1);
                if ri as u16 == key.1 {
                    flows.extend(flowset.iter().copied());
                    x_min = x_min.min(px.0);
                    x_max = x_max.max(px.0);
                    if used_pixels.insert(px) {
                        fresh += 1;
                    }
                }
            }
            // Require the line to be mostly new pixels; otherwise it is
            // a re-description of an already-reported line.
            if fresh * 2 < self.min_line_pixels {
                continue;
            }
            taken.push(key);
            let mut keys: Vec<FlowKey> = flows.into_iter().collect();
            keys.sort();
            keys.truncate(5_000);
            out.push(Alarm {
                detector: DetectorKind::Hough,
                tuning: self.tuning,
                window: TimeWindow::new(
                    window.start_us + x_min as u64 * bin_us,
                    (window.start_us + (x_max as u64 + 1) * bin_us).min(window.end_us),
                ),
                scope: AlarmScope::FlowSet(keys),
                score: votes as f64 / self.min_line_pixels as f64,
            });
        }
    }
}

impl Detector for HoughDetector {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Hough
    }

    fn tuning(&self) -> Tuning {
        self.tuning
    }

    fn incremental(&self) -> Box<dyn IncrementalDetector> {
        Box::new(HoughAccumulator {
            det: self.clone(),
            window: None,
            bin_us: 1,
            seen: 0,
            pictures: [
                (Picture::Port, HashMap::new()),
                (Picture::Addr, HashMap::new()),
            ],
        })
    }
}

/// Incremental form of [`HoughDetector`]: chunk observation paints
/// packets into the two sparse pictures (pixel → count + contributing
/// flow keys, keyed by absolute time bin); the Hough transform and
/// peak extraction run once at finish.
pub struct HoughAccumulator {
    det: HoughDetector,
    window: Option<TimeWindow>,
    bin_us: u64,
    seen: u64,
    pictures: [(Picture, PictureCells); 2],
}

impl IncrementalDetector for HoughAccumulator {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Hough
    }

    fn tuning(&self) -> Tuning {
        self.det.tuning
    }

    fn begin(&mut self, meta: &TraceMeta) {
        let window = meta.window();
        self.window = Some(window);
        self.bin_us = (window.len_us() / self.det.time_bins as u64).max(1);
        self.seen = 0;
        for (_, cells) in &mut self.pictures {
            cells.clear();
        }
    }

    fn observe(&mut self, chunk: &ChunkView<'_>) {
        let window = self.window.expect("observe before begin"); // lint:allow(panic-free-data-plane): begin() runs before observe() in the chunk driver
        self.seen += chunk.packets.len() as u64;
        for p in chunk.packets {
            let key = FlowKey::of(p);
            for (picture, cells) in &mut self.pictures {
                let px = self.det.pixel(*picture, window.start_us, self.bin_us, p);
                let cell = cells.entry(px).or_default();
                cell.0 += 1;
                cell.1.insert(key);
            }
        }
    }

    fn finish(&mut self) -> Vec<Alarm> {
        let mut out = Vec::new();
        if self.seen == 0 {
            return out;
        }
        let window = self.window.expect("finish before begin"); // lint:allow(panic-free-data-plane): begin() runs before finish() in the chunk driver
        for (_, cells) in &self.pictures {
            self.det
                .finish_picture(window, self.bin_us, cells, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceView;
    use mawilab_model::{FlowTable, Protocol};
    use mawilab_synth::{AnomalySpec, SynthConfig, TraceGenerator};

    fn run(tuning: Tuning, cfg: SynthConfig) -> (Vec<Alarm>, mawilab_synth::LabeledTrace) {
        let lt = TraceGenerator::new(cfg).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms = HoughDetector::new(tuning).analyze(&TraceView::new(&lt.trace, &flows));
        (alarms, lt)
    }

    fn worm() -> SynthConfig {
        SynthConfig::default()
            .with_seed(303)
            .with_anomalies(vec![AnomalySpec::SasserWorm {
                infected: 2,
                scans: 1500,
                rate_pps: 60.0,
            }])
    }

    #[test]
    fn detects_worm_sweep_as_flow_set() {
        let (alarms, lt) = run(Tuning::Sensitive, worm());
        assert!(!alarms.is_empty());
        let infected = lt.truth.anomalies()[0].rule.src.unwrap();
        // Some alarm's flow set must contain flows from the worm.
        let hit = alarms.iter().any(|a| match &a.scope {
            AlarmScope::FlowSet(keys) => {
                keys.iter()
                    .filter(|k| k.src == infected && k.dport == 445)
                    .count()
                    > 20
            }
            _ => false,
        });
        assert!(
            hit,
            "no alarm captured the 445 sweep; {} alarms",
            alarms.len()
        );
    }

    #[test]
    fn detects_port_scan_line() {
        let cfg =
            SynthConfig::default()
                .with_seed(304)
                .with_anomalies(vec![AnomalySpec::PortScan {
                    scanner: 1,
                    victim: 3,
                    ports: 3000,
                    rate_pps: 120.0,
                }]);
        let (alarms, lt) = run(Tuning::Sensitive, cfg);
        let scanner = lt.truth.anomalies()[0].rule.src.unwrap();
        let hit = alarms.iter().any(|a| match &a.scope {
            AlarmScope::FlowSet(keys) => keys.iter().filter(|k| k.src == scanner).count() > 50,
            _ => false,
        });
        assert!(hit, "scan not captured; {} alarms", alarms.len());
    }

    #[test]
    fn flood_appears_as_horizontal_line() {
        let cfg =
            SynthConfig::default()
                .with_seed(305)
                .with_anomalies(vec![AnomalySpec::PingFlood {
                    src: 2,
                    dst: 4,
                    rate_pps: 250.0,
                    duration_s: 30.0,
                }]);
        let (alarms, lt) = run(Tuning::Optimal, cfg);
        let src = lt.truth.anomalies()[0].rule.src.unwrap();
        let hit = alarms.iter().any(|a| match &a.scope {
            AlarmScope::FlowSet(keys) => keys
                .iter()
                .any(|k| k.src == src && k.proto == Protocol::Icmp),
            _ => false,
        });
        assert!(hit, "flood line missed");
    }

    #[test]
    fn all_alarms_are_flow_sets_with_nonempty_keys() {
        let (alarms, _) = run(Tuning::Sensitive, worm());
        for a in &alarms {
            match &a.scope {
                AlarmScope::FlowSet(keys) => assert!(!keys.is_empty()),
                other => panic!("unexpected scope {other:?}"),
            }
            assert_eq!(a.detector, DetectorKind::Hough);
        }
    }

    #[test]
    fn sensitive_finds_at_least_conservative() {
        let (sens, _) = run(Tuning::Sensitive, worm());
        let (cons, _) = run(Tuning::Conservative, worm());
        assert!(sens.len() >= cons.len());
    }

    #[test]
    fn line_count_is_capped() {
        let d = HoughDetector::new(Tuning::Sensitive);
        let (alarms, _) = run(Tuning::Sensitive, SynthConfig::default().with_seed(306));
        assert!(alarms.len() <= 2 * d.max_lines, "{} alarms", alarms.len());
    }

    #[test]
    fn deterministic() {
        let (a, _) = run(Tuning::Optimal, worm());
        let (b, _) = run(Tuning::Optimal, worm());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_is_silent() {
        let lt = TraceGenerator::new(
            SynthConfig::default()
                .with_seed(1)
                .with_background_pps(0.000001)
                .with_anomalies(vec![]),
        )
        .generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms =
            HoughDetector::new(Tuning::Sensitive).analyze(&TraceView::new(&lt.trace, &flows));
        assert!(alarms.is_empty());
    }
}
