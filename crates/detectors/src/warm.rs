//! Warm-start detector priors: exponentially-decaying baselines
//! carried from one day to the next.
//!
//! The archive days are short (60 s synthetic windows), so the robust
//! per-day baselines the detectors estimate — PCA residual-energy
//! median/MAD plus per-coordinate spreads, Gamma reference
//! trajectories, KL divergence-series median/MAD — are small-sample
//! statistics with real day-to-day variance. A warm-started run blends
//! today's estimate with yesterday's carried prior:
//!
//! ```text
//! baseline = (1 − decay) · today + decay · prior
//! ```
//!
//! and exports the blended value as tomorrow's prior, so a day that
//! happened `j` days ago contributes weight `decay^j` — an EWMA over
//! the day series. `decay = 0` reproduces the cold per-day estimate
//! bit for bit (the blend is skipped entirely, not multiplied out), so
//! the cold pipeline remains the byte-identity oracle for warm runs.
//!
//! Priors are *shape-checked* on use: a prior whose vector dimensions
//! do not match today's accumulator layout (different sketch geometry,
//! different trace length regime) is ignored rather than misapplied.

/// One EWMA step: today's estimate pulled toward the carried prior.
/// Callers must skip the call when no prior applies — `blend(x, p,
/// 0.0)` is mathematically `x` but not guaranteed bitwise so.
pub fn blend(today: f64, prior: f64, decay: f64) -> f64 {
    (1.0 - decay) * today + decay * prior
}

/// A carried baseline for one detector configuration, exported by
/// [`IncrementalDetector::export_prior`](crate::IncrementalDetector::export_prior)
/// after a day finishes and fed to the next day via
/// [`IncrementalDetector::warm_begin`](crate::IncrementalDetector::warm_begin).
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorPrior {
    /// PCA residual baselines, per sketch row.
    Pca(PcaPrior),
    /// Gamma reference trajectories, per (direction, sketch row).
    Gamma(GammaPrior),
    /// KL divergence-series baselines, per monitored feature.
    Kl(KlPrior),
}

/// PCA residual-energy and per-coordinate baselines for one sketch row.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaRowPrior {
    /// Median residual energy over time bins.
    pub e_med: f64,
    /// MAD of the residual energy (already floored at 1e-9).
    pub e_mad: f64,
    /// Per-sketch-bin residual MAD (localisation spread).
    pub coord_sigma: Vec<f64>,
}

/// PCA baselines for all sketch rows of one configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PcaPrior {
    /// Indexed by sketch row.
    pub rows: Vec<PcaRowPrior>,
}

/// Gamma reference trajectory (per-coordinate median and MAD over
/// sketch bins) for one (direction, sketch row) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaRowPrior {
    /// Per-coordinate median of the `[α, ln β]` trajectory.
    pub med: Vec<f64>,
    /// Per-coordinate MAD of the trajectory.
    pub scale: Vec<f64>,
}

/// Gamma baselines for all (direction, row) pairs of one
/// configuration, direction-major (`dir * sketch_rows + row`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GammaPrior {
    /// Indexed `dir * sketch_rows + row` (Src rows first).
    pub rows: Vec<GammaRowPrior>,
}

/// KL divergence-series baselines, one `(median, MAD)` per monitored
/// feature in declaration order (src addr, dst addr, src port, dst
/// port).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KlPrior {
    /// `(median, MAD)` of the inter-bin divergence series.
    pub features: Vec<(f64, f64)>,
}
