//! PCA-based detector: random-projection sketches + principal-subspace
//! residuals.
//!
//! Reproduces the sketch-assisted subspace method the paper uses as
//! detector 1 (§3.2, after Lakhina et al. [21], Li et al. [23] and
//! Kanda et al. [18]):
//!
//! 1. source addresses are hashed into `M` sketch bins under `H`
//!    independent hash functions;
//! 2. per hash row, the time×bin packet-count matrix is modelled by
//!    PCA — the top-k principal components span the *normal subspace*;
//! 3. time bins whose residual energy exceeds a Q-statistic threshold
//!    are anomalous; within them, sketch bins with outlying residual
//!    coordinates are flagged;
//! 4. a source IP is *identified* when its bin is flagged in **every**
//!    hash row (the sketch reversal of [23]), which is what lets this
//!    detector report host-granularity alarms at all.
//!
//! The PCA detector is deliberately the twitchiest of the four — the
//! paper finds it produces by far the most unrelated single-alarm
//! communities (Fig. 5) — so its sensitive tuning flags aggressively.

use crate::alarm::{Alarm, AlarmScope, DetectorKind, Tuning};
use crate::warm::{blend, DetectorPrior, PcaPrior, PcaRowPrior};
use crate::{ChunkView, Detector, IncrementalDetector};
use mawilab_linalg::pca::{ColumnScaling, PcaComponents};
use mawilab_linalg::{Matrix, Pca};
use mawilab_model::{TimeWindow, TraceMeta};
use mawilab_sketch::SketchFamily;
use mawilab_stats::{mad, median};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// The sketch + principal-subspace detector (one configuration).
#[derive(Debug, Clone)]
pub struct PcaDetector {
    tuning: Tuning,
    /// Time-bin width in microseconds.
    bin_us: u64,
    /// Sketch width (bins per hash row).
    sketch_width: usize,
    /// Independent hash rows.
    sketch_rows: usize,
    /// Principal components retained (normal subspace dimension).
    components: usize,
    /// Threshold multiplier over residual mean/stddev.
    threshold: f64,
    /// Hash-family seed (fixed: detectors must be reproducible).
    seed: u64,
}

impl PcaDetector {
    /// Builds the detector with one of the paper's three tunings.
    pub fn new(tuning: Tuning) -> Self {
        // Deliberately twitchy thresholds: the paper's PCA detector is
        // by far the noisiest of the ensemble (Fig. 5 — it owns most
        // single-alarm communities), and that noise is what SCANN is
        // shown to filter out.
        let (components, threshold) = match tuning {
            Tuning::Conservative => (4, 2.8),
            Tuning::Optimal => (3, 2.1),
            Tuning::Sensitive => (2, 1.5),
        };
        PcaDetector {
            tuning,
            bin_us: 2_000_000,
            sketch_width: 24,
            sketch_rows: 3,
            components,
            threshold,
            seed: 0x50CA_0001,
        }
    }
}

impl PcaDetector {
    /// Robust subspace fit: a first PCA pass marks observations that
    /// are outlying either *along* the principal axes (score distance)
    /// or *orthogonal* to them (residual distance); the subspace is
    /// then refit without those rows. Without this, a large anomaly
    /// rotates the top components onto itself and hides in the normal
    /// subspace — the contamination effect the paper discusses via
    /// Ringberg et al. [30] and Rubinstein et al.'s ANTIDOTE [31].
    fn robust_fit(&self, m: &Matrix) -> Pca {
        let k = PcaComponents::Count(self.components);
        let first = Pca::fit_scaled(m, k, ColumnScaling::Poisson);
        let n = m.rows();
        let scores: Vec<Vec<f64>> = (0..n).map(|t| first.transform(m.row(t))).collect();
        let energies: Vec<f64> = (0..n)
            .map(|t| first.residual(m.row(t)).iter().map(|x| x * x).sum())
            .collect();
        // Combined outlyingness: robust z-score along each principal
        // axis (catches anomalies the axes rotated onto) and of the
        // residual energy (catches everything else).
        let dims = scores.first().map_or(0, Vec::len);
        let mut axis_stats = Vec::with_capacity(dims);
        for d in 0..dims {
            let col: Vec<f64> = scores.iter().map(|s| s[d]).collect();
            axis_stats.push((median(&col), mad(&col).max(1e-9)));
        }
        let (e_med, e_mad) = (median(&energies), mad(&energies).max(1e-9));
        let outlyingness: Vec<f64> = (0..n)
            .map(|t| {
                let score_z = axis_stats
                    .iter()
                    .enumerate()
                    .map(|(d, &(med, s))| (scores[t][d] - med).abs() / s)
                    .fold(0.0, f64::max);
                let energy_z = (energies[t] - e_med).abs() / e_mad;
                score_z.max(energy_z)
            })
            .collect();
        // Rank-trim: refit on the cleanest 70% of the observations.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            outlyingness[a]
                .partial_cmp(&outlyingness[b])
                .expect("NaN outlyingness") // lint:allow(panic-free-data-plane): outlyingness is a sum of squares of finite projections
        });
        let keep_n = ((n * 7) / 10).max(self.components + 2).min(n);
        let mut keep: Vec<usize> = order[..keep_n].to_vec();
        keep.sort_unstable();
        if keep.len() < n {
            let rows: Vec<Vec<f64>> = keep.iter().map(|&t| m.row(t).to_vec()).collect();
            Pca::fit_scaled(&Matrix::from_rows(&rows), k, ColumnScaling::Poisson)
        } else {
            first
        }
    }
}

impl Detector for PcaDetector {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Pca
    }

    fn tuning(&self) -> Tuning {
        self.tuning
    }

    fn incremental(&self) -> Box<dyn IncrementalDetector> {
        Box::new(PcaAccumulator {
            det: self.clone(),
            window: None,
            t_bins: 0,
            seen: 0,
            sketch: None,
            counts: Vec::new(),
            active: Vec::new(),
            warm: None,
            export: None,
        })
    }
}

/// Incremental form of [`PcaDetector`]: chunk observation folds
/// packets into per-row time×bin count matrices keyed by absolute
/// time bin; the robust subspace fit and sketch reversal run once at
/// finish.
pub struct PcaAccumulator {
    det: PcaDetector,
    window: Option<TimeWindow>,
    t_bins: usize,
    seen: u64,
    sketch: Option<SketchFamily>,
    counts: Vec<Matrix>,
    active: Vec<HashSet<u32>>,
    /// Carried baselines + decay weight; `None` = cold start.
    warm: Option<(PcaPrior, f64)>,
    /// Updated baselines, filled by `finish` for `export_prior`.
    export: Option<PcaPrior>,
}

impl IncrementalDetector for PcaAccumulator {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Pca
    }

    fn tuning(&self) -> Tuning {
        self.det.tuning
    }

    fn begin(&mut self, meta: &TraceMeta) {
        let window = meta.window();
        self.window = Some(window);
        self.t_bins = (window.len_us() / self.det.bin_us) as usize;
        self.seen = 0;
        self.warm = None;
        self.export = None;
        if self.t_bins < 4 {
            self.sketch = None;
            self.counts = Vec::new();
            self.active = Vec::new();
        } else {
            self.sketch = Some(SketchFamily::new(
                self.det.sketch_rows,
                self.det.sketch_width,
                self.det.seed,
            ));
            self.counts =
                vec![Matrix::zeros(self.t_bins, self.det.sketch_width); self.det.sketch_rows];
            self.active = vec![HashSet::new(); self.t_bins];
        }
    }

    fn observe(&mut self, chunk: &ChunkView<'_>) {
        let Some(sketch) = &self.sketch else { return };
        let window = self.window.expect("observe before begin"); // lint:allow(panic-free-data-plane): begin() runs before observe() in the chunk driver
        self.seen += chunk.packets.len() as u64;
        for p in chunk.packets {
            // Packets stamped outside the nominal window (clock skew
            // in real captures) are skipped.
            let Some(dt) = p.ts_us.checked_sub(window.start_us) else {
                continue;
            };
            let t = (dt / self.det.bin_us) as usize;
            if t >= self.t_bins {
                continue;
            }
            let key = u32::from(p.src) as u64;
            for (row, m) in self.counts.iter_mut().enumerate() {
                m[(t, sketch.bin(row, key))] += 1.0;
            }
            self.active[t].insert(u32::from(p.src));
        }
    }

    fn finish(&mut self) -> Vec<Alarm> {
        let (Some(sketch), Some(window)) = (&self.sketch, self.window) else {
            return Vec::new();
        };
        if self.seen == 0 {
            return Vec::new();
        }
        let warm = self.warm.as_ref().map(|(p, w)| (p, *w));
        let (alarms, export) = self.det.finish_analysis(
            sketch,
            window,
            self.t_bins,
            &self.counts,
            &self.active,
            warm,
        );
        self.export = Some(export);
        alarms
    }

    fn warm_begin(&mut self, meta: &TraceMeta, prior: Option<&DetectorPrior>, decay: f64) {
        self.begin(meta);
        if decay > 0.0 {
            if let Some(DetectorPrior::Pca(p)) = prior {
                self.warm = Some((p.clone(), decay));
            }
        }
    }

    fn export_prior(&mut self) -> Option<DetectorPrior> {
        self.export.take().map(DetectorPrior::Pca)
    }
}

impl PcaDetector {
    /// The batch analysis over fully accumulated sketch state. When a
    /// carried prior is supplied, the per-row baselines (energy
    /// median/MAD, coordinate spreads) are EWMA-blended with it before
    /// thresholding; the blended baselines are returned as the next
    /// day's prior either way.
    #[allow(clippy::too_many_arguments)]
    fn finish_analysis(
        &self,
        sketch: &SketchFamily,
        window: TimeWindow,
        t_bins: usize,
        counts: &[Matrix],
        active: &[HashSet<u32>],
        warm: Option<(&PcaPrior, f64)>,
    ) -> (Vec<Alarm>, PcaPrior) {
        // Per row: subspace fit → flagged (time, bin) pairs.
        // flagged[row][t] = boolean bin vector (empty Vec = untouched).
        let mut flagged: Vec<Vec<Vec<bool>>> = vec![vec![Vec::new(); t_bins]; self.sketch_rows];
        let mut bin_scores = vec![0.0f64; t_bins];
        let mut export = PcaPrior::default();
        for (row, m) in counts.iter().enumerate() {
            let pca = self.robust_fit(m);
            let residuals: Vec<Vec<f64>> = (0..t_bins).map(|t| pca.residual(m.row(t))).collect();
            let energies: Vec<f64> = residuals
                .iter()
                .map(|e| e.iter().map(|x| x * x).sum())
                .collect();
            // Today's baselines: robust Q-statistic center/spread and
            // per-coordinate spreads for localisation.
            let e_med = median(&energies);
            let e_mad = mad(&energies).max(1e-9);
            let coord_sigma: Vec<f64> = (0..self.sketch_width)
                .map(|j| {
                    let col: Vec<f64> = residuals.iter().map(|e| e[j]).collect();
                    mad(&col)
                })
                .collect();
            // Blend with the carried prior when one applies
            // (shape-checked); cold runs keep today's values bitwise.
            let prior_row = warm
                .and_then(|(p, _)| p.rows.get(row))
                .filter(|pr| pr.coord_sigma.len() == self.sketch_width);
            let (e_med, e_mad, coord_sigma) = match (prior_row, warm) {
                (Some(pr), Some((_, w))) => (
                    blend(e_med, pr.e_med, w),
                    blend(e_mad, pr.e_mad, w),
                    coord_sigma
                        .iter()
                        .zip(&pr.coord_sigma)
                        .map(|(&t, &p)| blend(t, p, w))
                        .collect(),
                ),
                _ => (e_med, e_mad, coord_sigma),
            };
            // Robust Q-statistic threshold: median + λ·MAD, so the
            // anomaly cannot inflate its own detection threshold.
            let q_thr = e_med + self.threshold * e_mad;
            export.rows.push(PcaRowPrior {
                e_med,
                e_mad,
                coord_sigma: coord_sigma.clone(),
            });
            for t in 0..t_bins {
                if energies[t] <= q_thr || q_thr == 0.0 {
                    continue;
                }
                let mut bins = vec![false; self.sketch_width];
                let mut any = false;
                for j in 0..self.sketch_width {
                    if coord_sigma[j] > 0.0
                        && residuals[t][j].abs() > self.threshold * coord_sigma[j]
                    {
                        bins[j] = true;
                        any = true;
                    }
                }
                if any {
                    flagged[row][t] = bins;
                    bin_scores[t] = bin_scores[t].max(energies[t] / (q_thr + 1e-12));
                }
            }
        }

        // Identification: a source is reported in bin t when all rows
        // flagged the bin it hashes into.
        let mut per_ip_bins: HashMap<Ipv4Addr, Vec<usize>> = HashMap::new();
        for t in 0..t_bins {
            if flagged.iter().any(|rows| rows[t].is_empty()) {
                continue;
            }
            let flag_vecs: Vec<Vec<bool>> = (0..self.sketch_rows)
                .map(|r| flagged[r][t].clone())
                .collect();
            let candidates = active[t].iter().map(|&ip| ip as u64);
            for key in sketch.identify(candidates, &flag_vecs) {
                per_ip_bins
                    .entry(Ipv4Addr::from(key as u32))
                    .or_default()
                    .push(t);
            }
        }

        // Merge adjacent bins of the same source into single alarms.
        let mut alarms = Vec::new();
        let mut ips: Vec<_> = per_ip_bins.into_iter().collect();
        ips.sort_by_key(|(ip, _)| u32::from(*ip));
        for (ip, mut bins) in ips {
            bins.sort_unstable();
            let mut start = bins[0];
            let mut prev = bins[0];
            let mut score: f64 = bin_scores[bins[0]];
            let flush = |s: usize, e: usize, score: f64, alarms: &mut Vec<Alarm>| {
                alarms.push(Alarm {
                    detector: DetectorKind::Pca,
                    tuning: self.tuning,
                    window: TimeWindow::new(
                        window.start_us + s as u64 * self.bin_us,
                        window.start_us + (e + 1) as u64 * self.bin_us,
                    ),
                    scope: AlarmScope::SrcHost(ip),
                    score,
                });
            };
            for &b in &bins[1..] {
                if b == prev + 1 {
                    prev = b;
                    score = score.max(bin_scores[b]);
                } else {
                    flush(start, prev, score, &mut alarms);
                    start = b;
                    prev = b;
                    score = bin_scores[b];
                }
            }
            flush(start, prev, score, &mut alarms);
        }
        (alarms, export)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceView;
    use mawilab_model::FlowTable;
    use mawilab_synth::{AnomalySpec, SynthConfig, TraceGenerator};

    fn analyze(tuning: Tuning, cfg: SynthConfig) -> (Vec<Alarm>, mawilab_synth::LabeledTrace) {
        let lt = TraceGenerator::new(cfg).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms = PcaDetector::new(tuning).analyze(&TraceView::new(&lt.trace, &flows));
        (alarms, lt)
    }

    fn flood_config() -> SynthConfig {
        SynthConfig::default()
            .with_seed(101)
            .with_anomalies(vec![AnomalySpec::PingFlood {
                src: 0,
                dst: 1,
                rate_pps: 400.0,
                duration_s: 12.0,
            }])
    }

    #[test]
    fn detects_a_heavy_flood_source() {
        let (alarms, lt) = analyze(Tuning::Sensitive, flood_config());
        assert!(!alarms.is_empty(), "no alarms at all");
        let flood_src = lt.truth.anomalies()[0].rule.src.unwrap();
        assert!(
            alarms
                .iter()
                .any(|a| matches!(a.scope, AlarmScope::SrcHost(ip) if ip == flood_src)),
            "flood source {flood_src} not identified among {} alarms",
            alarms.len()
        );
    }

    #[test]
    fn alarm_windows_overlap_the_injection() {
        let (alarms, lt) = analyze(Tuning::Sensitive, flood_config());
        let truth = &lt.truth.anomalies()[0];
        let src = truth.rule.src.unwrap();
        let hit = alarms
            .iter()
            .filter(|a| matches!(a.scope, AlarmScope::SrcHost(ip) if ip == src))
            .any(|a| a.window.overlaps(&truth.window));
        assert!(hit, "no alarm window overlaps the flood window");
    }

    #[test]
    fn sensitive_raises_at_least_as_many_alarms_as_conservative() {
        let (sens, _) = analyze(Tuning::Sensitive, flood_config());
        let (cons, _) = analyze(Tuning::Conservative, flood_config());
        assert!(
            sens.len() >= cons.len(),
            "sensitive {} < conservative {}",
            sens.len(),
            cons.len()
        );
    }

    #[test]
    fn all_alarms_are_src_host_scoped() {
        let (alarms, _) = analyze(Tuning::Sensitive, flood_config());
        assert!(alarms
            .iter()
            .all(|a| matches!(a.scope, AlarmScope::SrcHost(_))));
        assert!(alarms.iter().all(|a| a.detector == DetectorKind::Pca));
    }

    #[test]
    fn deterministic_output() {
        let (a, _) = analyze(Tuning::Optimal, flood_config());
        let (b, _) = analyze(Tuning::Optimal, flood_config());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_yields_no_alarms() {
        let cfg = SynthConfig::default()
            .with_seed(1)
            .with_background_pps(0.000001)
            .with_anomalies(vec![]);
        let lt = TraceGenerator::new(cfg).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms =
            PcaDetector::new(Tuning::Sensitive).analyze(&TraceView::new(&lt.trace, &flows));
        assert!(
            alarms.len() <= 2,
            "near-empty trace produced {} alarms",
            alarms.len()
        );
    }

    #[test]
    fn quiet_uniform_traffic_stays_mostly_quiet() {
        let cfg = SynthConfig::default().with_seed(7).with_anomalies(vec![]);
        let (alarms, lt) = {
            let lt = TraceGenerator::new(cfg).generate();
            let flows = FlowTable::build(&lt.trace.packets);
            let alarms =
                PcaDetector::new(Tuning::Conservative).analyze(&TraceView::new(&lt.trace, &flows));
            (alarms, lt)
        };
        // Conservative tuning on pure background: few alarms relative
        // to the number of active hosts.
        let hosts: std::collections::HashSet<_> = lt.trace.packets.iter().map(|p| p.src).collect();
        assert!(
            alarms.len() < hosts.len() / 10,
            "{} alarms for {} hosts",
            alarms.len(),
            hosts.len()
        );
    }
}
