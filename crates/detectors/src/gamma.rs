//! Gamma-model detector: sketches + multi-resolution Gamma fitting.
//!
//! Reproduces detector 2 of the paper (§3.2, after Dewaele et al.
//! [11]): traffic is split by hashing — once on source and once on
//! destination addresses — and each sketch bin's packet-count process
//! is aggregated at several dyadic time scales. At every scale the
//! counts are modelled as Gamma(α, β); the trajectory of the fitted
//! parameters across scales characterises the bin. Bins whose
//! trajectory is far (in robust median/MAD distance) from the
//! adaptively computed reference — the median trajectory over all
//! bins of the same hash row — are anomalous, and the responsible
//! hosts are identified by intersecting flagged bins across the
//! independent hash rows, exactly as in the sketch-reversal of the
//! PCA detector.
//!
//! Alarms carry source- or destination-host scope depending on which
//! hash key exposed them, matching the paper's note that "this method
//! reports source or destination IP addresses".

use crate::alarm::{Alarm, AlarmScope, DetectorKind, Tuning};
use crate::warm::{blend, DetectorPrior, GammaPrior, GammaRowPrior};
use crate::{ChunkView, Detector, IncrementalDetector};
use mawilab_model::{TimeWindow, TraceMeta};
use mawilab_sketch::SketchFamily;
use mawilab_stats::{mad, median, Gamma};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Hash-key direction of one sketch pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Src,
    Dst,
}

/// The sketch + multi-resolution Gamma detector (one configuration).
#[derive(Debug, Clone)]
pub struct GammaDetector {
    tuning: Tuning,
    /// Finest aggregation scale, microseconds.
    delta_us: u64,
    /// Number of dyadic scales (j = 0..scales).
    scales: usize,
    /// Sketch width per hash row.
    sketch_width: usize,
    /// Independent hash rows.
    sketch_rows: usize,
    /// Robust-distance threshold λ.
    lambda: f64,
    seed: u64,
}

impl GammaDetector {
    /// Builds the detector with one of the paper's three tunings.
    pub fn new(tuning: Tuning) -> Self {
        let lambda = match tuning {
            Tuning::Conservative => 3.5,
            Tuning::Optimal => 2.5,
            Tuning::Sensitive => 1.8,
        };
        GammaDetector {
            tuning,
            delta_us: 500_000,
            scales: 4,
            sketch_width: 16,
            sketch_rows: 3,
            lambda,
            seed: 0x6A44_0002,
        }
    }

    /// Gamma-parameter trajectory of one count series at all scales:
    /// `[α_0, ln β_0, α_1, ln β_1, …]`. `None` when the series is
    /// degenerate (empty bin).
    fn trajectory(&self, counts: &[f64]) -> Option<Vec<f64>> {
        let mut feats = Vec::with_capacity(self.scales * 2);
        let mut series: Vec<f64> = counts.to_vec();
        for _ in 0..self.scales {
            let g = Gamma::fit_moments(&series)?;
            feats.push(g.alpha);
            feats.push(g.beta.ln());
            // Dyadic aggregation for the next scale.
            series = series.chunks(2).map(|c| c.iter().sum()).collect();
            if series.len() < 4 {
                // Not enough samples to keep fitting; pad by repeating
                // the last scale so all trajectories share a length.
                while feats.len() < self.scales * 2 {
                    let n = feats.len();
                    feats.push(feats[n - 2]);
                    feats.push(feats[n - 1]);
                }
                break;
            }
        }
        Some(feats)
    }

    /// Per-direction sketch accumulator state.
    fn direction_state(&self, dir: Direction, t_bins: usize) -> GammaDirState {
        let seed = self.seed ^ if dir == Direction::Src { 0 } else { 0xFFFF };
        GammaDirState {
            dir,
            sketch: SketchFamily::new(self.sketch_rows, self.sketch_width, seed),
            series: vec![vec![vec![0.0f64; t_bins]; self.sketch_width]; self.sketch_rows],
            hosts: HashSet::new(),
        }
    }

    /// Analyses one direction's accumulated sketch state. `dir_idx`
    /// selects this direction's block of carried reference
    /// trajectories; the (possibly blended) references are appended to
    /// `export` in the same `dir * sketch_rows + row` order.
    fn finish_direction(
        &self,
        state: &GammaDirState,
        window: TimeWindow,
        dir_idx: usize,
        warm: Option<(&GammaPrior, f64)>,
        export: &mut GammaPrior,
        out: &mut Vec<Alarm>,
    ) {
        let GammaDirState {
            dir,
            sketch,
            series,
            hosts,
        } = state;

        // Per row: trajectories → robust distance from the median
        // trajectory → flagged bins.
        let mut flagged: Vec<Vec<bool>> = Vec::with_capacity(self.sketch_rows);
        let mut flagged_any = false;
        let mut max_score: f64 = 0.0;
        for (row, per_bin) in series.iter().enumerate() {
            let trajs: Vec<Option<Vec<f64>>> = per_bin.iter().map(|s| self.trajectory(s)).collect();
            let dim = self.scales * 2;
            // Reference: per-coordinate median and MAD over valid bins.
            let mut med = vec![0.0; dim];
            let mut scale = vec![0.0; dim];
            for d in 0..dim {
                let col: Vec<f64> = trajs.iter().flatten().map(|t| t[d]).collect();
                med[d] = median(&col);
                scale[d] = mad(&col);
            }
            // Pull the reference toward the carried prior
            // (shape-checked); cold runs keep today's values bitwise.
            if let Some((p, w)) = warm {
                if let Some(pr) = p.rows.get(dir_idx * self.sketch_rows + row) {
                    if pr.med.len() == dim && pr.scale.len() == dim {
                        for d in 0..dim {
                            med[d] = blend(med[d], pr.med[d], w);
                            scale[d] = blend(scale[d], pr.scale[d], w);
                        }
                    }
                }
            }
            export.rows.push(GammaRowPrior {
                med: med.clone(),
                scale: scale.clone(),
            });
            let mut flags = vec![false; self.sketch_width];
            for (bin, traj) in trajs.iter().enumerate() {
                let Some(t) = traj else { continue };
                let mut dist = 0.0;
                let mut used = 0;
                for d in 0..dim {
                    if scale[d] > 1e-9 {
                        let z = (t[d] - med[d]) / scale[d];
                        dist += z * z;
                        used += 1;
                    }
                }
                if used == 0 {
                    continue;
                }
                let dist = (dist / used as f64).sqrt();
                if dist > self.lambda {
                    flags[bin] = true;
                    flagged_any = true;
                    max_score = max_score.max(dist / self.lambda);
                }
            }
            flagged.push(flags);
        }
        if !flagged_any {
            return;
        }

        // Identify hosts flagged in every row.
        let identified = sketch.identify(hosts.iter().map(|&h| h as u64), &flagged);
        let mut identified: Vec<u64> = identified;
        identified.sort_unstable();
        for key in identified {
            let ip = Ipv4Addr::from(key as u32);
            out.push(Alarm {
                detector: DetectorKind::Gamma,
                tuning: self.tuning,
                window,
                scope: match dir {
                    Direction::Src => AlarmScope::SrcHost(ip),
                    Direction::Dst => AlarmScope::DstHost(ip),
                },
                score: max_score,
            });
        }
    }
}

impl Detector for GammaDetector {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Gamma
    }

    fn tuning(&self) -> Tuning {
        self.tuning
    }

    fn incremental(&self) -> Box<dyn IncrementalDetector> {
        Box::new(GammaAccumulator {
            det: self.clone(),
            window: None,
            t_bins: 0,
            seen: 0,
            dirs: Vec::new(),
            warm: None,
            export: None,
        })
    }
}

/// Per-direction accumulated sketch state.
struct GammaDirState {
    dir: Direction,
    sketch: SketchFamily,
    /// Count series per (row, bin): `series[row][bin][t]`.
    series: Vec<Vec<Vec<f64>>>,
    hosts: HashSet<u32>,
}

/// Incremental form of [`GammaDetector`]: chunk observation folds
/// packets into per-(row, bin) count series keyed by absolute time
/// bin; the Gamma fitting and sketch reversal run once at finish.
pub struct GammaAccumulator {
    det: GammaDetector,
    window: Option<TimeWindow>,
    t_bins: usize,
    seen: u64,
    dirs: Vec<GammaDirState>,
    /// Carried reference trajectories + decay; `None` = cold start.
    warm: Option<(GammaPrior, f64)>,
    /// Updated references, filled by `finish` for `export_prior`.
    export: Option<GammaPrior>,
}

impl IncrementalDetector for GammaAccumulator {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Gamma
    }

    fn tuning(&self) -> Tuning {
        self.det.tuning
    }

    fn begin(&mut self, meta: &TraceMeta) {
        let window = meta.window();
        self.window = Some(window);
        self.t_bins = (window.len_us() / self.det.delta_us) as usize;
        self.seen = 0;
        self.warm = None;
        self.export = None;
        self.dirs = if self.t_bins < 8 {
            Vec::new() // too short to analyse; observe() becomes a no-op
        } else {
            vec![
                self.det.direction_state(Direction::Src, self.t_bins),
                self.det.direction_state(Direction::Dst, self.t_bins),
            ]
        };
    }

    fn observe(&mut self, chunk: &ChunkView<'_>) {
        if self.dirs.is_empty() {
            return;
        }
        let window = self.window.expect("observe before begin"); // lint:allow(panic-free-data-plane): begin() runs before observe() in the chunk driver
        self.seen += chunk.packets.len() as u64;
        for p in chunk.packets {
            let Some(dt) = p.ts_us.checked_sub(window.start_us) else {
                continue;
            };
            let t = (dt / self.det.delta_us) as usize;
            if t >= self.t_bins {
                continue;
            }
            for state in &mut self.dirs {
                let ip = match state.dir {
                    Direction::Src => u32::from(p.src),
                    Direction::Dst => u32::from(p.dst),
                };
                state.hosts.insert(ip);
                for (row, per_bin) in state.series.iter_mut().enumerate() {
                    per_bin[state.sketch.bin(row, ip as u64)][t] += 1.0;
                }
            }
        }
    }

    fn finish(&mut self) -> Vec<Alarm> {
        let mut out = Vec::new();
        if self.seen == 0 {
            return out;
        }
        let window = self.window.expect("finish before begin"); // lint:allow(panic-free-data-plane): begin() runs before finish() in the chunk driver
        let warm = self.warm.as_ref().map(|(p, w)| (p, *w));
        let mut export = GammaPrior::default();
        for (dir_idx, state) in self.dirs.iter().enumerate() {
            self.det
                .finish_direction(state, window, dir_idx, warm, &mut export, &mut out);
        }
        self.export = Some(export);
        out
    }

    fn warm_begin(&mut self, meta: &TraceMeta, prior: Option<&DetectorPrior>, decay: f64) {
        self.begin(meta);
        if decay > 0.0 {
            if let Some(DetectorPrior::Gamma(p)) = prior {
                self.warm = Some((p.clone(), decay));
            }
        }
    }

    fn export_prior(&mut self) -> Option<DetectorPrior> {
        self.export.take().map(DetectorPrior::Gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceView;
    use mawilab_model::FlowTable;
    use mawilab_synth::{AnomalySpec, SynthConfig, TraceGenerator};

    fn run(tuning: Tuning, cfg: SynthConfig) -> (Vec<Alarm>, mawilab_synth::LabeledTrace) {
        let lt = TraceGenerator::new(cfg).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms = GammaDetector::new(tuning).analyze(&TraceView::new(&lt.trace, &flows));
        (alarms, lt)
    }

    fn flood() -> SynthConfig {
        SynthConfig::default()
            .with_seed(202)
            .with_anomalies(vec![AnomalySpec::SynFlood {
                victim: 0,
                dport: 80,
                rate_pps: 300.0,
                duration_s: 15.0,
                spoofed: false,
            }])
    }

    #[test]
    fn detects_flood_victim_or_attackers() {
        let (alarms, lt) = run(Tuning::Sensitive, flood());
        assert!(!alarms.is_empty());
        let victim = lt.truth.anomalies()[0].rule.dst.unwrap();
        // The victim receives a massive burst: it must surface either
        // as a DstHost alarm or via one of the attacker sources.
        let victim_hit = alarms
            .iter()
            .any(|a| matches!(a.scope, AlarmScope::DstHost(ip) if ip == victim));
        assert!(
            victim_hit,
            "victim {victim} not reported; alarms: {}",
            alarms.len()
        );
    }

    #[test]
    fn reports_both_directions() {
        let cfg = SynthConfig::default().with_seed(203);
        let (alarms, _) = run(Tuning::Sensitive, cfg);
        let has_src = alarms
            .iter()
            .any(|a| matches!(a.scope, AlarmScope::SrcHost(_)));
        let has_dst = alarms
            .iter()
            .any(|a| matches!(a.scope, AlarmScope::DstHost(_)));
        assert!(has_src && has_dst, "src={has_src} dst={has_dst}");
    }

    #[test]
    fn sensitive_flags_more_than_conservative() {
        let (sens, _) = run(Tuning::Sensitive, flood());
        let (cons, _) = run(Tuning::Conservative, flood());
        assert!(sens.len() >= cons.len());
    }

    #[test]
    fn deterministic() {
        let (a, _) = run(Tuning::Optimal, flood());
        let (b, _) = run(Tuning::Optimal, flood());
        assert_eq!(a, b);
    }

    #[test]
    fn trajectory_has_fixed_dimension() {
        let d = GammaDetector::new(Tuning::Optimal);
        let series: Vec<f64> = (0..120).map(|i| ((i * 7919) % 13) as f64 + 1.0).collect();
        let t = d.trajectory(&series).unwrap();
        assert_eq!(t.len(), d.scales * 2);
        // Short series still produce the padded full dimension.
        let short: Vec<f64> = (0..9).map(|i| (i % 3) as f64 + 1.0).collect();
        let t2 = d.trajectory(&short).unwrap();
        assert_eq!(t2.len(), d.scales * 2);
    }

    #[test]
    fn degenerate_series_yields_none() {
        let d = GammaDetector::new(Tuning::Optimal);
        assert!(d.trajectory(&[0.0; 32]).is_none()); // zero mean
        assert!(d.trajectory(&[5.0; 32]).is_none()); // zero variance
    }

    #[test]
    fn gamma_alarms_only() {
        let (alarms, _) = run(Tuning::Sensitive, flood());
        assert!(alarms.iter().all(|a| a.detector == DetectorKind::Gamma));
        assert!(alarms.iter().all(|a| a.score > 0.0));
    }

    #[test]
    fn empty_trace_is_silent() {
        let lt = TraceGenerator::new(
            SynthConfig::default()
                .with_seed(1)
                .with_background_pps(0.000001)
                .with_anomalies(vec![]),
        )
        .generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms =
            GammaDetector::new(Tuning::Sensitive).analyze(&TraceView::new(&lt.trace, &flows));
        assert!(alarms.is_empty());
    }
}
