//! KL-divergence detector: histogram monitoring + anomaly extraction
//! via association rules.
//!
//! Reproduces detector 4 of the paper (§3.2, after Brauckhoff et al.
//! [8]): per time bin, one histogram per traffic feature (source/
//! destination address, source/destination port) summarises the
//! feature distribution; the Kullback–Leibler divergence between
//! consecutive bins spikes when an anomaly shifts a distribution.
//! For each spiking (feature, bin) pair the histogram cells that
//! contribute most to the divergence select the *suspicious* packets,
//! and the modified Apriori algorithm condenses them into association
//! rules — so this detector's alarms are 4-tuples with wildcards,
//! the most expressive granularity of the four.
//!
//! The paper finds this detector the most accurate of the ensemble
//! (Fig. 6(c)); its rules bind tightly to real anomaly features, which
//! is why its tunings are the most precise rather than the loudest.

use crate::alarm::{Alarm, AlarmScope, DetectorKind, Tuning};
use crate::warm::{blend, DetectorPrior, KlPrior};
use crate::{ChunkView, Detector, IncrementalDetector};
use mawilab_mining::{mine_rules, Transaction};
use mawilab_model::{TimeWindow, TraceMeta};
use mawilab_stats::{kl_contributions, kl_divergence_counts, mad, median, Histogram};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// The four monitored features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feature {
    SrcAddr,
    DstAddr,
    SrcPort,
    DstPort,
}

const FEATURES: [Feature; 4] = [
    Feature::SrcAddr,
    Feature::DstAddr,
    Feature::SrcPort,
    Feature::DstPort,
];

impl Feature {
    /// Histogram key of one packet — delegated to
    /// [`PacketTuple::feature_key`] so histogram population and
    /// suspicious-tuple lookup share a single encoding.
    fn key(self, p: &mawilab_model::Packet) -> u64 {
        PacketTuple::of(p).feature_key(self)
    }
}

/// The 4-tuple a packet contributes to rule mining. Packets sharing a
/// tuple are interchangeable for the detector's extraction step, so
/// the accumulator stores tuple *counts* per time bin instead of the
/// packets themselves — the piece that makes KL streamable without
/// retaining packets. The count maps grow with per-bin tuple
/// *diversity*: far below packet volume on normal traffic, but
/// adversarial spoofed-source floods can approach one entry per
/// packet within the flooded bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct PacketTuple {
    src: u32,
    dst: u32,
    sport: u16,
    dport: u16,
}

impl PacketTuple {
    fn of(p: &mawilab_model::Packet) -> Self {
        PacketTuple {
            src: u32::from(p.src),
            dst: u32::from(p.dst),
            sport: p.sport,
            dport: p.dport,
        }
    }

    /// The single feature-key encoding ([`Feature::key`] delegates
    /// here): addresses raw, ports tagged into disjoint bit ranges.
    fn feature_key(&self, f: Feature) -> u64 {
        match f {
            Feature::SrcAddr => self.src as u64,
            Feature::DstAddr => self.dst as u64,
            Feature::SrcPort => self.sport as u64 | 1 << 40,
            Feature::DstPort => self.dport as u64 | 1 << 41,
        }
    }

    fn transaction(&self) -> Transaction {
        Transaction::new(
            Ipv4Addr::from(self.src),
            self.sport,
            Ipv4Addr::from(self.dst),
            self.dport,
        )
    }
}

/// The KL-divergence histogram detector (one configuration).
#[derive(Debug, Clone)]
pub struct KlDetector {
    tuning: Tuning,
    /// Time-bin width, microseconds.
    bin_us: u64,
    /// Histogram cells per feature.
    hist_bins: usize,
    /// Divergence threshold multiplier λ (μ + λσ over the series).
    lambda: f64,
    /// Histogram cells inspected per spike.
    top_cells: usize,
    /// Apriori support threshold over the suspicious packets.
    min_support: f64,
}

impl KlDetector {
    /// Builds the detector with one of the paper's three tunings.
    pub fn new(tuning: Tuning) -> Self {
        let (lambda, top_cells) = match tuning {
            Tuning::Conservative => (3.5, 2),
            Tuning::Optimal => (2.5, 3),
            Tuning::Sensitive => (1.8, 4),
        };
        KlDetector {
            tuning,
            bin_us: 5_000_000,
            hist_bins: 128,
            lambda,
            top_cells,
            min_support: 0.2,
        }
    }
}

/// Ports whose bare presence is background, not anomaly signature.
const SERVICE_PORTS: [u16; 9] = [80, 8080, 443, 53, 25, 22, 21, 20, 123];

fn is_bare_service_port(rule: &mawilab_model::TrafficRule) -> bool {
    let port = rule.sport.or(rule.dport);
    matches!(port, Some(p) if SERVICE_PORTS.contains(&p))
}

impl Detector for KlDetector {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Kl
    }

    fn tuning(&self) -> Tuning {
        self.tuning
    }

    fn incremental(&self) -> Box<dyn IncrementalDetector> {
        Box::new(KlAccumulator {
            det: self.clone(),
            window: None,
            t_bins: 0,
            seen: 0,
            hists: Vec::new(),
            bin_tuples: Vec::new(),
            warm: None,
            export: None,
        })
    }
}

/// Incremental form of [`KlDetector`]: chunk observation folds
/// packets into per-(feature, bin) histograms plus per-bin 4-tuple
/// counts keyed by absolute time bin; divergence thresholding and
/// rule mining run once at finish.
pub struct KlAccumulator {
    det: KlDetector,
    window: Option<TimeWindow>,
    t_bins: usize,
    seen: u64,
    /// `hists[feature][t]`.
    hists: Vec<Vec<Histogram>>,
    /// Distinct 4-tuples with multiplicities, per time bin.
    bin_tuples: Vec<HashMap<PacketTuple, u32>>,
    /// Carried divergence baselines + decay; `None` = cold start.
    warm: Option<(KlPrior, f64)>,
    /// Updated baselines, filled by `finish` for `export_prior`.
    export: Option<KlPrior>,
}

impl IncrementalDetector for KlAccumulator {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Kl
    }

    fn tuning(&self) -> Tuning {
        self.det.tuning
    }

    fn begin(&mut self, meta: &TraceMeta) {
        let window = meta.window();
        self.window = Some(window);
        self.t_bins = (window.len_us() / self.det.bin_us) as usize;
        self.seen = 0;
        self.warm = None;
        self.export = None;
        if self.t_bins < 3 {
            self.hists = Vec::new();
            self.bin_tuples = Vec::new();
        } else {
            self.hists = FEATURES
                .iter()
                .map(|_| {
                    (0..self.t_bins)
                        .map(|_| Histogram::new(self.det.hist_bins))
                        .collect()
                })
                .collect();
            self.bin_tuples = vec![HashMap::new(); self.t_bins];
        }
    }

    fn observe(&mut self, chunk: &ChunkView<'_>) {
        if self.hists.is_empty() {
            return;
        }
        let window = self.window.expect("observe before begin"); // lint:allow(panic-free-data-plane): begin() runs before observe() in the chunk driver
        self.seen += chunk.packets.len() as u64;
        for p in chunk.packets {
            let t = ((p.ts_us.saturating_sub(window.start_us) / self.det.bin_us) as usize)
                .min(self.t_bins - 1);
            for (fi, f) in FEATURES.iter().enumerate() {
                self.hists[fi][t].add(f.key(p));
            }
            *self.bin_tuples[t].entry(PacketTuple::of(p)).or_insert(0) += 1;
        }
    }

    fn finish(&mut self) -> Vec<Alarm> {
        if self.hists.is_empty() || self.seen == 0 {
            return Vec::new();
        }
        let window = self.window.expect("finish before begin"); // lint:allow(panic-free-data-plane): begin() runs before finish() in the chunk driver
        let warm = self.warm.as_ref().map(|(p, w)| (p, *w));
        let (alarms, export) =
            self.det
                .finish_analysis(window, self.t_bins, &self.hists, &self.bin_tuples, warm);
        self.export = Some(export);
        alarms
    }

    fn warm_begin(&mut self, meta: &TraceMeta, prior: Option<&DetectorPrior>, decay: f64) {
        self.begin(meta);
        if decay > 0.0 {
            if let Some(DetectorPrior::Kl(p)) = prior {
                self.warm = Some((p.clone(), decay));
            }
        }
    }

    fn export_prior(&mut self) -> Option<DetectorPrior> {
        self.export.take().map(DetectorPrior::Kl)
    }
}

impl KlDetector {
    /// The batch analysis over fully accumulated histogram state. When
    /// a carried prior is supplied, the per-feature divergence
    /// baselines are EWMA-blended with it before thresholding; the
    /// blended baselines are returned as the next day's prior either
    /// way.
    fn finish_analysis(
        &self,
        window: TimeWindow,
        t_bins: usize,
        hists: &[Vec<Histogram>],
        bin_tuples: &[HashMap<PacketTuple, u32>],
        warm: Option<(&KlPrior, f64)>,
    ) -> (Vec<Alarm>, KlPrior) {
        let mut alarms = Vec::new();
        let mut export = KlPrior::default();
        let mut seen: HashSet<(usize, mawilab_model::TrafficRule)> = HashSet::new();
        for (fi, f) in FEATURES.iter().enumerate() {
            // Divergence series between consecutive bins, on raw
            // counts with Laplace smoothing (pseudo-count ½ per cell):
            // sparse cells flipping between 0 and a few packets must
            // not drown a real distribution shift.
            const PSEUDO: f64 = 0.5;
            let series: Vec<f64> = (1..t_bins)
                .map(|t| {
                    kl_divergence_counts(hists[fi][t].counts(), hists[fi][t - 1].counts(), PSEUDO)
                })
                .collect();
            // Robust baseline: the anomaly's own spikes must not lift
            // the threshold (median/MAD instead of mean/σ); blended
            // with the carried prior when one applies (cold runs keep
            // today's values bitwise).
            let mut spread = mad(&series);
            let mut center = median(&series);
            if let Some((p, w)) = warm {
                if let Some(&(p_center, p_spread)) = p.features.get(fi) {
                    center = blend(center, p_center, w);
                    spread = blend(spread, p_spread, w);
                }
            }
            export.features.push((center, spread));
            if spread < 1e-12 {
                continue; // flat series: nothing to flag
            }
            let thr = center + self.lambda * spread;
            for (si, &d) in series.iter().enumerate() {
                if d <= thr {
                    continue;
                }
                let t = si + 1;
                // Cells contributing most to the divergence, under the
                // same Laplace smoothing as the series itself.
                let mut contrib: Vec<(usize, f64)> =
                    kl_contributions(hists[fi][t].counts(), hists[fi][t - 1].counts(), PSEUDO)
                        .into_iter()
                        .enumerate()
                        .filter(|&(_, v)| v > 0.0)
                        .collect();
                contrib.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN contribution")); // lint:allow(panic-free-data-plane): contributions are filtered finite (> 0.0) above
                let top: HashSet<usize> = contrib
                    .iter()
                    .take(self.top_cells)
                    .map(|&(c, _)| c)
                    .collect();
                if top.is_empty() {
                    continue;
                }
                // Suspicious packets: feature value in a top cell.
                // The accumulated 4-tuples stand in for the packets
                // (multiplicity preserved; sorted for a deterministic
                // mining input — Apriori support counting is
                // order-insensitive anyway).
                let sample_hist = &hists[fi][t];
                let mut tuples: Vec<(&PacketTuple, u32)> =
                    bin_tuples[t].iter().map(|(tp, &n)| (tp, n)).collect();
                tuples.sort_unstable_by_key(|(tp, _)| **tp);
                let mut suspicious: Vec<Transaction> = Vec::new();
                for (tp, n) in tuples {
                    if top.contains(&sample_hist.bin_of(tp.feature_key(*f))) {
                        suspicious
                            .extend(std::iter::repeat_with(|| tp.transaction()).take(n as usize));
                    }
                }
                if suspicious.len() < 5 {
                    continue;
                }
                let mined = mine_rules(&suspicious, self.min_support);
                let bin_window = TimeWindow::new(
                    window.start_us + t as u64 * self.bin_us,
                    (window.start_us + (t as u64 + 1) * self.bin_us).min(window.end_us),
                );
                for (rule, _count) in mined.rules {
                    if rule.degree() == 0 {
                        continue;
                    }
                    // A degree-1 rule that only names a well-known
                    // service port describes the background, not a
                    // change signature — Brauckhoff et al.'s extraction
                    // filters such baseline itemsets out.
                    if rule.degree() == 1 && is_bare_service_port(&rule) {
                        continue;
                    }
                    if seen.insert((t, rule)) {
                        alarms.push(Alarm {
                            detector: DetectorKind::Kl,
                            tuning: self.tuning,
                            window: bin_window,
                            scope: AlarmScope::Rule(rule),
                            score: d / (thr + 1e-12),
                        });
                    }
                }
            }
        }
        (alarms, export)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceView;
    use mawilab_model::FlowTable;
    use mawilab_synth::{AnomalySpec, SynthConfig, TraceGenerator};

    fn run(tuning: Tuning, cfg: SynthConfig) -> (Vec<Alarm>, mawilab_synth::LabeledTrace) {
        let lt = TraceGenerator::new(cfg).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms = KlDetector::new(tuning).analyze(&TraceView::new(&lt.trace, &flows));
        (alarms, lt)
    }

    fn flood() -> SynthConfig {
        // Victim 60: an unpopular host, so the flood shifts the
        // dst-address histogram hard (victim 0 is the Zipf rank-1
        // host whose distribution barely moves).
        SynthConfig::default()
            .with_seed(406)
            .with_anomalies(vec![AnomalySpec::SynFlood {
                victim: 60,
                dport: 80,
                rate_pps: 350.0,
                duration_s: 12.0,
                spoofed: true,
            }])
    }

    #[test]
    fn flood_yields_a_rule_binding_the_victim() {
        let (alarms, lt) = run(Tuning::Sensitive, flood());
        assert!(!alarms.is_empty());
        let victim = lt.truth.anomalies()[0].rule.dst.unwrap();
        let hit = alarms.iter().any(|a| match &a.scope {
            AlarmScope::Rule(r) => {
                r.dst == Some(victim) || r.src == Some(victim) || r.dport == Some(80)
            }
            _ => false,
        });
        assert!(hit, "no rule mentions the victim; alarms: {:#?}", alarms);
    }

    #[test]
    fn worm_yields_a_rule_binding_port_445_or_source() {
        let cfg =
            SynthConfig::default()
                .with_seed(405)
                .with_anomalies(vec![AnomalySpec::SasserWorm {
                    infected: 1,
                    scans: 1500,
                    rate_pps: 120.0,
                }]);
        let (alarms, lt) = run(Tuning::Sensitive, cfg);
        let src = lt.truth.anomalies()[0].rule.src.unwrap();
        let hit = alarms.iter().any(|a| match &a.scope {
            AlarmScope::Rule(r) => r.dport == Some(445) || r.src == Some(src),
            _ => false,
        });
        assert!(hit, "worm features not extracted: {:#?}", alarms);
    }

    #[test]
    fn all_rules_are_nontrivial_4tuples() {
        let (alarms, _) = run(Tuning::Sensitive, flood());
        for a in &alarms {
            match &a.scope {
                AlarmScope::Rule(r) => assert!(r.degree() >= 1),
                other => panic!("unexpected scope {other:?}"),
            }
            assert_eq!(a.detector, DetectorKind::Kl);
        }
    }

    #[test]
    fn alarm_windows_are_one_bin_wide() {
        let (alarms, _) = run(Tuning::Sensitive, flood());
        let d = KlDetector::new(Tuning::Sensitive);
        for a in &alarms {
            assert!(a.window.len_us() <= d.bin_us);
        }
    }

    #[test]
    fn no_duplicate_rules_per_bin() {
        let (alarms, _) = run(Tuning::Sensitive, flood());
        let mut seen = HashSet::new();
        for a in &alarms {
            if let AlarmScope::Rule(r) = &a.scope {
                assert!(seen.insert((a.window.start_us, *r)), "duplicate rule alarm");
            }
        }
    }

    #[test]
    fn sensitive_detects_at_least_conservative() {
        let (sens, _) = run(Tuning::Sensitive, flood());
        let (cons, _) = run(Tuning::Conservative, flood());
        assert!(sens.len() >= cons.len());
    }

    #[test]
    fn deterministic() {
        let (a, _) = run(Tuning::Optimal, flood());
        let (b, _) = run(Tuning::Optimal, flood());
        assert_eq!(a, b);
    }

    #[test]
    fn quiet_trace_produces_few_alarms() {
        let cfg = SynthConfig::default().with_seed(9).with_anomalies(vec![]);
        let (alarms, _) = run(Tuning::Conservative, cfg);
        assert!(
            alarms.len() <= 8,
            "{} alarms on pure background",
            alarms.len()
        );
    }

    #[test]
    fn empty_trace_is_silent() {
        let lt = TraceGenerator::new(
            SynthConfig::default()
                .with_seed(1)
                .with_background_pps(0.000001)
                .with_anomalies(vec![]),
        )
        .generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms = KlDetector::new(Tuning::Sensitive).analyze(&TraceView::new(&lt.trace, &flows));
        assert!(alarms.is_empty());
    }
}
