//! # mawilab-detectors
//!
//! From-scratch implementations of the four unsupervised backbone
//! anomaly detectors the paper combines (§3.2), each reporting alarms
//! at its own traffic granularity:
//!
//! | Detector | Technique | Alarm granularity |
//! |---|---|---|
//! | [`pca`]   | random-projection sketches + principal-subspace residuals (Lakhina'04 / Li'06 / Kanda'10) | source host |
//! | [`gamma`] | sketches + multi-resolution Gamma modelling (Dewaele'07) | source *or* destination host |
//! | [`hough`] | Hough-transform line detection on 2-D traffic images (Fontugne & Fukuda'11) | aggregated flow sets |
//! | [`kl`]    | Kullback–Leibler divergence on feature histograms + association rules (Brauckhoff'09) | 4-tuple feature rules |
//!
//! Each detector ships with the paper's **three parameter tunings**
//! (conservative / optimal / sensitive), yielding the 12
//! *configurations* whose votes the combiner consumes.
//! [`standard_configurations`] builds all twelve.
//!
//! Granularity diversity is the whole point: these alarm types cannot
//! be compared naively, which is what motivates the similarity
//! estimator (`mawilab-similarity`).

pub mod alarm;
pub mod gamma;
pub mod hough;
pub mod kl;
pub mod pca;

pub use alarm::{Alarm, AlarmScope, DetectorKind, Tuning};
pub use gamma::GammaDetector;
pub use hough::HoughDetector;
pub use kl::KlDetector;
pub use pca::PcaDetector;

use mawilab_model::{FlowTable, Trace};

/// A trace plus its precomputed flow index — the shared input of all
/// detectors.
pub struct TraceView<'a> {
    /// The trace under analysis.
    pub trace: &'a Trace,
    /// Flow index of the same trace.
    pub flows: &'a FlowTable,
}

impl<'a> TraceView<'a> {
    /// Bundles a trace with its flow table.
    pub fn new(trace: &'a Trace, flows: &'a FlowTable) -> Self {
        assert_eq!(trace.len(), flows.packet_count(), "flow table for a different trace");
        TraceView { trace, flows }
    }
}

/// A traffic anomaly detector with one fixed parameter set
/// (a *configuration* in the paper's terminology).
pub trait Detector: Send + Sync {
    /// Which of the four detector families this configuration is.
    fn kind(&self) -> DetectorKind;

    /// The tuning of this configuration.
    fn tuning(&self) -> Tuning;

    /// Analyzes a trace and reports alarms.
    fn analyze(&self, view: &TraceView<'_>) -> Vec<Alarm>;

    /// Unique label, e.g. `"Gamma/sensitive"`.
    fn label(&self) -> String {
        format!("{}/{}", self.kind(), self.tuning())
    }
}

/// The paper's experimental setup: 4 detectors × 3 tunings = 12
/// configurations (§3.2). Order: PCA, Gamma, Hough, KL; conservative,
/// optimal, sensitive within each.
pub fn standard_configurations() -> Vec<Box<dyn Detector>> {
    let mut v: Vec<Box<dyn Detector>> = Vec::with_capacity(12);
    for t in Tuning::ALL {
        v.push(Box::new(PcaDetector::new(t)));
    }
    for t in Tuning::ALL {
        v.push(Box::new(GammaDetector::new(t)));
    }
    for t in Tuning::ALL {
        v.push(Box::new(HoughDetector::new(t)));
    }
    for t in Tuning::ALL {
        v.push(Box::new(KlDetector::new(t)));
    }
    v
}

/// Runs a set of configurations over one trace, in parallel, returning
/// the concatenated alarms (each alarm already carries its detector
/// kind and tuning).
pub fn run_all(configs: &[Box<dyn Detector>], view: &TraceView<'_>) -> Vec<Alarm> {
    let mut results: Vec<Vec<Alarm>> = Vec::with_capacity(configs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = configs
            .iter()
            .map(|c| s.spawn(move || c.analyze(view)))
            .collect();
        for h in handles {
            results.push(h.join().expect("detector thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::{SynthConfig, TraceGenerator};

    #[test]
    fn standard_set_is_twelve_configurations() {
        let configs = standard_configurations();
        assert_eq!(configs.len(), 12);
        let mut labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12, "duplicate configuration labels");
        // 3 per family.
        for kind in [DetectorKind::Pca, DetectorKind::Gamma, DetectorKind::Hough, DetectorKind::Kl]
        {
            assert_eq!(configs.iter().filter(|c| c.kind() == kind).count(), 3);
        }
    }

    #[test]
    fn run_all_matches_sequential_runs() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(42)).generate();
        let flows = mawilab_model::FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let configs = standard_configurations();
        let par = run_all(&configs, &view);
        let seq: Vec<Alarm> = configs.iter().flat_map(|c| c.analyze(&view)).collect();
        assert_eq!(par.len(), seq.len());
    }

    #[test]
    #[should_panic(expected = "different trace")]
    fn mismatched_flow_table_panics() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(1)).generate();
        let empty = mawilab_model::FlowTable::build(&[]);
        TraceView::new(&lt.trace, &empty);
    }
}
