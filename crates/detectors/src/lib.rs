//! # mawilab-detectors
//!
//! From-scratch implementations of the four unsupervised backbone
//! anomaly detectors the paper combines (§3.2), each reporting alarms
//! at its own traffic granularity:
//!
//! | Detector | Technique | Alarm granularity |
//! |---|---|---|
//! | [`pca`]   | random-projection sketches + principal-subspace residuals (Lakhina'04 / Li'06 / Kanda'10) | source host |
//! | [`gamma`] | sketches + multi-resolution Gamma modelling (Dewaele'07) | source *or* destination host |
//! | [`hough`] | Hough-transform line detection on 2-D traffic images (Fontugne & Fukuda'11) | aggregated flow sets |
//! | [`kl`]    | Kullback–Leibler divergence on feature histograms + association rules (Brauckhoff'09) | 4-tuple feature rules |
//!
//! Each detector ships with the paper's **three parameter tunings**
//! (conservative / optimal / sensitive), yielding the 12
//! *configurations* whose votes the combiner consumes.
//! [`standard_configurations`] builds all twelve.
//!
//! Granularity diversity is the whole point: these alarm types cannot
//! be compared naively, which is what motivates the similarity
//! estimator (`mawilab-similarity`).

#![forbid(unsafe_code)]

pub mod alarm;
pub mod gamma;
pub mod hough;
pub mod kl;
pub mod pca;
pub mod warm;

pub use alarm::{Alarm, AlarmScope, DetectorKind, Tuning};
pub use gamma::GammaDetector;
pub use hough::HoughDetector;
pub use kl::KlDetector;
pub use pca::PcaDetector;
pub use warm::{DetectorPrior, GammaPrior, KlPrior, PcaPrior};

use mawilab_model::{FlowTable, Packet, PacketChunk, TimeWindow, Trace, TraceMeta};

/// A trace plus its precomputed flow index — the shared input of all
/// detectors.
pub struct TraceView<'a> {
    /// The trace under analysis.
    pub trace: &'a Trace,
    /// Flow index of the same trace.
    pub flows: &'a FlowTable,
}

impl<'a> TraceView<'a> {
    /// Bundles a trace with its flow table.
    pub fn new(trace: &'a Trace, flows: &'a FlowTable) -> Self {
        assert_eq!(
            trace.len(),
            flows.packet_count(),
            "flow table for a different trace"
        );
        TraceView { trace, flows }
    }
}

/// One chunk of a packet stream, as seen by an incremental detector.
///
/// The whole trace fed as a single chunk and the same trace fed as
/// many time-binned chunks accumulate into identical detector state:
/// every detector bins packets by absolute timestamp against
/// `meta.window()`, never by chunk boundary.
pub struct ChunkView<'a> {
    /// Metadata of the trace being streamed.
    pub meta: &'a TraceMeta,
    /// Nominal time bin of this chunk.
    pub window: TimeWindow,
    /// The chunk's packets, in arrival order.
    pub packets: &'a [Packet],
}

impl<'a> ChunkView<'a> {
    /// View over one streamed chunk.
    pub fn of_chunk(meta: &'a TraceMeta, chunk: &'a PacketChunk) -> Self {
        ChunkView {
            meta,
            window: chunk.window,
            packets: &chunk.packets,
        }
    }

    /// View presenting an entire in-memory trace as one chunk — the
    /// batch adapter's input.
    pub fn whole_trace(trace: &'a Trace) -> Self {
        ChunkView {
            meta: &trace.meta,
            window: trace.meta.window(),
            packets: &trace.packets,
        }
    }
}

/// The incremental (streaming) form of a detector configuration.
///
/// Lifecycle: one [`begin`](IncrementalDetector::begin), any number of
/// [`observe`](IncrementalDetector::observe) calls over consecutive
/// chunks, one [`finish`](IncrementalDetector::finish). Accumulated
/// state is chunk-boundary invariant, so any chunking of the same
/// packet sequence — including the whole trace as a single chunk —
/// produces identical alarms.
pub trait IncrementalDetector: Send {
    /// Which of the four detector families this configuration is.
    fn kind(&self) -> DetectorKind;

    /// The tuning of this configuration.
    fn tuning(&self) -> Tuning;

    /// Prepares per-trace state (time-bin counts etc.) from the
    /// trace metadata.
    fn begin(&mut self, meta: &TraceMeta);

    /// Folds one chunk of packets into the accumulated state.
    fn observe(&mut self, chunk: &ChunkView<'_>);

    /// Runs the analysis over the accumulated state and reports
    /// alarms. The detector is spent afterwards; call
    /// [`begin`](IncrementalDetector::begin) to reuse it.
    fn finish(&mut self) -> Vec<Alarm>;

    /// Warm-started [`begin`](IncrementalDetector::begin): the
    /// detector's internal baselines start from an
    /// exponentially-decaying prior carried from previous days (see
    /// [`warm`]) instead of being re-estimated from scratch.
    ///
    /// The default ignores the prior and delegates to `begin` — a
    /// detector without warm support (Hough) simply runs cold. Every
    /// implementation must treat `decay == 0.0` or a `None`/
    /// shape-mismatched prior as an exact cold start (byte-identical
    /// alarms).
    fn warm_begin(&mut self, meta: &TraceMeta, prior: Option<&DetectorPrior>, decay: f64) {
        let _ = (prior, decay);
        self.begin(meta);
    }

    /// The updated baseline to carry into the next day, available
    /// after [`finish`](IncrementalDetector::finish). `None` when the
    /// detector has no warm support or the day produced no state to
    /// carry (empty trace) — the caller then keeps its previous prior.
    fn export_prior(&mut self) -> Option<DetectorPrior> {
        None
    }

    /// Unique label, e.g. `"Gamma/sensitive"`.
    fn label(&self) -> String {
        format!("{}/{}", self.kind(), self.tuning())
    }
}

/// A traffic anomaly detector with one fixed parameter set
/// (a *configuration* in the paper's terminology).
///
/// The batch entry point [`analyze`](Detector::analyze) is a thin
/// adapter over the incremental form: it feeds the whole trace as one
/// chunk through [`incremental`](Detector::incremental), so batch and
/// streaming runs share one implementation and cannot drift apart.
pub trait Detector: Send + Sync {
    /// Which of the four detector families this configuration is.
    fn kind(&self) -> DetectorKind;

    /// The tuning of this configuration.
    fn tuning(&self) -> Tuning;

    /// Builds the incremental (streaming) form of this configuration.
    fn incremental(&self) -> Box<dyn IncrementalDetector>;

    /// Analyzes a trace and reports alarms.
    fn analyze(&self, view: &TraceView<'_>) -> Vec<Alarm> {
        let mut inc = self.incremental();
        inc.begin(&view.trace.meta);
        inc.observe(&ChunkView::whole_trace(view.trace));
        inc.finish()
    }

    /// Unique label, e.g. `"Gamma/sensitive"`.
    fn label(&self) -> String {
        format!("{}/{}", self.kind(), self.tuning())
    }
}

/// The paper's experimental setup: 4 detectors × 3 tunings = 12
/// configurations (§3.2). Order: PCA, Gamma, Hough, KL; conservative,
/// optimal, sensitive within each.
pub fn standard_configurations() -> Vec<Box<dyn Detector>> {
    let mut v: Vec<Box<dyn Detector>> = Vec::with_capacity(12);
    for t in Tuning::ALL {
        v.push(Box::new(PcaDetector::new(t)));
    }
    for t in Tuning::ALL {
        v.push(Box::new(GammaDetector::new(t)));
    }
    for t in Tuning::ALL {
        v.push(Box::new(HoughDetector::new(t)));
    }
    for t in Tuning::ALL {
        v.push(Box::new(KlDetector::new(t)));
    }
    v
}

/// Runs a set of configurations over one trace, in parallel via the
/// workspace fan-out helper ([`mawilab_exec::par_map`], honoring
/// `MAWILAB_THREADS`), returning the concatenated alarms in
/// configuration order (each alarm already carries its detector kind
/// and tuning).
pub fn run_all(configs: &[Box<dyn Detector>], view: &TraceView<'_>) -> Vec<Alarm> {
    mawilab_exec::par_map(configs, |c| c.analyze(view)).concat()
}

/// Folds one chunk into every incremental configuration, in parallel
/// across configurations (the chunk is shared read-only).
pub fn observe_all(configs: &mut [Box<dyn IncrementalDetector>], chunk: &ChunkView<'_>) {
    mawilab_exec::par_for_each_mut(configs, |c| c.observe(chunk));
}

/// Finishes every incremental configuration, returning the
/// concatenated alarms in configuration order — the same order
/// [`run_all`] concatenates batch results in.
pub fn finish_all(configs: &mut [Box<dyn IncrementalDetector>]) -> Vec<Alarm> {
    mawilab_exec::par_map_mut(configs, |c| c.finish()).concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::{SynthConfig, TraceGenerator};

    #[test]
    fn standard_set_is_twelve_configurations() {
        let configs = standard_configurations();
        assert_eq!(configs.len(), 12);
        let mut labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12, "duplicate configuration labels");
        // 3 per family.
        for kind in [
            DetectorKind::Pca,
            DetectorKind::Gamma,
            DetectorKind::Hough,
            DetectorKind::Kl,
        ] {
            assert_eq!(configs.iter().filter(|c| c.kind() == kind).count(), 3);
        }
    }

    #[test]
    fn run_all_matches_sequential_runs() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(42)).generate();
        let flows = mawilab_model::FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let configs = standard_configurations();
        let par = run_all(&configs, &view);
        let seq: Vec<Alarm> = configs.iter().flat_map(|c| c.analyze(&view)).collect();
        assert_eq!(par.len(), seq.len());
    }

    #[test]
    #[should_panic(expected = "different trace")]
    fn mismatched_flow_table_panics() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(1)).generate();
        let empty = mawilab_model::FlowTable::build(&[]);
        TraceView::new(&lt.trace, &empty);
    }

    #[test]
    fn incremental_is_chunk_boundary_invariant() {
        use mawilab_model::{PacketSource, TraceChunker};
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(42)).generate();
        let flows = mawilab_model::FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        for config in standard_configurations() {
            let batch = config.analyze(&view);
            for bin_us in [2_000_000u64, 5_000_000, 60_000_000] {
                let mut inc = config.incremental();
                inc.begin(&lt.trace.meta);
                let mut source = TraceChunker::new(lt.trace.clone(), bin_us);
                while let Some(chunk) = source.next_chunk().unwrap() {
                    inc.observe(&ChunkView::of_chunk(&lt.trace.meta, chunk));
                }
                let streamed = inc.finish();
                assert_eq!(
                    streamed,
                    batch,
                    "{} diverges between batch and {}s chunks",
                    config.label(),
                    bin_us / 1_000_000
                );
            }
        }
    }

    /// One full incremental pass; returns (alarms, exported prior).
    fn warm_pass(
        config: &dyn Detector,
        lt: &mawilab_synth::LabeledTrace,
        prior: Option<&DetectorPrior>,
        decay: f64,
    ) -> (Vec<Alarm>, Option<DetectorPrior>) {
        use mawilab_model::{PacketSource, TraceChunker};
        let mut inc = config.incremental();
        inc.warm_begin(&lt.trace.meta, prior, decay);
        let mut source = TraceChunker::new(lt.trace.clone(), 5_000_000);
        while let Some(chunk) = source.next_chunk().unwrap() {
            inc.observe(&ChunkView::of_chunk(&lt.trace.meta, chunk));
        }
        let alarms = inc.finish();
        let export = inc.export_prior();
        (alarms, export)
    }

    /// `warm_begin` with no prior, or any prior at decay 0, must be
    /// byte-identical to a cold `begin` for every configuration.
    #[test]
    fn warm_begin_at_zero_decay_is_cold() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(42)).generate();
        for config in standard_configurations() {
            let (cold, cold_export) = warm_pass(config.as_ref(), &lt, None, 0.0);
            // A real prior from a previous (different) day.
            let prev = TraceGenerator::new(SynthConfig::default().with_seed(43)).generate();
            let (_, prior) = warm_pass(config.as_ref(), &prev, None, 0.0);
            let (warm_no_prior, _) = warm_pass(config.as_ref(), &lt, None, 0.7);
            let (warm_zero_decay, zero_export) =
                warm_pass(config.as_ref(), &lt, prior.as_ref(), 0.0);
            assert_eq!(
                cold,
                warm_no_prior,
                "{}: no-prior warm diverged",
                config.label()
            );
            assert_eq!(
                cold,
                warm_zero_decay,
                "{}: decay=0 warm diverged",
                config.label()
            );
            // decay=0 exports must equal the cold day's own baselines.
            assert_eq!(
                cold_export,
                zero_export,
                "{}: decay=0 export diverged",
                config.label()
            );
        }
    }

    /// With a genuine prior and positive decay, exports keep their
    /// shape and stay finite — the EWMA evolves rather than resets.
    #[test]
    fn warm_priors_evolve_with_stable_shape() {
        fn all_finite(p: &DetectorPrior) -> bool {
            match p {
                DetectorPrior::Pca(p) => p.rows.iter().all(|r| {
                    r.e_med.is_finite()
                        && r.e_mad.is_finite()
                        && r.coord_sigma.iter().all(|s| s.is_finite())
                }),
                DetectorPrior::Gamma(p) => p.rows.iter().all(|r| {
                    r.med.iter().all(|v| v.is_finite()) && r.scale.iter().all(|v| v.is_finite())
                }),
                DetectorPrior::Kl(p) => p
                    .features
                    .iter()
                    .all(|&(m, s)| m.is_finite() && s.is_finite()),
            }
        }
        fn shape(p: &DetectorPrior) -> Vec<usize> {
            match p {
                DetectorPrior::Pca(p) => p.rows.iter().map(|r| r.coord_sigma.len()).collect(),
                DetectorPrior::Gamma(p) => p.rows.iter().map(|r| r.med.len()).collect(),
                DetectorPrior::Kl(p) => vec![p.features.len()],
            }
        }
        let day1 = TraceGenerator::new(SynthConfig::default().with_seed(50)).generate();
        let day2 = TraceGenerator::new(SynthConfig::default().with_seed(51)).generate();
        let mut warm_supported = 0;
        for config in standard_configurations() {
            let (_, prior) = warm_pass(config.as_ref(), &day1, None, 0.0);
            if config.kind() == DetectorKind::Hough {
                assert!(prior.is_none(), "Hough unexpectedly exports a prior");
                continue;
            }
            let prior = prior.expect("warm detector exported no prior");
            assert!(all_finite(&prior), "{}: non-finite prior", config.label());
            let (alarms, evolved) = warm_pass(config.as_ref(), &day2, Some(&prior), 0.4);
            let evolved = evolved.expect("warm run exported no prior");
            assert_eq!(
                shape(&prior),
                shape(&evolved),
                "{}: shape drifted",
                config.label()
            );
            assert!(
                all_finite(&evolved),
                "{}: non-finite evolved prior",
                config.label()
            );
            assert_ne!(prior, evolved, "{}: prior did not evolve", config.label());
            assert!(alarms.iter().all(|a| a.score.is_finite()));
            warm_supported += 1;
        }
        assert_eq!(warm_supported, 9, "PCA, Gamma, KL × 3 tunings carry priors");
    }

    #[test]
    fn observe_and_finish_all_match_run_all() {
        use mawilab_model::{PacketSource, TraceChunker};
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(7)).generate();
        let flows = mawilab_model::FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let configs = standard_configurations();
        let batch = run_all(&configs, &view);

        let mut incs: Vec<Box<dyn IncrementalDetector>> =
            configs.iter().map(|c| c.incremental()).collect();
        for inc in &mut incs {
            inc.begin(&lt.trace.meta);
        }
        let mut source = TraceChunker::new(lt.trace.clone(), 5_000_000);
        while let Some(chunk) = source.next_chunk().unwrap() {
            observe_all(&mut incs, &ChunkView::of_chunk(&lt.trace.meta, chunk));
        }
        assert_eq!(finish_all(&mut incs), batch);
    }
}
