//! Prints per-configuration alarm counts on a default synthetic trace.
use mawilab_detectors::{standard_configurations, TraceView};
use mawilab_synth::{SynthConfig, TraceGenerator};
use std::time::Instant;

fn main() {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(2024)).generate();
    println!(
        "trace: {} packets, {:.2}% anomalous",
        lt.trace.len(),
        lt.truth.anomalous_fraction() * 100.0
    );
    let flows = mawilab_model::FlowTable::build(&lt.trace.packets);
    let view = TraceView::new(&lt.trace, &flows);
    let mut total = 0;
    for c in standard_configurations() {
        let t0 = Instant::now();
        let alarms = c.analyze(&view);
        println!(
            "{:20} {:5} alarms  {:?}",
            c.label(),
            alarms.len(),
            t0.elapsed()
        );
        total += alarms.len();
    }
    println!("total: {total}");
}
