//! # mawilab-label
//!
//! Labeling: from combiner decisions to the published MAWILab
//! database format.
//!
//! * [`heuristics`] — the paper's **Table 1**: rule-of-thumb
//!   classification of a community's traffic into `Attack`, `Special`
//!   or `Unknown` categories. These labels are *not* part of the
//!   pipeline's decisions — they are the evaluation yardstick
//!   (attack ratio, Figs. 5–9) chosen because they are independent of
//!   the detectors' mechanisms.
//! * [`taxonomy`] — the released dataset's four labels (§5):
//!   `Anomalous` (accepted), `Suspicious` (rejected, relative distance
//!   ≤ 0.5), `Notice` (rejected, > 0.5), `Benign` (no alarm at all).
//! * [`summary`] — per-community association-rule summaries: the
//!   concise labels MAWILab publishes instead of raw alarms (§5, §6).
//! * [`output`] — writers for a MAWILab-style CSV and an
//!   admd-flavoured XML annotation file.
//! * [`store`] — the online feed: per-horizon [`LabeledWindow`]
//!   emissions and the day-evicting in-memory [`LabelStore`].

#![forbid(unsafe_code)]

pub mod evidence;
pub mod heuristics;
pub mod output;
pub mod store;
pub mod summary;
pub mod taxonomy;

pub use evidence::CommunityEvidence;
pub use heuristics::{classify_packets, HeuristicCategory, HeuristicLabel, TrafficProfile};
pub use store::{window_communities, LabelStore, LabeledWindow, StoredDay};
pub use summary::{summarize_community, CommunitySummary};
pub use taxonomy::{
    label_communities, label_communities_streaming, label_of, LabeledCommunity, MawilabLabel,
};
// Re-exported so labeling callers can speak the confidence vocabulary
// without a direct combiner dependency.
pub use mawilab_combiner::{ConfidenceThresholds, ConfidenceTier, LabelConfidence};
