//! Community evidence accumulated during streaming ingest.
//!
//! Batch labeling walks the materialised trace to gather each
//! community's packets (for the Table-1 heuristics) and traffic-unit
//! transactions (for the Apriori summaries). Streaming ingest cannot
//! walk back over packets, so [`CommunityEvidence`] accumulates the
//! same information chunk by chunk during the extraction pass:
//!
//! * at flow granularities, one additive [`TrafficProfile`] per flow
//!   — a community's profile is the merge over its flows' profiles,
//!   identical to profiling its packet list because flows partition
//!   packets and each community counts a flow at most once;
//! * at packet granularity, a profile and a [`Transaction`] per
//!   *matched* packet only (a packet-granularity traffic unit is in a
//!   community exactly when the packet itself matched an alarm, so no
//!   pre-match history can be lost).
//!
//! Single-pass ingest adds a twist: the alarms don't exist while the
//! packets stream past, so matched flags can't be known yet.
//! [`CommunityEvidence::observe_units`] banks evidence for every unit
//! and [`CommunityEvidence::retain_matched`] filters packet-granularity
//! state once extraction finalizes — landing on the same bytes the
//! two-pass matched-only path produces.
//!
//! Memory is O(distinct flows) / O(matched packets), never O(trace)
//! (deferred packet-granularity evidence peaks at O(packets in the
//! lag's reach) before `retain_matched`).

use crate::heuristics::TrafficProfile;
use mawilab_mining::Transaction;
use mawilab_model::{Granularity, ItemIndex, Packet};
use std::collections::HashMap;

/// Per-traffic-unit evidence for heuristic and summary labeling.
#[derive(Debug, Clone)]
pub struct CommunityEvidence {
    granularity: Granularity,
    /// Dense per-flow profiles (uniflow/biflow granularities).
    flow_profiles: Vec<TrafficProfile>,
    /// Per-matched-packet profiles (packet granularity).
    packet_profiles: HashMap<u32, TrafficProfile>,
    /// Per-matched-packet transactions (packet granularity).
    packet_transactions: HashMap<u32, Transaction>,
}

impl CommunityEvidence {
    /// An empty collector for one granularity.
    pub fn new(granularity: Granularity) -> Self {
        CommunityEvidence {
            granularity,
            flow_profiles: Vec::new(),
            packet_profiles: HashMap::new(),
            packet_transactions: HashMap::new(),
        }
    }

    /// Folds one chunk in. `ids[i]` is the traffic-unit id of
    /// `packets[i]`, `matched[i]` whether it matched ≥1 alarm (from
    /// the streaming extractor).
    pub fn observe(&mut self, packets: &[Packet], ids: &[u32], matched: &[bool]) {
        assert_eq!(packets.len(), ids.len(), "one id per packet required");
        match self.granularity {
            Granularity::Uniflow | Granularity::Biflow => {
                for (p, &id) in packets.iter().zip(ids) {
                    let idx = id as usize;
                    if idx >= self.flow_profiles.len() {
                        self.flow_profiles.resize(idx + 1, TrafficProfile::new());
                    }
                    self.flow_profiles[idx].add(p);
                }
            }
            Granularity::Packet => {
                assert_eq!(packets.len(), matched.len(), "one matched flag per packet");
                for ((p, &id), &m) in packets.iter().zip(ids).zip(matched) {
                    if m {
                        self.packet_profiles.entry(id).or_default().add(p);
                        self.packet_transactions
                            .insert(id, Transaction::of_packet(p));
                    }
                }
            }
        }
    }

    /// Single-pass variant of [`observe`](Self::observe) for when the
    /// alarms — and therefore the matched flags — do not exist yet.
    /// Flow granularities accumulate exactly as in `observe` (they
    /// never looked at the flags). Packet granularity **defers**: it
    /// banks evidence for *every* packet, to be filtered down by
    /// [`retain_matched`](Self::retain_matched) once extraction
    /// finalizes. Packet-granularity ids are unique per packet, so
    /// bank-then-filter lands on byte-identical state to
    /// matched-only accumulation.
    pub fn observe_units(&mut self, packets: &[Packet], ids: &[u32]) {
        match self.granularity {
            Granularity::Uniflow | Granularity::Biflow => self.observe(packets, ids, &[]),
            Granularity::Packet => {
                assert_eq!(packets.len(), ids.len(), "one id per packet required");
                for (p, &id) in packets.iter().zip(ids) {
                    self.packet_profiles.entry(id).or_default().add(p);
                    self.packet_transactions
                        .insert(id, Transaction::of_packet(p));
                }
            }
        }
    }

    /// Retires deferred packet-granularity evidence down to the units
    /// that matched ≥ 1 alarm. A no-op at flow granularities, whose
    /// evidence never depended on matching.
    pub fn retain_matched(&mut self, matched: &std::collections::HashSet<u32>) {
        if self.granularity == Granularity::Packet {
            self.packet_profiles.retain(|id, _| matched.contains(id));
            self.packet_transactions
                .retain(|id, _| matched.contains(id));
        }
    }

    /// Merged profile of a community's (sorted, deduplicated) traffic
    /// ids — identical to profiling the community's packet list.
    pub fn profile_of(&self, ids: &[u32]) -> TrafficProfile {
        let mut out = TrafficProfile::new();
        match self.granularity {
            Granularity::Uniflow | Granularity::Biflow => {
                for &id in ids {
                    if let Some(p) = self.flow_profiles.get(id as usize) {
                        out.merge(p);
                    }
                }
            }
            Granularity::Packet => {
                for &id in ids {
                    if let Some(p) = self.packet_profiles.get(&id) {
                        out.merge(p);
                    }
                }
            }
        }
        out
    }

    /// The Apriori transactions of a community's traffic ids, in id
    /// order — identical to `summary::community_transactions` over a
    /// batch view.
    pub fn transactions_of(&self, ids: &[u32], index: &ItemIndex) -> Vec<Transaction> {
        match self.granularity {
            Granularity::Packet => ids
                .iter()
                .filter_map(|id| self.packet_transactions.get(id).cloned())
                .collect(),
            Granularity::Uniflow => ids
                .iter()
                .map(|&id| {
                    let k = index.uniflow_key(id);
                    Transaction::new(k.src, k.sport, k.dst, k.dport)
                })
                .collect(),
            Granularity::Biflow => ids
                .iter()
                .map(|&id| {
                    let k = index.biflow_key(id);
                    Transaction::new(k.a, k.aport, k.b, k.bport)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::classify_packets;
    use mawilab_model::TcpFlags;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(172, 20, 0, d)
    }

    fn packets() -> Vec<Packet> {
        let mut v = Vec::new();
        for i in 0..40u64 {
            v.push(Packet::tcp(
                i,
                ip((i % 4) as u8),
                2000 + (i % 2) as u16,
                ip(200),
                445,
                TcpFlags::syn(),
                48,
            ));
        }
        v
    }

    #[test]
    fn merged_flow_profiles_classify_like_packet_list() {
        let pkts = packets();
        let mut index = ItemIndex::new(Granularity::Uniflow);
        let mut ids = Vec::new();
        index.ids_of(&pkts, &mut ids);
        let mut ev = CommunityEvidence::new(Granularity::Uniflow);
        // Feed in two chunks to exercise cross-chunk accumulation.
        ev.observe(&pkts[..17], &ids[..17], &[]);
        ev.observe(&pkts[17..], &ids[17..], &[]);
        let mut community: Vec<u32> = ids.clone();
        community.sort_unstable();
        community.dedup();
        let streamed = ev.profile_of(&community).classify();
        assert_eq!(streamed, classify_packets(&pkts));
    }

    #[test]
    fn packet_granularity_keeps_only_matched() {
        let pkts = packets();
        let ids: Vec<u32> = (0..pkts.len() as u32).collect();
        let matched: Vec<bool> = (0..pkts.len()).map(|i| i % 2 == 0).collect();
        let mut ev = CommunityEvidence::new(Granularity::Packet);
        ev.observe(&pkts, &ids, &matched);
        let index = ItemIndex::new(Granularity::Packet);
        let even: Vec<u32> = ids.iter().copied().filter(|i| i % 2 == 0).collect();
        assert_eq!(ev.transactions_of(&even, &index).len(), even.len());
        let odd: Vec<u32> = ids.iter().copied().filter(|i| i % 2 == 1).collect();
        assert!(ev.transactions_of(&odd, &index).is_empty());
        assert_eq!(ev.profile_of(&even).packet_count(), even.len());
    }

    #[test]
    fn deferred_observation_filters_down_to_the_matched_only_state() {
        let pkts = packets();
        for granularity in [
            Granularity::Packet,
            Granularity::Uniflow,
            Granularity::Biflow,
        ] {
            let mut index = ItemIndex::new(granularity);
            let mut ids = Vec::new();
            index.ids_of(&pkts, &mut ids);
            let matched_flags: Vec<bool> = (0..pkts.len()).map(|i| i % 3 != 1).collect();
            let matched_ids: std::collections::HashSet<u32> = ids
                .iter()
                .zip(&matched_flags)
                .filter(|&(_, &m)| m)
                .map(|(&id, _)| id)
                .collect();

            let mut two_pass = CommunityEvidence::new(granularity);
            two_pass.observe(&pkts, &ids, &matched_flags);

            let mut deferred = CommunityEvidence::new(granularity);
            // Two chunks, alarms unknown; filter at "finalize".
            deferred.observe_units(&pkts[..23], &ids[..23]);
            deferred.observe_units(&pkts[23..], &ids[23..]);
            deferred.retain_matched(&matched_ids);

            let mut community: Vec<u32> = matched_ids.iter().copied().collect();
            community.sort_unstable();
            assert_eq!(
                deferred.profile_of(&community).classify(),
                two_pass.profile_of(&community).classify(),
                "{granularity}"
            );
            assert_eq!(
                deferred.transactions_of(&community, &index),
                two_pass.transactions_of(&community, &index),
                "{granularity}"
            );
        }
    }

    #[test]
    fn uniflow_transactions_use_flow_keys() {
        let pkts = packets();
        let mut index = ItemIndex::new(Granularity::Uniflow);
        let mut ids = Vec::new();
        index.ids_of(&pkts, &mut ids);
        let mut ev = CommunityEvidence::new(Granularity::Uniflow);
        ev.observe(&pkts, &ids, &[]);
        let mut community: Vec<u32> = ids.clone();
        community.sort_unstable();
        community.dedup();
        let txs = ev.transactions_of(&community, &index);
        assert_eq!(txs.len(), community.len());
        for (tx, &id) in txs.iter().zip(&community) {
            let k = index.uniflow_key(id);
            assert_eq!(*tx, Transaction::new(k.src, k.sport, k.dst, k.dport));
        }
    }
}
