//! The MAWILab four-label taxonomy (paper §5).
//!
//! * **Anomalous** — accepted by SCANN: abnormal, any efficient
//!   detector should find it.
//! * **Suspicious** — rejected, but with relative distance ≤ 0.5:
//!   probably anomalous, not clearly identified.
//! * **Notice** — rejected with relative distance > 0.5: not
//!   anomalous, kept only to trace that some detector fired.
//! * **Benign** — no detector reported it at all (the complement of
//!   the labeled set; it appears here for completeness of the enum).

use crate::evidence::CommunityEvidence;
use crate::heuristics::{classify_packets, HeuristicLabel};
use crate::summary::{summarize_community, CommunitySummary};
use mawilab_combiner::{Decision, LabelConfidence};
use mawilab_detectors::TraceView;
use mawilab_mining::mine_rules;
use mawilab_model::{Granularity, ItemIndex, TimeWindow};
use mawilab_similarity::AlarmCommunities;
use std::collections::HashMap;
use std::fmt;

/// The released dataset's label values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MawilabLabel {
    /// Accepted by the combiner.
    Anomalous,
    /// Rejected but near the decision boundary.
    Suspicious,
    /// Rejected, far from the boundary.
    Notice,
    /// Never reported by any detector.
    Benign,
}

impl fmt::Display for MawilabLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MawilabLabel::Anomalous => write!(f, "anomalous"),
            MawilabLabel::Suspicious => write!(f, "suspicious"),
            MawilabLabel::Notice => write!(f, "notice"),
            MawilabLabel::Benign => write!(f, "benign"),
        }
    }
}

/// The relative-distance boundary between Suspicious and Notice
/// (paper §5).
pub const SUSPICIOUS_DISTANCE: f64 = 0.5;

/// Maps one combiner decision to a taxonomy label.
pub fn label_of(decision: &Decision) -> MawilabLabel {
    if decision.accepted {
        MawilabLabel::Anomalous
    } else {
        match decision.relative_distance {
            Some(d) if d <= SUSPICIOUS_DISTANCE => MawilabLabel::Suspicious,
            Some(_) => MawilabLabel::Notice,
            // Strategies without distances: every rejection is Notice.
            None => MawilabLabel::Notice,
        }
    }
}

/// A fully labeled community: taxonomy label, heuristic category,
/// rule summary and span.
#[derive(Debug, Clone)]
pub struct LabeledCommunity {
    /// Community id within the trace.
    pub community: usize,
    /// Taxonomy label derived from the combiner decision.
    pub label: MawilabLabel,
    /// Confidence score + abstention tier from combiner evidence.
    pub confidence: LabelConfidence,
    /// Table-1 heuristic label of the community's traffic.
    pub heuristic: HeuristicLabel,
    /// Association-rule summary.
    pub summary: CommunitySummary,
    /// Time span of the community's alarms.
    pub window: TimeWindow,
    /// Number of alarms merged into this community.
    pub alarms: usize,
    /// Number of distinct detectors involved.
    pub detectors: usize,
}

impl fmt::Display for LabeledCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "community {} [{}] {}: {} alarms, {} detectors, {} rules",
            self.community,
            self.label,
            self.heuristic,
            self.alarms,
            self.detectors,
            self.summary.rules.len()
        )?;
        for (rule, n) in self.summary.rules.iter().take(3) {
            write!(f, "\n    {rule} ({n} units)")?;
        }
        Ok(())
    }
}

/// Labels every community: taxonomy label from the decisions,
/// heuristic label from the community's packets, rule summary from
/// Apriori at `min_support`.
pub fn label_communities(
    view: &TraceView<'_>,
    communities: &AlarmCommunities,
    decisions: &[Decision],
    confidences: &[LabelConfidence],
    min_support: f64,
) -> Vec<LabeledCommunity> {
    assert_eq!(
        decisions.len(),
        communities.community_count(),
        "one decision per community required"
    );
    assert_eq!(
        confidences.len(),
        communities.community_count(),
        "one confidence per community required"
    );
    // Inverted index item-id → communities, then a single pass over
    // packets gathers each community's packet sample for heuristics.
    let mut item_to_comms: HashMap<u32, Vec<u32>> = HashMap::new();
    for c in 0..communities.community_count() {
        for id in communities.community_traffic(c) {
            item_to_comms.entry(id).or_default().push(c as u32);
        }
    }
    let mut packets_of: Vec<Vec<u32>> = vec![Vec::new(); communities.community_count()];
    for (i, _p) in view.trace.packets.iter().enumerate() {
        let item = match communities.granularity {
            Granularity::Packet => i as u32,
            Granularity::Uniflow => view.flows.uniflow_of(i),
            Granularity::Biflow => view.flows.biflow_of(i),
        };
        if let Some(comms) = item_to_comms.get(&item) {
            for &c in comms {
                packets_of[c as usize].push(i as u32);
            }
        }
    }

    (0..communities.community_count())
        .map(|c| {
            let heuristic = classify_packets(
                packets_of[c]
                    .iter()
                    .map(|&i| &view.trace.packets[i as usize]),
            );
            let summary = summarize_community(view, communities, c, min_support);
            LabeledCommunity {
                community: c,
                label: label_of(&decisions[c]),
                confidence: confidences[c],
                heuristic,
                summary,
                window: communities
                    .community_window(c)
                    .unwrap_or_else(|| view.trace.meta.window()),
                alarms: communities.members(c).len(),
                detectors: communities.detectors_in(c).len(),
            }
        })
        .collect()
}

/// Labels every community from streaming-accumulated evidence —
/// no trace, no flow table.
///
/// Produces exactly what [`label_communities`] produces on the
/// materialised trace: taxonomy labels come from the decisions
/// (identical inputs), heuristic labels from merged per-unit
/// [`crate::heuristics::TrafficProfile`]s (additive, so merge order
/// is irrelevant), and summaries from the same transactions in the
/// same sorted-id order. `fallback_window` replaces the batch path's
/// `view.trace.meta.window()` for alarm-less communities.
pub fn label_communities_streaming(
    fallback_window: TimeWindow,
    index: &ItemIndex,
    evidence: &CommunityEvidence,
    communities: &AlarmCommunities,
    decisions: &[Decision],
    confidences: &[LabelConfidence],
    min_support: f64,
) -> Vec<LabeledCommunity> {
    assert_eq!(
        decisions.len(),
        communities.community_count(),
        "one decision per community required"
    );
    assert_eq!(
        confidences.len(),
        communities.community_count(),
        "one confidence per community required"
    );
    (0..communities.community_count())
        .map(|c| {
            let ids = communities.community_traffic(c);
            let heuristic = evidence.profile_of(&ids).classify();
            let txs = evidence.transactions_of(&ids, index);
            let mined = mine_rules(&txs, min_support);
            let summary = CommunitySummary {
                community: c,
                rules: mined.rules,
                rule_degree: mined.rule_degree,
                rule_support: mined.rule_support,
                transactions: txs.len(),
            };
            LabeledCommunity {
                community: c,
                label: label_of(&decisions[c]),
                confidence: confidences[c],
                heuristic,
                summary,
                window: communities.community_window(c).unwrap_or(fallback_window),
                alarms: communities.members(c).len(),
                detectors: communities.detectors_in(c).len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(accepted: bool, rel: Option<f64>) -> Decision {
        Decision {
            accepted,
            relative_distance: rel,
        }
    }

    #[test]
    fn taxonomy_mapping() {
        assert_eq!(label_of(&dec(true, Some(3.0))), MawilabLabel::Anomalous);
        assert_eq!(label_of(&dec(true, None)), MawilabLabel::Anomalous);
        assert_eq!(label_of(&dec(false, Some(0.2))), MawilabLabel::Suspicious);
        assert_eq!(label_of(&dec(false, Some(0.5))), MawilabLabel::Suspicious);
        assert_eq!(label_of(&dec(false, Some(0.500001))), MawilabLabel::Notice);
        assert_eq!(
            label_of(&dec(false, Some(f64::INFINITY))),
            MawilabLabel::Notice
        );
        assert_eq!(label_of(&dec(false, None)), MawilabLabel::Notice);
    }

    #[test]
    fn labels_order_by_severity() {
        assert!(MawilabLabel::Anomalous < MawilabLabel::Suspicious);
        assert!(MawilabLabel::Suspicious < MawilabLabel::Notice);
        assert!(MawilabLabel::Notice < MawilabLabel::Benign);
    }

    #[test]
    fn display_names_match_published_database() {
        assert_eq!(MawilabLabel::Anomalous.to_string(), "anomalous");
        assert_eq!(MawilabLabel::Suspicious.to_string(), "suspicious");
        assert_eq!(MawilabLabel::Notice.to_string(), "notice");
        assert_eq!(MawilabLabel::Benign.to_string(), "benign");
    }
}
