//! The paper's Table 1: heuristic traffic categorisation.
//!
//! "These are originated from the anomalies previously reported [7,14]
//! and the manual inspection of MAWI" — they look only at ports, TCP
//! flags and ICMP share, so they are independent of all four
//! detectors' mechanisms and can referee between them.
//!
//! Order matters and follows the table: attack heuristics first, then
//! the special services, then `Unknown`.

use mawilab_model::{Packet, Protocol};
use std::fmt;

/// Coarse category of a heuristic label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeuristicCategory {
    /// Known-attack traffic shapes.
    Attack,
    /// Well-known services behaving normally (but flagged by some
    /// alarm).
    Special,
    /// Everything else.
    Unknown,
}

impl fmt::Display for HeuristicCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicCategory::Attack => write!(f, "Attack"),
            HeuristicCategory::Special => write!(f, "Special"),
            HeuristicCategory::Unknown => write!(f, "Unknown"),
        }
    }
}

/// The detailed label rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicLabel {
    /// Ports 1023/tcp, 5554/tcp or 9898/tcp.
    Sasser,
    /// Port 135/tcp.
    Rpc,
    /// Port 445/tcp.
    Smb,
    /// High ICMP traffic.
    Ping,
    /// >7 packets with SYN/RST/FIN ≥ 50%, or service ports with
    /// > SYN ≥ 30%.
    OtherAttack,
    /// Ports 137/udp or 139/tcp.
    NetBios,
    /// Ports 80/tcp, 8080/tcp with < 30% SYN.
    Http,
    /// Ports 20, 21, 22/tcp or 53/tcp&udp with < 30% SYN.
    MultiServices,
    /// No other heuristic matched.
    Unknown,
}

impl HeuristicLabel {
    /// The category of this label (Table 1, first column).
    pub fn category(self) -> HeuristicCategory {
        match self {
            HeuristicLabel::Sasser
            | HeuristicLabel::Rpc
            | HeuristicLabel::Smb
            | HeuristicLabel::Ping
            | HeuristicLabel::OtherAttack
            | HeuristicLabel::NetBios => HeuristicCategory::Attack,
            HeuristicLabel::Http | HeuristicLabel::MultiServices => HeuristicCategory::Special,
            HeuristicLabel::Unknown => HeuristicCategory::Unknown,
        }
    }

    /// All labels in Table-1 order.
    pub const ALL: [HeuristicLabel; 9] = [
        HeuristicLabel::Sasser,
        HeuristicLabel::Rpc,
        HeuristicLabel::Smb,
        HeuristicLabel::Ping,
        HeuristicLabel::OtherAttack,
        HeuristicLabel::NetBios,
        HeuristicLabel::Http,
        HeuristicLabel::MultiServices,
        HeuristicLabel::Unknown,
    ];
}

impl fmt::Display for HeuristicLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicLabel::Sasser => write!(f, "Sasser"),
            HeuristicLabel::Rpc => write!(f, "RPC"),
            HeuristicLabel::Smb => write!(f, "SMB"),
            HeuristicLabel::Ping => write!(f, "Ping"),
            HeuristicLabel::OtherAttack => write!(f, "Other attacks"),
            HeuristicLabel::NetBios => write!(f, "NetBIOS"),
            HeuristicLabel::Http => write!(f, "Http"),
            HeuristicLabel::MultiServices => write!(f, "dns,ftp,ssh"),
            HeuristicLabel::Unknown => write!(f, "Unknown"),
        }
    }
}

/// Additive traffic profile: the per-packet counters the Table-1
/// rules consume (port shares, TCP flag ratios, ICMP share).
///
/// Profiles are monoidal — [`add`](TrafficProfile::add) folds one
/// packet in, [`merge`](TrafficProfile::merge) combines two profiles
/// — so a community's profile can be assembled from per-flow
/// profiles accumulated chunk by chunk during streaming ingest, and
/// the result is bit-identical to profiling the community's packet
/// list in one batch pass.
/// Counters are `u32` and port slots are keyed positionally by the
/// static `TCP_PORTS`/`UDP_PORTS` tables: the streaming pipeline
/// keeps one profile per live flow, so the struct is packed to 76
/// bytes rather than carrying redundant port labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficProfile {
    total: u32,
    icmp: u32,
    tcp: u32,
    syn: u32,
    ctrl: u32, // SYN|RST|FIN
    port_tcp: [u32; 12],
    port_udp: [u32; 2],
}

impl Default for TrafficProfile {
    fn default() -> Self {
        TrafficProfile::new()
    }
}

const TCP_PORTS: [u16; 12] = [1023, 5554, 9898, 135, 445, 139, 80, 8080, 20, 21, 22, 53];
const UDP_PORTS: [u16; 2] = [137, 53];

impl TrafficProfile {
    /// An empty profile.
    pub fn new() -> Self {
        TrafficProfile {
            total: 0,
            icmp: 0,
            tcp: 0,
            syn: 0,
            ctrl: 0,
            port_tcp: [0; 12],
            port_udp: [0; 2],
        }
    }

    /// Folds one packet into the profile.
    pub fn add(&mut self, pkt: &Packet) {
        self.total += 1;
        match pkt.proto {
            Protocol::Icmp => self.icmp += 1,
            Protocol::Tcp => {
                self.tcp += 1;
                if pkt.flags.is_syn() {
                    self.syn += 1;
                }
                if pkt.flags.is_syn() || pkt.flags.is_rst() || pkt.flags.is_fin() {
                    self.ctrl += 1;
                }
                for (slot, &port) in self.port_tcp.iter_mut().zip(TCP_PORTS.iter()) {
                    if pkt.sport == port || pkt.dport == port {
                        *slot += 1;
                    }
                }
            }
            Protocol::Udp => {
                for (slot, &port) in self.port_udp.iter_mut().zip(UDP_PORTS.iter()) {
                    if pkt.sport == port || pkt.dport == port {
                        *slot += 1;
                    }
                }
            }
            Protocol::Other(_) => {}
        }
    }

    /// Combines another profile into this one (disjoint packet sets
    /// assumed, as with per-flow partitions).
    pub fn merge(&mut self, other: &TrafficProfile) {
        self.total += other.total;
        self.icmp += other.icmp;
        self.tcp += other.tcp;
        self.syn += other.syn;
        self.ctrl += other.ctrl;
        for (a, b) in self.port_tcp.iter_mut().zip(other.port_tcp.iter()) {
            *a += b;
        }
        for (a, b) in self.port_udp.iter_mut().zip(other.port_udp.iter()) {
            *a += b;
        }
    }

    /// Number of packets folded in.
    pub fn packet_count(&self) -> usize {
        self.total as usize
    }

    /// Profiles a packet iterator in one pass.
    pub fn collect<'a, I: IntoIterator<Item = &'a Packet>>(packets: I) -> Self {
        let mut p = TrafficProfile::new();
        for pkt in packets {
            p.add(pkt);
        }
        p
    }

    fn tcp_share(&self, port: u16) -> f64 {
        let hits = TCP_PORTS
            .iter()
            .position(|&q| q == port)
            .map_or(0, |i| self.port_tcp[i]);
        if self.total == 0 {
            0.0
        } else {
            hits as f64 / self.total as f64
        }
    }

    fn udp_share(&self, port: u16) -> f64 {
        let hits = UDP_PORTS
            .iter()
            .position(|&q| q == port)
            .map_or(0, |i| self.port_udp[i]);
        if self.total == 0 {
            0.0
        } else {
            hits as f64 / self.total as f64
        }
    }

    fn syn_ratio(&self) -> f64 {
        if self.tcp == 0 {
            0.0
        } else {
            self.syn as f64 / self.tcp as f64
        }
    }

    fn ctrl_ratio(&self) -> f64 {
        if self.tcp == 0 {
            0.0
        } else {
            self.ctrl as f64 / self.tcp as f64
        }
    }

    fn icmp_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.icmp as f64 / self.total as f64
        }
    }
}

/// A port "carries" the community's traffic when at least this share
/// of packets touches it. Table 1 says "traffic on port X" without a
/// threshold; 25% keeps mixed communities honest.
const PORT_SHARE: f64 = 0.25;
/// "High ICMP traffic": at least half the packets and a minimum count.
const ICMP_SHARE: f64 = 0.5;
const ICMP_MIN: u32 = 10;

/// Classifies a set of packets with the Table-1 heuristics.
pub fn classify_packets<'a, I>(packets: I) -> HeuristicLabel
where
    I: IntoIterator<Item = &'a Packet>,
{
    TrafficProfile::collect(packets).classify()
}

impl TrafficProfile {
    /// Applies the Table-1 heuristics to the accumulated counters.
    pub fn classify(&self) -> HeuristicLabel {
        let p = self;
        if p.total == 0 {
            return HeuristicLabel::Unknown;
        }
        let syn = p.syn_ratio();

        // Attack rows, in table order.
        if p.tcp_share(1023) >= PORT_SHARE
            || p.tcp_share(5554) >= PORT_SHARE
            || p.tcp_share(9898) >= PORT_SHARE
        {
            return HeuristicLabel::Sasser;
        }
        if p.tcp_share(135) >= PORT_SHARE {
            return HeuristicLabel::Rpc;
        }
        if p.tcp_share(445) >= PORT_SHARE {
            return HeuristicLabel::Smb;
        }
        if p.icmp_ratio() >= ICMP_SHARE && p.icmp >= ICMP_MIN {
            return HeuristicLabel::Ping;
        }
        let service_share = p
            .tcp_share(80)
            .max(p.tcp_share(8080))
            .max(p.tcp_share(20))
            .max(p.tcp_share(21))
            .max(p.tcp_share(22))
            .max(p.tcp_share(53).max(p.udp_share(53)));
        if (p.total > 7 && p.ctrl_ratio() >= 0.5) || (service_share >= PORT_SHARE && syn >= 0.3) {
            return HeuristicLabel::OtherAttack;
        }
        if p.udp_share(137) >= PORT_SHARE || p.tcp_share(139) >= PORT_SHARE {
            return HeuristicLabel::NetBios;
        }

        // Special rows.
        if (p.tcp_share(80) >= PORT_SHARE || p.tcp_share(8080) >= PORT_SHARE) && syn < 0.3 {
            return HeuristicLabel::Http;
        }
        let multi = p
            .tcp_share(20)
            .max(p.tcp_share(21))
            .max(p.tcp_share(22))
            .max(p.tcp_share(53))
            .max(p.udp_share(53));
        if multi >= PORT_SHARE && syn < 0.3 {
            return HeuristicLabel::MultiServices;
        }
        HeuristicLabel::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_model::TcpFlags;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(172, 16, 0, d)
    }

    fn syn_to(port: u16, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::tcp(
                    i as u64,
                    ip((i % 200) as u8),
                    1025 + i as u16,
                    ip(250),
                    port,
                    TcpFlags::syn(),
                    48,
                )
            })
            .collect()
    }

    fn http_session(n: usize) -> Vec<Packet> {
        let mut v = vec![
            Packet::tcp(0, ip(1), 2000, ip(2), 80, TcpFlags::syn(), 48),
            Packet::tcp(1, ip(2), 80, ip(1), 2000, TcpFlags::syn_ack(), 48),
        ];
        for i in 0..n {
            v.push(Packet::tcp(
                2 + i as u64,
                ip(2),
                80,
                ip(1),
                2000,
                TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                512,
            ));
        }
        v
    }

    #[test]
    fn sasser_ports() {
        for port in [1023, 5554, 9898] {
            let pkts = syn_to(port, 20);
            assert_eq!(
                classify_packets(&pkts),
                HeuristicLabel::Sasser,
                "port {port}"
            );
        }
    }

    #[test]
    fn rpc_and_smb() {
        assert_eq!(classify_packets(&syn_to(135, 20)), HeuristicLabel::Rpc);
        assert_eq!(classify_packets(&syn_to(445, 20)), HeuristicLabel::Smb);
    }

    #[test]
    fn ping_flood_is_ping() {
        let pkts: Vec<Packet> = (0..50)
            .map(|i| Packet::icmp(i, ip(1), ip(2), 8, 0, 1064))
            .collect();
        assert_eq!(classify_packets(&pkts), HeuristicLabel::Ping);
    }

    #[test]
    fn few_icmp_is_not_ping() {
        let pkts: Vec<Packet> = (0..5)
            .map(|i| Packet::icmp(i, ip(1), ip(2), 8, 0, 64))
            .collect();
        assert_ne!(classify_packets(&pkts), HeuristicLabel::Ping);
    }

    #[test]
    fn syn_scan_on_random_port_is_other_attack() {
        let pkts = syn_to(6667, 30);
        assert_eq!(classify_packets(&pkts), HeuristicLabel::OtherAttack);
    }

    #[test]
    fn http_with_high_syn_is_attack_not_special() {
        let pkts = syn_to(80, 30);
        assert_eq!(classify_packets(&pkts), HeuristicLabel::OtherAttack);
    }

    #[test]
    fn seven_packet_rule_boundary() {
        // "more than 7 packets" — 7 SYNs to a random port are NOT
        // OtherAttack via the flag rule.
        let pkts = syn_to(31337, 7);
        assert_eq!(classify_packets(&pkts), HeuristicLabel::Unknown);
        let pkts8 = syn_to(31337, 8);
        assert_eq!(classify_packets(&pkts8), HeuristicLabel::OtherAttack);
    }

    #[test]
    fn netbios_ports() {
        let udp: Vec<Packet> = (0..20)
            .map(|i| Packet::udp(i, ip(1), 137, ip((i % 200) as u8), 137, 78))
            .collect();
        assert_eq!(classify_packets(&udp), HeuristicLabel::NetBios);
        // 139/tcp with low flag ratios (needs data packets to avoid
        // the OtherAttack rule).
        let mut tcp = Vec::new();
        for i in 0..30u64 {
            tcp.push(Packet::tcp(
                i,
                ip(1),
                3000,
                ip(2),
                139,
                TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                256,
            ));
        }
        assert_eq!(classify_packets(&tcp), HeuristicLabel::NetBios);
    }

    #[test]
    fn normal_http_is_special() {
        let pkts = http_session(30);
        assert_eq!(classify_packets(&pkts), HeuristicLabel::Http);
        assert_eq!(
            classify_packets(&pkts).category(),
            HeuristicCategory::Special
        );
    }

    #[test]
    fn dns_is_multi_services() {
        let pkts: Vec<Packet> = (0..20)
            .map(|i| Packet::udp(i, ip(1), 1025, ip(2), 53, 80))
            .collect();
        assert_eq!(classify_packets(&pkts), HeuristicLabel::MultiServices);
    }

    #[test]
    fn ephemeral_ports_are_unknown() {
        let pkts: Vec<Packet> = (0..40)
            .map(|i| {
                Packet::tcp(
                    i,
                    ip(1),
                    40000,
                    ip(2),
                    50000,
                    TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                    1500,
                )
            })
            .collect();
        assert_eq!(classify_packets(&pkts), HeuristicLabel::Unknown);
        assert_eq!(
            classify_packets(&pkts).category(),
            HeuristicCategory::Unknown
        );
    }

    #[test]
    fn empty_traffic_is_unknown() {
        assert_eq!(
            classify_packets(std::iter::empty()),
            HeuristicLabel::Unknown
        );
    }

    #[test]
    fn attack_rows_precede_special_rows() {
        // Sasser wins even when port 80 is also present.
        let mut pkts = syn_to(5554, 30);
        pkts.extend(http_session(10));
        assert_eq!(classify_packets(&pkts), HeuristicLabel::Sasser);
    }

    #[test]
    fn categories_cover_all_labels() {
        for l in HeuristicLabel::ALL {
            let _ = l.category(); // must be total
            assert!(!l.to_string().is_empty());
        }
        assert_eq!(
            HeuristicLabel::ALL
                .iter()
                .filter(|l| l.category() == HeuristicCategory::Attack)
                .count(),
            6
        );
    }
}
