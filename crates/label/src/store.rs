//! The online label feed: per-horizon windows and the bounded
//! in-memory label store.
//!
//! A batch run labels a finished trace; an online labeler publishes
//! labels **per horizon window** as the stream passes — window *W* is
//! sealed once the detectors have seen *W + lag*, so the maximum
//! label latency is `lag + one chunk`. [`LabeledWindow`] is one such
//! emission: the communities whose span starts inside the window,
//! plus when (in stream time) the window was sealed.
//!
//! An always-on service also cannot keep every label it ever emitted
//! in memory. [`LabelStore`] holds labeled windows keyed by archive
//! day and evicts at **day granularity** — the natural unit of the
//! MAWILab archive, where each day is one published label file —
//! either explicitly ([`LabelStore::evict_before`]) or by capacity
//! (`max_days`, oldest day out first).

use crate::taxonomy::LabeledCommunity;
use mawilab_model::{TimeWindow, TraceDate};
use std::collections::BTreeMap;

/// One horizon window's labels, as emitted by the online pipeline.
#[derive(Debug, Clone)]
pub struct LabeledWindow {
    /// The horizon window `[start, end)` the labels cover.
    pub window: TimeWindow,
    /// Stream time (µs) at which this window sealed: the end of the
    /// chunk whose arrival pushed the high-water mark past
    /// `window.end + lag` — or the stream end, for windows still
    /// inside the lag when the stream finished.
    pub sealed_at_us: u64,
    /// Whether the seal came from end-of-stream rather than the
    /// high-water mark passing `window.end + lag`.
    pub sealed_by_finish: bool,
    /// Communities whose span starts in this window, in community
    /// order.
    pub communities: Vec<LabeledCommunity>,
}

impl LabeledWindow {
    /// Label latency of the window: how long after the window closed
    /// its labels became available. Bounded by `lag + one chunk` for
    /// windows sealed by the moving high-water mark.
    ///
    /// A watermark seal *before* the window's end is a clock
    /// inversion — the `SealTracker` monotonicity invariant broken —
    /// not a zero-latency label. Tail windows sealed by end-of-stream
    /// (`sealed_by_finish`) legitimately seal before their nominal
    /// end and clamp to 0.
    pub fn latency_us(&self) -> u64 {
        debug_assert!(
            self.sealed_by_finish || self.sealed_at_us >= self.window.end_us,
            "window [{}, {}) watermark-sealed at {} — before its own end",
            self.window.start_us,
            self.window.end_us,
            self.sealed_at_us
        );
        self.sealed_at_us.saturating_sub(self.window.end_us)
    }

    /// True when the watermark seal landed before the window's end —
    /// the clock inversion `latency_us` refuses to report as zero
    /// latency. Counted into `HorizonStats::negative_latency` by the
    /// online pipeline.
    pub fn sealed_before_end(&self) -> bool {
        !self.sealed_by_finish && self.sealed_at_us < self.window.end_us
    }
}

/// Partitions labeled communities into `n_windows` horizon windows of
/// `horizon_us` starting at `origin_us`. A community lands in the
/// window containing its span start (community windows can outlast a
/// horizon window; the start decides, so each community is published
/// exactly once). Spans starting before `origin_us` fold into window
/// 0, spans past the grid into the last window.
pub fn window_communities(
    origin_us: u64,
    horizon_us: u64,
    n_windows: usize,
    communities: &[LabeledCommunity],
) -> Vec<Vec<LabeledCommunity>> {
    assert!(horizon_us > 0, "horizon width must be positive");
    let mut out: Vec<Vec<LabeledCommunity>> = vec![Vec::new(); n_windows];
    if n_windows == 0 {
        assert!(communities.is_empty(), "communities but no windows");
        return out;
    }
    for c in communities {
        let k = (c.window.start_us.saturating_sub(origin_us) / horizon_us) as usize;
        out[k.min(n_windows - 1)].push(c.clone());
    }
    out
}

/// In-memory store of labeled windows with day-granular eviction.
#[derive(Debug, Default)]
pub struct LabelStore {
    /// Keyed by `TraceDate::days_since_epoch` so iteration is
    /// chronological and eviction pops the front.
    days: BTreeMap<i64, StoredDay>,
    max_days: Option<usize>,
}

/// One archive day's labeled windows.
#[derive(Debug, Clone)]
pub struct StoredDay {
    /// The archive day.
    pub date: TraceDate,
    /// The day's labeled windows, in window order.
    pub windows: Vec<LabeledWindow>,
}

impl LabelStore {
    /// An unbounded store.
    pub fn new() -> Self {
        LabelStore::default()
    }

    /// A store that retains at most `max_days` days, evicting the
    /// oldest day when a newer one pushes it over.
    pub fn with_max_days(max_days: usize) -> Self {
        assert!(max_days > 0, "a zero-day store could never hold an insert");
        LabelStore {
            days: BTreeMap::new(),
            max_days: Some(max_days),
        }
    }

    /// Inserts (or replaces) one day's windows, then applies the
    /// capacity bound. Returns the dates evicted to make room.
    pub fn insert_day(&mut self, date: TraceDate, windows: Vec<LabeledWindow>) -> Vec<TraceDate> {
        self.days
            .insert(date.days_since_epoch(), StoredDay { date, windows });
        let mut evicted = Vec::new();
        if let Some(max) = self.max_days {
            while self.days.len() > max {
                let oldest = *self.days.keys().next().expect("non-empty"); // lint:allow(panic-free-data-plane): loop guard len > max >= 0 keeps the map non-empty
                let day = self.days.remove(&oldest).expect("present"); // lint:allow(panic-free-data-plane): key was just read from this map
                evicted.push(day.date);
            }
        }
        evicted
    }

    /// Drops every stored day strictly before `date`. Returns how
    /// many days were evicted.
    pub fn evict_before(&mut self, date: TraceDate) -> usize {
        let keep = self.days.split_off(&date.days_since_epoch());
        let evicted = self.days.len();
        self.days = keep;
        evicted
    }

    /// One stored day, if present.
    pub fn day(&self, date: TraceDate) -> Option<&StoredDay> {
        self.days.get(&date.days_since_epoch())
    }

    /// Stored days, oldest first.
    pub fn days(&self) -> impl Iterator<Item = &StoredDay> {
        self.days.values()
    }

    /// Number of days currently held.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// Total labeled windows currently held.
    pub fn window_count(&self) -> usize {
        self.days.values().map(|d| d.windows.len()).sum()
    }

    /// Every stored community whose span overlaps `range`,
    /// chronological by day, then window, then community order.
    pub fn query(&self, range: TimeWindow) -> Vec<&LabeledCommunity> {
        self.days
            .values()
            .flat_map(|d| &d.windows)
            .filter(|w| w.window.overlaps(&range))
            .flat_map(|w| &w.communities)
            .filter(|c| c.window.overlaps(&range))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::HeuristicLabel;
    use crate::summary::CommunitySummary;
    use crate::taxonomy::MawilabLabel;

    fn community(id: usize, start_us: u64, len_us: u64) -> LabeledCommunity {
        LabeledCommunity {
            community: id,
            label: MawilabLabel::Anomalous,
            confidence: mawilab_combiner::LabelConfidence {
                score: 1.0,
                tier: mawilab_combiner::ConfidenceTier::Anomalous,
            },
            heuristic: HeuristicLabel::Unknown,
            summary: CommunitySummary {
                community: id,
                rules: Vec::new(),
                rule_degree: 0.0,
                rule_support: 0.0,
                transactions: 0,
            },
            window: TimeWindow::new(start_us, start_us + len_us),
            alarms: 1,
            detectors: 1,
        }
    }

    fn window(start_us: u64, end_us: u64, communities: Vec<LabeledCommunity>) -> LabeledWindow {
        LabeledWindow {
            window: TimeWindow::new(start_us, end_us),
            sealed_at_us: end_us,
            sealed_by_finish: false,
            communities,
        }
    }

    #[test]
    fn finish_sealed_tails_clamp_watermark_inversions_trip() {
        // A tail window sealed by end-of-stream before its nominal end
        // is legitimate: zero latency, not an inversion.
        let tail = LabeledWindow {
            window: TimeWindow::new(0, 60),
            sealed_at_us: 45,
            sealed_by_finish: true,
            communities: vec![],
        };
        assert_eq!(tail.latency_us(), 0);
        assert!(!tail.sealed_before_end());
        // A watermark seal before the end is the counted invariant
        // breach.
        let inverted = LabeledWindow {
            window: TimeWindow::new(0, 60),
            sealed_at_us: 45,
            sealed_by_finish: false,
            communities: vec![],
        };
        assert!(inverted.sealed_before_end());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before its own end")]
    fn watermark_seal_before_window_end_asserts() {
        let inverted = LabeledWindow {
            window: TimeWindow::new(0, 60),
            sealed_at_us: 45,
            sealed_by_finish: false,
            communities: vec![],
        };
        let _ = inverted.latency_us();
    }

    #[test]
    fn communities_partition_by_span_start() {
        let cs = vec![
            community(0, 5, 10),    // window 0
            community(1, 60, 5),    // window 1
            community(2, 125, 400), // window 2 (long span, start decides)
            community(3, 9_999, 1), // beyond the grid: folds into last
        ];
        let parts = window_communities(0, 60, 3, &cs);
        assert_eq!(parts.len(), 3);
        let ids: Vec<Vec<usize>> = parts
            .iter()
            .map(|w| w.iter().map(|c| c.community).collect())
            .collect();
        assert_eq!(ids, vec![vec![0], vec![1], vec![2, 3]]);
        // Every community published exactly once.
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), cs.len());
    }

    #[test]
    fn empty_windows_are_kept_in_the_grid() {
        let cs = vec![community(0, 130, 5)];
        let parts = window_communities(0, 60, 4, &cs);
        assert_eq!(
            parts.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![0, 0, 1, 0],
            "empty horizon windows must still be emitted"
        );
    }

    #[test]
    fn store_evicts_at_day_granularity() {
        let mut store = LabelStore::with_max_days(2);
        let d1 = TraceDate::new(2006, 6, 28);
        let d2 = TraceDate::new(2006, 6, 29);
        let d3 = TraceDate::new(2006, 7, 1);
        assert!(store
            .insert_day(d1, vec![window(0, 60, vec![community(0, 10, 5)])])
            .is_empty());
        assert!(store
            .insert_day(d2, vec![window(60, 120, vec![])])
            .is_empty());
        let evicted = store.insert_day(d3, vec![window(120, 180, vec![community(1, 130, 5)])]);
        assert_eq!(evicted, vec![d1], "oldest day must go first");
        assert_eq!(store.day_count(), 2);
        assert!(store.day(d1).is_none());
        assert!(store.day(d2).is_some() && store.day(d3).is_some());

        let mut store = LabelStore::new();
        for (i, d) in [d1, d2, d3].into_iter().enumerate() {
            store.insert_day(d, vec![window(i as u64 * 60, (i as u64 + 1) * 60, vec![])]);
        }
        assert_eq!(store.evict_before(d3), 2);
        assert_eq!(store.day_count(), 1);
        assert_eq!(store.days().next().unwrap().date, d3);
        assert_eq!(store.window_count(), 1);
    }

    #[test]
    fn query_returns_overlapping_communities_in_order() {
        let mut store = LabelStore::new();
        let d1 = TraceDate::new(2006, 6, 28);
        let d2 = TraceDate::new(2006, 6, 29);
        store.insert_day(
            d1,
            vec![
                window(0, 60, vec![community(0, 10, 5), community(1, 50, 30)]),
                window(60, 120, vec![community(2, 70, 5)]),
            ],
        );
        store.insert_day(d2, vec![window(120, 180, vec![community(3, 150, 5)])]);
        let hits: Vec<usize> = store
            .query(TimeWindow::new(55, 130))
            .iter()
            .map(|c| c.community)
            .collect();
        // Community 0 ends at 15 (no overlap); 1 spans 50..80; 2 spans
        // 70..75; 3 starts at 150 (no overlap).
        assert_eq!(hits, vec![1, 2]);
        assert!(store.query(TimeWindow::new(10_000, 10_001)).is_empty());
    }
}
