//! Output writers: MAWILab-style CSV and admd-flavoured XML.
//!
//! The published MAWILab database distributes, per trace, a list of
//! labeled anomalies with their feature filters. These writers emit
//! the same information from a [`LabeledCommunity`] report: a flat
//! CSV (one row per community rule) and an XML annotation file in the
//! spirit of the admd schema the MAWILab site uses.

use crate::taxonomy::LabeledCommunity;
use std::io::{self, Write};

/// CSV header written by [`write_csv`].
pub const CSV_HEADER: &str =
    "community,label,confidence,tier,heuristic,category,alarms,detectors,start_s,end_s,src,sport,dst,dport,rule_support_units";

fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    v.as_ref().map_or_else(String::new, |x| x.to_string())
}

/// Writes the labeled communities as CSV, one row per (community,
/// rule); communities without rules emit a single row with empty
/// filter columns.
pub fn write_csv<W: Write>(mut w: W, report: &[LabeledCommunity]) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for lc in report {
        let base = format!(
            "{},{},{:.6},{},{},{},{},{},{:.6},{:.6}",
            lc.community,
            lc.label,
            lc.confidence.score,
            lc.confidence.tier.name(),
            lc.heuristic,
            lc.heuristic.category(),
            lc.alarms,
            lc.detectors,
            lc.window.start_us as f64 / 1e6,
            lc.window.end_us as f64 / 1e6,
        );
        if lc.summary.rules.is_empty() {
            writeln!(w, "{base},,,,,0")?;
        } else {
            for (rule, n) in &lc.summary.rules {
                writeln!(
                    w,
                    "{base},{},{},{},{},{n}",
                    opt(&rule.src),
                    opt(&rule.sport),
                    opt(&rule.dst),
                    opt(&rule.dport),
                )?;
            }
        }
    }
    Ok(())
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Writes the labeled communities as an admd-style XML annotation
/// document.
pub fn write_xml<W: Write>(
    mut w: W,
    trace_name: &str,
    report: &[LabeledCommunity],
) -> io::Result<()> {
    writeln!(w, r#"<?xml version="1.0" encoding="UTF-8"?>"#)?;
    writeln!(
        w,
        r#"<admd:data xmlns:admd="http://www.fukuda-lab.org/mawilab/admd" source="{}">"#,
        xml_escape(trace_name)
    )?;
    for lc in report {
        writeln!(
            w,
            r#"  <anomaly community="{}" type="{}" confidence="{:.6}" tier="{}" heuristic="{}" alarms="{}" detectors="{}">"#,
            lc.community,
            lc.label,
            lc.confidence.score,
            lc.confidence.tier.name(),
            xml_escape(&lc.heuristic.to_string()),
            lc.alarms,
            lc.detectors
        )?;
        writeln!(
            w,
            r#"    <slice start="{:.6}" end="{:.6}"/>"#,
            lc.window.start_us as f64 / 1e6,
            lc.window.end_us as f64 / 1e6
        )?;
        for (rule, n) in &lc.summary.rules {
            write!(w, r#"    <filter units="{n}""#)?;
            if let Some(v) = rule.src {
                write!(w, r#" src_ip="{v}""#)?;
            }
            if let Some(v) = rule.sport {
                write!(w, r#" src_port="{v}""#)?;
            }
            if let Some(v) = rule.dst {
                write!(w, r#" dst_ip="{v}""#)?;
            }
            if let Some(v) = rule.dport {
                write!(w, r#" dst_port="{v}""#)?;
            }
            writeln!(w, "/>")?;
        }
        writeln!(w, "  </anomaly>")?;
    }
    writeln!(w, "</admd:data>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::HeuristicLabel;
    use crate::summary::CommunitySummary;
    use crate::taxonomy::MawilabLabel;
    use mawilab_model::{TimeWindow, TrafficRule};
    use std::net::Ipv4Addr;

    fn sample_report() -> Vec<LabeledCommunity> {
        vec![
            LabeledCommunity {
                community: 0,
                label: MawilabLabel::Anomalous,
                confidence: mawilab_combiner::LabelConfidence {
                    score: 0.875,
                    tier: mawilab_combiner::ConfidenceTier::Anomalous,
                },
                heuristic: HeuristicLabel::Smb,
                summary: CommunitySummary {
                    community: 0,
                    rules: vec![(
                        TrafficRule {
                            src: Some(Ipv4Addr::new(9, 8, 7, 6)),
                            dport: Some(445),
                            ..Default::default()
                        },
                        42,
                    )],
                    rule_degree: 2.0,
                    rule_support: 0.9,
                    transactions: 47,
                },
                window: TimeWindow::new(1_000_000, 2_000_000),
                alarms: 5,
                detectors: 3,
            },
            LabeledCommunity {
                community: 1,
                label: MawilabLabel::Notice,
                confidence: mawilab_combiner::LabelConfidence {
                    score: 0.41,
                    tier: mawilab_combiner::ConfidenceTier::Uncertain,
                },
                heuristic: HeuristicLabel::Unknown,
                summary: CommunitySummary {
                    community: 1,
                    rules: vec![],
                    rule_degree: 0.0,
                    rule_support: 0.0,
                    transactions: 3,
                },
                window: TimeWindow::new(0, 500_000),
                alarms: 1,
                detectors: 1,
            },
        ]
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample_report()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 3); // header + 1 rule row + 1 empty row
        assert!(lines[1].contains("anomalous"));
        assert!(lines[1].contains("0.875000"));
        assert!(lines[1].contains("9.8.7.6"));
        assert!(lines[1].contains("445"));
        assert!(lines[2].contains("uncertain"));
        assert!(lines[2].ends_with(",,,,,0"));
    }

    #[test]
    fn csv_column_count_is_consistent() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample_report()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let n_cols = CSV_HEADER.split(',').count();
        for line in s.lines() {
            assert_eq!(line.split(',').count(), n_cols, "bad row: {line}");
        }
    }

    #[test]
    fn xml_is_well_formed_ish() {
        let mut buf = Vec::new();
        write_xml(&mut buf, "20040602.pcap", &sample_report()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("<?xml"));
        assert_eq!(s.matches("<anomaly").count(), 2);
        assert_eq!(s.matches("</anomaly>").count(), 2);
        assert!(s.contains(r#"dst_port="445""#));
        assert!(s.contains(r#"type="anomalous""#));
        assert!(s.contains(r#"confidence="0.875000""#));
        assert!(s.contains(r#"tier="uncertain""#));
        assert!(s.trim_end().ends_with("</admd:data>"));
    }

    #[test]
    fn xml_escapes_special_characters() {
        let mut buf = Vec::new();
        write_xml(&mut buf, r#"a<b>&"c"#, &sample_report()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("a&lt;b&gt;&amp;&quot;c"));
    }

    #[test]
    fn empty_report_is_valid() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
        let mut buf2 = Vec::new();
        write_xml(&mut buf2, "x", &[]).unwrap();
        let s = String::from_utf8(buf2).unwrap();
        assert!(s.contains("</admd:data>"));
    }
}
