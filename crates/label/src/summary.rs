//! Community summaries: concise association-rule descriptions.
//!
//! The number of labels MAWILab publishes is far smaller than the
//! number of raw alarms because each community is condensed into a
//! handful of wildcard 4-tuples by the modified Apriori algorithm
//! (paper §4.1.1, §5). This module extracts those rules from a
//! community's traffic at the estimator's granularity.

use mawilab_detectors::TraceView;
use mawilab_mining::{mine_rules, Transaction};
use mawilab_model::{Granularity, TrafficRule};
use mawilab_similarity::AlarmCommunities;

/// The mined summary of one community.
#[derive(Debug, Clone)]
pub struct CommunitySummary {
    /// Community id.
    pub community: usize,
    /// Maximal frequent rules with their support counts, strongest
    /// first.
    pub rules: Vec<(TrafficRule, usize)>,
    /// Mean rule degree (0–4, paper §4.1.1).
    pub rule_degree: f64,
    /// Fraction of community traffic covered by ≥1 rule.
    pub rule_support: f64,
    /// Number of transactions mined (traffic units of the community).
    pub transactions: usize,
}

/// Builds the transactions of a community at the estimator's
/// granularity: one transaction per packet, unidirectional flow, or
/// bidirectional flow in the community's traffic.
pub fn community_transactions(
    view: &TraceView<'_>,
    communities: &AlarmCommunities,
    community: usize,
) -> Vec<Transaction> {
    let ids = communities.community_traffic(community);
    match communities.granularity {
        Granularity::Packet => ids
            .iter()
            .map(|&i| Transaction::of_packet(&view.trace.packets[i as usize]))
            .collect(),
        Granularity::Uniflow => ids
            .iter()
            .map(|&f| {
                let k = view.flows.uniflow_key(f);
                Transaction::new(k.src, k.sport, k.dst, k.dport)
            })
            .collect(),
        Granularity::Biflow => ids
            .iter()
            .map(|&f| {
                let k = view.flows.biflow_key(f);
                Transaction::new(k.a, k.aport, k.b, k.bport)
            })
            .collect(),
    }
}

/// Mines the association-rule summary of one community with the
/// paper's percentage-support Apriori (`min_support` = the paper's
/// `s`, 0.2 in the experiments).
pub fn summarize_community(
    view: &TraceView<'_>,
    communities: &AlarmCommunities,
    community: usize,
    min_support: f64,
) -> CommunitySummary {
    let txs = community_transactions(view, communities, community);
    let mined = mine_rules(&txs, min_support);
    CommunitySummary {
        community,
        rules: mined.rules,
        rule_degree: mined.rule_degree,
        rule_support: mined.rule_support,
        transactions: txs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_detectors::{run_all, standard_configurations};
    use mawilab_model::FlowTable;
    use mawilab_similarity::SimilarityEstimator;
    use mawilab_synth::{AnomalySpec, SynthConfig, TraceGenerator};

    fn pipeline_communities(
        granularity: Granularity,
    ) -> (mawilab_synth::LabeledTrace, FlowTable, AlarmCommunities) {
        let cfg = SynthConfig::default().with_seed(777).with_anomalies(vec![
            AnomalySpec::SynFlood {
                victim: 3,
                dport: 80,
                rate_pps: 250.0,
                duration_s: 15.0,
                spoofed: true,
            },
            AnomalySpec::SasserWorm {
                infected: 5,
                scans: 900,
                rate_pps: 70.0,
            },
        ]);
        let lt = TraceGenerator::new(cfg).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let alarms = {
            let view = TraceView::new(&lt.trace, &flows);
            run_all(&standard_configurations(), &view)
        };
        let est = SimilarityEstimator {
            granularity,
            ..Default::default()
        };
        let communities = {
            let view = TraceView::new(&lt.trace, &flows);
            est.estimate(&view, alarms)
        };
        (lt, flows, communities)
    }

    #[test]
    fn summaries_have_valid_metrics() {
        let (lt, flows, communities) = pipeline_communities(Granularity::Uniflow);
        let view = TraceView::new(&lt.trace, &flows);
        assert!(communities.community_count() > 0);
        for c in 0..communities.community_count() {
            let s = summarize_community(&view, &communities, c, 0.2);
            assert!(
                (0.0..=4.0).contains(&s.rule_degree),
                "degree {}",
                s.rule_degree
            );
            assert!(
                (0.0..=1.0).contains(&s.rule_support),
                "support {}",
                s.rule_support
            );
            if !s.rules.is_empty() {
                assert!(s.rule_support > 0.0);
                // Rule counts are bounded by the transaction count.
                assert!(s.rules.iter().all(|&(_, n)| n <= s.transactions));
            }
        }
    }

    #[test]
    fn summaries_are_concise_relative_to_alarms() {
        // §6: #labels << #alarms. Rules across all communities should
        // be far fewer than raw alarms.
        let (lt, flows, communities) = pipeline_communities(Granularity::Uniflow);
        let view = TraceView::new(&lt.trace, &flows);
        let total_rules: usize = (0..communities.community_count())
            .map(|c| summarize_community(&view, &communities, c, 0.2).rules.len())
            .sum();
        let alarms = communities.alarms.len();
        assert!(
            total_rules <= alarms,
            "rules ({total_rules}) should not exceed alarms ({alarms})"
        );
    }

    #[test]
    fn granularities_produce_transactions() {
        for g in [
            Granularity::Packet,
            Granularity::Uniflow,
            Granularity::Biflow,
        ] {
            let (lt, flows, communities) = pipeline_communities(g);
            let view = TraceView::new(&lt.trace, &flows);
            let non_empty = (0..communities.community_count())
                .any(|c| !community_transactions(&view, &communities, c).is_empty());
            assert!(non_empty, "no transactions at {g}");
        }
    }
}
