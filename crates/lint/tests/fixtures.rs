//! Rule fixtures: every rule has at least one positive fixture (it
//! fires) and one negative (it stays quiet), plus the two properties
//! the whole scheme rests on — the real workspace is lint-clean, and
//! deleting any oracle fn or equivalence test named in
//! `lint/oracles.toml` makes the lint fail.

use mawilab_lint::workspace::SourceFile;
use mawilab_lint::{check, rules, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

fn violations_of(files: Vec<(&str, &str)>, registry: &str) -> Vec<mawilab_lint::Violation> {
    check(&Workspace::from_memory(files, registry))
}

fn rules_fired(v: &[mawilab_lint::Violation]) -> Vec<&'static str> {
    v.iter().map(|x| x.rule).collect()
}

// ---------------------------------------------------------- thread-env

#[test]
fn thread_env_fires_outside_exec() {
    let v = violations_of(
        vec![(
            "crates/label/src/policy.rs",
            "pub fn n() -> usize {\n    std::env::var(\"MAWILAB_THREADS\").map_or(1, |s| s.parse().unwrap_or(1))\n}\n",
        )],
        "",
    );
    assert_eq!(rules_fired(&v), vec![rules::THREAD_ENV]);
    assert_eq!(v[0].line, 2);
}

#[test]
fn thread_env_quiet_in_exec_bench_bins_and_tests() {
    let read = "pub fn n() { std::env::var(\"MAWILAB_THREADS\").ok(); }\n";
    let set_in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::env::set_var(\"MAWILAB_THREADS\", \"2\"); }\n}\n";
    let v = violations_of(
        vec![
            ("crates/exec/src/lib.rs", read),
            ("crates/bench/src/bin/sweep.rs", read),
            ("crates/core/src/x.rs", set_in_test),
        ],
        "",
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ------------------------------------------------------- no-ad-hoc-threads

#[test]
fn ad_hoc_threads_fire_outside_exec() {
    let v = violations_of(
        vec![(
            "crates/core/src/sneaky.rs",
            "pub fn go() {\n    std::thread::spawn(|| {});\n}\n",
        )],
        "",
    );
    assert_eq!(rules_fired(&v), vec![rules::NO_THREADS]);
}

#[test]
fn thread_scope_allowed_in_exec_only() {
    let body = "pub fn fan_out() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
    assert!(violations_of(vec![("crates/exec/src/lib.rs", body)], "").is_empty());
    let v = violations_of(vec![("crates/graph/src/x.rs", body)], "");
    assert_eq!(rules_fired(&v), vec![rules::NO_THREADS]);
}

// ---------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_in_kernel_code() {
    let v = violations_of(
        vec![(
            "crates/detectors/src/timing.rs",
            "pub fn t() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
        )],
        "",
    );
    assert_eq!(rules_fired(&v), vec![rules::WALL_CLOCK]);
}

#[test]
fn wall_clock_quiet_in_bench_and_declared_modules() {
    let body = "pub fn t() {\n    let _ = std::time::Instant::now();\n}\n";
    let registry = "[wall_clock]\nallow = [\"crates/core/src/pipeline.rs\"]\n";
    let v = violations_of(
        vec![
            ("crates/bench/src/lib.rs", body),
            ("crates/core/src/pipeline.rs", body),
        ],
        registry,
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ---------------------------------------------------------- panic-free

#[test]
fn panic_free_fires_on_unwrap_in_data_plane() {
    let v = violations_of(
        vec![(
            "crates/model/src/x.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
        "",
    );
    assert_eq!(rules_fired(&v), vec![rules::PANIC_FREE]);
}

#[test]
fn panic_free_quiet_with_reasoned_pragma_tests_and_non_data_plane() {
    let v = violations_of(
        vec![
            (
                "crates/model/src/x.rs",
                "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic-free-data-plane): v seeded two lines up\n}\n",
            ),
            (
                "crates/model/src/y.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
            ),
            (
                "crates/eval/src/z.rs",
                "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
            ),
        ],
        "",
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ------------------------------------------------------ oracle-registry

const KERNEL_FILE: &str =
    "pub fn fast(v: &[u32]) -> Vec<u32> {\n    mawilab_exec::par_map(v, |x| *x)\n}\npub fn slow(v: &[u32]) -> Vec<u32> {\n    v.to_vec()\n}\n";
const TEST_FILE: &str =
    "#[test]\nfn fast_matches_slow() {\n    assert_eq!(fast(&[1]), slow(&[1]));\n}\n";

fn registry_for(kernel_fn: &str, oracle_fn: &str, covers: &str) -> String {
    format!(
        "[[oracle]]\nkernel = \"demo\"\nkernel_fn = \"{kernel_fn}\"\n\
         kernel_file = \"crates/graph/src/k.rs\"\ncovers = [{covers}]\n\
         oracle_fn = \"{oracle_fn}\"\noracle_file = \"crates/graph/src/k.rs\"\n\
         test_file = \"tests/demo.rs\"\ntest_symbol = \"slow\"\n"
    )
}

#[test]
fn oracle_registry_quiet_when_binding_is_complete() {
    let v = violations_of(
        vec![
            ("crates/graph/src/k.rs", KERNEL_FILE),
            ("tests/demo.rs", TEST_FILE),
        ],
        &registry_for("fast", "slow", "\"crates/graph/src/k.rs\""),
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

#[test]
fn oracle_registry_fires_on_missing_oracle_fn() {
    let v = violations_of(
        vec![
            ("crates/graph/src/k.rs", KERNEL_FILE),
            ("tests/demo.rs", TEST_FILE),
        ],
        &registry_for("fast", "slow_gone", "\"crates/graph/src/k.rs\""),
    );
    assert!(rules_fired(&v).contains(&rules::ORACLE_REGISTRY), "{v:?}");
}

#[test]
fn oracle_registry_fires_on_uncovered_par_site() {
    // Entry exists but does not cover the file holding the call site.
    let v = violations_of(
        vec![
            ("crates/graph/src/k.rs", KERNEL_FILE),
            ("tests/demo.rs", TEST_FILE),
        ],
        &registry_for("fast", "slow", ""),
    );
    assert_eq!(rules_fired(&v), vec![rules::ORACLE_REGISTRY]);
    assert_eq!(v[0].line, 2, "should point at the par_map call site");
}

#[test]
fn oracle_registry_fires_when_test_loses_the_pin_symbol() {
    let v = violations_of(
        vec![
            ("crates/graph/src/k.rs", KERNEL_FILE),
            ("tests/demo.rs", "#[test]\nfn unrelated() {}\n"),
        ],
        &registry_for("fast", "slow", "\"crates/graph/src/k.rs\""),
    );
    assert!(rules_fired(&v).contains(&rules::ORACLE_REGISTRY), "{v:?}");
}

// ------------------------------------------------- hashmap-iteration

#[test]
fn hash_iteration_without_sort_fires() {
    let v = violations_of(
        vec![(
            "crates/graph/src/agg.rs",
            "use std::collections::HashMap;\npub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let mut out = Vec::new();\n    for k in m.keys() {\n        out.push(*k);\n    }\n    out\n}\n",
        )],
        "",
    );
    assert_eq!(rules_fired(&v), vec![rules::HASH_ITER]);
}

#[test]
fn hash_iteration_with_canonicalising_sort_is_quiet() {
    let v = violations_of(
        vec![(
            "crates/graph/src/agg.rs",
            "use std::collections::HashMap;\npub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let mut out = Vec::new();\n    for k in m.keys() {\n        out.push(*k);\n    }\n    out.sort_unstable();\n    out\n}\n",
        )],
        "",
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

#[test]
fn hash_iteration_in_non_order_sensitive_crate_is_quiet() {
    let v = violations_of(
        vec![(
            "crates/stats/src/agg.rs",
            "use std::collections::HashMap;\npub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n",
        )],
        "",
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ------------------------------------------------------- pragma hygiene

#[test]
fn bare_pragma_is_itself_a_violation() {
    let v = violations_of(
        vec![(
            "crates/model/src/x.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic-free-data-plane)\n}\n",
        )],
        "",
    );
    // The bare pragma waives nothing AND is flagged itself.
    let fired = rules_fired(&v);
    assert!(fired.contains(&rules::PANIC_FREE), "{v:?}");
    assert!(fired.contains(&rules::PRAGMA_HYGIENE), "{v:?}");
}

#[test]
fn unknown_rule_and_unused_pragmas_are_flagged() {
    let v = violations_of(
        vec![(
            "crates/model/src/x.rs",
            "pub fn f() {} // lint:allow(no-such-rule): whatever\npub fn g() {} // lint:allow(panic-free-data-plane): waives nothing\n",
        )],
        "",
    );
    assert_eq!(
        rules_fired(&v),
        vec![rules::PRAGMA_HYGIENE, rules::PRAGMA_HYGIENE],
        "{v:?}"
    );
}

#[test]
fn own_line_pragma_waives_the_next_code_line() {
    let v = violations_of(
        vec![(
            "crates/model/src/x.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    // lint:allow(panic-free-data-plane): seeded by caller\n    v.unwrap()\n}\n",
        )],
        "",
    );
    assert!(v.is_empty(), "unexpected: {v:?}");
}

// ------------------------------------------------- the real workspace

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn real_workspace_is_lint_clean() {
    let ws = Workspace::from_disk(&repo_root()).expect("load workspace");
    assert!(
        ws.files.len() > 100,
        "suspiciously few files ({}) — wrong root?",
        ws.files.len()
    );
    let v = check(&ws);
    assert!(v.is_empty(), "workspace has lint violations:\n{v:#?}");
}

/// Deleting any oracle fn named in the registry must fail the lint.
#[test]
fn deleting_any_oracle_fn_fails_the_lint() {
    let root = repo_root();
    let ws = Workspace::from_disk(&root).expect("load workspace");
    let reg = ws.registry.as_ref().expect("registry parses");
    assert!(!reg.entries.is_empty(), "registry is empty");
    for e in &reg.entries {
        let mut ws2 = Workspace::from_disk(&root).expect("load workspace");
        let src = fs::read_to_string(root.join(&e.oracle_file)).expect("oracle file");
        let gutted = src.replace(&format!("fn {}", e.oracle_fn), "fn zz_deleted_oracle");
        assert_ne!(gutted, src, "oracle fn {} not found to delete", e.oracle_fn);
        let slot = ws2
            .files
            .iter_mut()
            .find(|f| f.path == e.oracle_file)
            .expect("oracle file in workspace");
        *slot = SourceFile::new(e.oracle_file.clone(), &gutted);
        let v = check(&ws2);
        assert!(
            v.iter().any(|x| x.rule == rules::ORACLE_REGISTRY),
            "deleting oracle `{}` of kernel `{}` did not fail the lint",
            e.oracle_fn,
            e.kernel
        );
    }
}

/// Deleting any equivalence test file named in the registry must fail
/// the lint.
#[test]
fn deleting_any_equivalence_test_fails_the_lint() {
    let root = repo_root();
    let ws = Workspace::from_disk(&root).expect("load workspace");
    let reg = ws.registry.as_ref().expect("registry parses");
    for e in &reg.entries {
        let mut ws2 = Workspace::from_disk(&root).expect("load workspace");
        ws2.files.retain(|f| f.path != e.test_file);
        let v = check(&ws2);
        assert!(
            v.iter().any(|x| x.rule == rules::ORACLE_REGISTRY),
            "deleting test `{}` of kernel `{}` did not fail the lint",
            e.test_file,
            e.kernel
        );
    }
}
