//! The six repo-specific invariant rules.
//!
//! Each rule scans code views (comments and string interiors already
//! blanked by the lexer) for token patterns and emits [`Violation`]s.
//! Pragmas are applied afterwards by the engine; rules themselves
//! never consult them.

use crate::workspace::{SourceFile, Workspace, REGISTRY_PATH};

/// Rule names, as spelled in pragmas and reports.
pub const THREAD_ENV: &str = "thread-env-isolation";
pub const NO_THREADS: &str = "no-ad-hoc-threads";
pub const WALL_CLOCK: &str = "no-wall-clock-in-kernels";
pub const PANIC_FREE: &str = "panic-free-data-plane";
pub const ORACLE_REGISTRY: &str = "oracle-registry";
pub const HASH_ITER: &str = "hashmap-iteration-order";
/// Meta-rule for pragma problems; not itself waivable.
pub const PRAGMA_HYGIENE: &str = "pragma-hygiene";

/// Every waivable rule (a pragma must name one of these).
pub const RULES: [&str; 6] = [
    THREAD_ENV,
    NO_THREADS,
    WALL_CLOCK,
    PANIC_FREE,
    ORACLE_REGISTRY,
    HASH_ITER,
];

/// The crates whose non-test code must be panic-free (the data plane:
/// everything a labeling run executes).
const DATA_PLANE: [&str; 10] = [
    "model",
    "similarity",
    "label",
    "detectors",
    "core",
    "graph",
    "linalg",
    "mining",
    "stats",
    "sketch",
];

/// The crates where `HashMap`/`HashSet` iteration order can leak into
/// graph/community/label output.
const ORDER_SENSITIVE: [&str; 4] = ["similarity", "graph", "label", "combiner"];

/// One rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `tok` in `code` at identifier boundaries: the
/// bytes just before and after the match must not extend an
/// identifier (so `par_map` does not match inside `par_map_capped`).
pub fn find_token(code: &str, tok: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let tb = tok.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(tok) {
        let start = from + pos;
        let end = start + tb.len();
        let pre_ok = start == 0 || !is_ident(bytes[start - 1]) || !is_ident(tb[0]);
        let post_ok = end >= bytes.len() || !is_ident(bytes[end - 1]) || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// True when `name` is defined as a function (`fn name`) in `code`.
pub fn has_fn(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    for start in find_token(code, name) {
        // Walk back over whitespace to the preceding token.
        let mut i = start;
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i >= 2 && &bytes[i - 2..i] == b"fn" && (i == 2 || !is_ident(bytes[i - 3])) {
            return true;
        }
    }
    false
}

/// Runs every rule over the workspace.
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        thread_env_isolation(f, &mut out);
        no_ad_hoc_threads(f, &mut out);
        no_wall_clock(ws, f, &mut out);
        panic_free_data_plane(f, &mut out);
        hashmap_iteration_order(f, &mut out);
    }
    oracle_registry(ws, &mut out);
    out
}

/// **thread-env-isolation** — the `MAWILAB_THREADS` policy variable
/// is *read* only inside `crates/exec` (the single fan-out level) and
/// *set* only by bench bins and tests (sweeps). The rule keys on the
/// string literal itself, so it catches any call form (`env::var`,
/// `var_os`, a re-exported helper) that names the variable.
fn thread_env_isolation(f: &SourceFile, out: &mut Vec<Violation>) {
    if f.krate.as_deref() == Some("exec") || f.is_bench_bin() {
        return;
    }
    for lit in &f.lexed.strings {
        // lint:allow(thread-env-isolation): this literal is the rule's own search pattern, never read as an env var
        if lit.text != "MAWILAB_THREADS" {
            continue;
        }
        if f.is_test_code(lit.line) {
            continue;
        }
        out.push(Violation {
            file: f.path.clone(),
            line: lit.line,
            rule: THREAD_ENV,
            msg: "`MAWILAB_THREADS` may be read only in crates/exec and set only in \
                  bench bins or tests; route thread policy through mawilab-exec"
                .to_string(),
        });
    }
}

/// **no-ad-hoc-threads** — `std::thread` fan-out lives only in
/// `crates/exec`: one fan-out level, one thread-count policy. A
/// `thread::spawn` anywhere else silently escapes `MAWILAB_THREADS`
/// and the nested-inline guarantee.
fn no_ad_hoc_threads(f: &SourceFile, out: &mut Vec<Violation>) {
    if f.krate.as_deref() == Some("exec") {
        return;
    }
    for tok in ["thread::spawn", "thread::scope", "thread::Builder"] {
        for off in find_token(&f.lexed.code, tok) {
            let line = f.line_of(off);
            if f.is_test_code(line) {
                continue;
            }
            out.push(Violation {
                file: f.path.clone(),
                line,
                rule: NO_THREADS,
                msg: format!(
                    "`{tok}` outside crates/exec: all parallelism must go through \
                     mawilab_exec::par_map / par_for_each_mut (one fan-out level)"
                ),
            });
        }
    }
}

/// **no-wall-clock-in-kernels** — `Instant::now`/`SystemTime::now`
/// are confined to `crates/bench` and the pipeline-timing modules
/// declared in `lint/oracles.toml` (`[wall_clock] allow`). Wall-clock
/// reads anywhere else are a determinism smell: a kernel that
/// branches on elapsed time produces thread- and machine-dependent
/// output.
fn no_wall_clock(ws: &Workspace, f: &SourceFile, out: &mut Vec<Violation>) {
    if f.krate.as_deref() == Some("bench") {
        return;
    }
    if let Ok(reg) = &ws.registry {
        if reg.wall_clock_allow.iter().any(|p| p == &f.path) {
            return;
        }
    }
    for tok in ["Instant::now", "SystemTime::now"] {
        for off in find_token(&f.lexed.code, tok) {
            let line = f.line_of(off);
            if f.is_test_code(line) {
                continue;
            }
            out.push(Violation {
                file: f.path.clone(),
                line,
                rule: WALL_CLOCK,
                msg: format!(
                    "`{tok}` outside crates/bench and the declared timing modules \
                     (see `[wall_clock] allow` in {REGISTRY_PATH})"
                ),
            });
        }
    }
}

/// **panic-free-data-plane** — `.unwrap()` / `.expect(` / `panic!`
/// in the non-test code of the data-plane crates requires a justified
/// pragma: one malformed archive day must degrade into a typed error,
/// not take down a labeling sweep.
fn panic_free_data_plane(f: &SourceFile, out: &mut Vec<Violation>) {
    let Some(krate) = f.krate.as_deref() else {
        return;
    };
    if !DATA_PLANE.contains(&krate) || f.testlike {
        return;
    }
    for tok in [".unwrap()", ".expect(", "panic!"] {
        for off in find_token(&f.lexed.code, tok) {
            let line = f.line_of(off);
            if f.is_test_code(line) {
                continue;
            }
            out.push(Violation {
                file: f.path.clone(),
                line,
                rule: PANIC_FREE,
                msg: format!(
                    "`{tok}` in data-plane code: return a typed error, or justify \
                     the invariant with `// lint:allow({PANIC_FREE}): <why it cannot fire>`"
                ),
            });
        }
    }
}

/// **oracle-registry** — every parallel/approximate kernel is bound
/// to a sequential oracle and an equivalence test in
/// `lint/oracles.toml`, and every `par_map`/`par_for_each_mut` call
/// site in a kernel crate is covered by some entry. Deleting an
/// oracle fn or its equivalence test breaks the binding and fails the
/// lint.
fn oracle_registry(ws: &Workspace, out: &mut Vec<Violation>) {
    let reg = match &ws.registry {
        Ok(reg) => reg,
        Err((line, msg)) => {
            out.push(Violation {
                file: REGISTRY_PATH.to_string(),
                line: *line,
                rule: ORACLE_REGISTRY,
                msg: msg.clone(),
            });
            return;
        }
    };

    for e in &reg.entries {
        let mut require_fn = |file: &str, func: &str, what: &str| match ws.file(file) {
            None => out.push(Violation {
                file: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: ORACLE_REGISTRY,
                msg: format!("kernel `{}`: {what} file `{file}` does not exist", e.kernel),
            }),
            Some(sf) if !has_fn(&sf.lexed.code, func) => out.push(Violation {
                file: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: ORACLE_REGISTRY,
                msg: format!(
                    "kernel `{}`: {what} `fn {func}` not found in `{file}`",
                    e.kernel
                ),
            }),
            Some(_) => {}
        };
        require_fn(&e.kernel_file, &e.kernel_fn, "kernel");
        require_fn(&e.oracle_file, &e.oracle_fn, "oracle");

        let test_symbol = e.test_symbol.as_deref().unwrap_or(&e.oracle_fn);
        match ws.file(&e.test_file) {
            None => out.push(Violation {
                file: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: ORACLE_REGISTRY,
                msg: format!(
                    "kernel `{}`: equivalence test file `{}` does not exist",
                    e.kernel, e.test_file
                ),
            }),
            // The pin symbol may live in code or in a string literal
            // (e.g. a test that drives `MAWILAB_THREADS` via set_var).
            Some(tf)
                if find_token(&tf.lexed.code, test_symbol).is_empty()
                    && !tf
                        .lexed
                        .strings
                        .iter()
                        .any(|s| s.text.contains(test_symbol)) =>
            {
                out.push(Violation {
                    file: REGISTRY_PATH.to_string(),
                    line: e.line,
                    rule: ORACLE_REGISTRY,
                    msg: format!(
                        "kernel `{}`: test `{}` no longer mentions `{test_symbol}` — \
                         the equivalence pin is gone",
                        e.kernel, e.test_file
                    ),
                })
            }
            Some(_) => {}
        }
    }

    // Uncovered parallel call sites in kernel crates.
    for f in &ws.files {
        let Some(krate) = f.krate.as_deref() else {
            continue;
        };
        if krate == "exec" || krate == "bench" || krate == "lint" || f.testlike {
            continue;
        }
        let covered = reg
            .entries
            .iter()
            .any(|e| e.covers.iter().any(|p| p == &f.path));
        for tok in [
            "par_map",
            "par_map_capped",
            "par_map_mut",
            "par_for_each_mut",
            "par_for_each_mut_capped",
        ] {
            for off in find_token(&f.lexed.code, tok) {
                let line = f.line_of(off);
                if f.is_test_code(line) || covered {
                    continue;
                }
                out.push(Violation {
                    file: f.path.clone(),
                    line,
                    rule: ORACLE_REGISTRY,
                    msg: format!(
                        "`{tok}` call site not covered by any entry in {REGISTRY_PATH}: \
                         register the kernel with its sequential oracle and equivalence test"
                    ),
                });
            }
        }
    }
}

/// A name bound to a `HashMap`/`HashSet`, with the scope it is
/// visible in (`None` = file scope, e.g. a struct field).
struct HashName {
    name: String,
    scope: Option<(u32, u32)>,
}

/// **hashmap-iteration-order** — in the crates whose output flows
/// into graphs, communities, and labels, iterating a `HashMap` /
/// `HashSet` must be followed by a canonicalising sort in the same
/// function (or feed an order-insensitive fold like `.count()`), or
/// carry a pragma. Std hash iteration order varies per process; any
/// leak of it into output breaks byte-identical labeling.
fn hashmap_iteration_order(f: &SourceFile, out: &mut Vec<Violation>) {
    let Some(krate) = f.krate.as_deref() else {
        return;
    };
    if !ORDER_SENSITIVE.contains(&krate) || f.testlike {
        return;
    }
    let code = &f.lexed.code;
    let lines: Vec<&str> = code.lines().collect();

    // Pass 1: collect hash-typed names from `let` bindings, params,
    // and struct fields.
    let mut names: Vec<HashName> = Vec::new();
    for tok in ["HashMap", "HashSet"] {
        for off in find_token(code, tok) {
            let line_no = f.line_of(off);
            let line_start = f.line_starts[line_no as usize - 1];
            let prefix = &code[line_start..off];
            if let Some(name) = bound_name(prefix) {
                let scope = f
                    .regions
                    .enclosing_fn(line_no)
                    .map(|s| (s.start_line, s.end_line));
                names.push(HashName { name, scope });
            }
        }
    }

    // Pass 2: iteration sites.
    let iter_tokens = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
    ];
    let mut sites: Vec<(u32, String)> = Vec::new();
    for tok in iter_tokens {
        for off in find_token(code, tok) {
            let recv = receiver_before(code.as_bytes(), off);
            if recv.is_empty() {
                continue;
            }
            sites.push((f.line_of(off), recv));
        }
    }
    // `for x in &name` loops.
    for (idx, line) in lines.iter().enumerate() {
        if let Some(recv) = for_loop_receiver(line) {
            sites.push((idx as u32 + 1, recv));
        }
    }
    sites.sort();
    sites.dedup();

    for (line_no, recv) in sites {
        if f.is_test_code(line_no) {
            continue;
        }
        let is_hash = names.iter().any(|n| {
            n.name == recv
                && match n.scope {
                    None => true,
                    Some((s, e)) => s <= line_no && line_no <= e,
                }
        });
        if !is_hash {
            continue;
        }
        // Order-insensitive fold on the same line is fine.
        let line_txt = lines.get(line_no as usize - 1).copied().unwrap_or("");
        if [".count()", ".any(", ".all(", ".contains("]
            .iter()
            .any(|t| line_txt.contains(t))
        {
            continue;
        }
        // A canonicalising sort (or BTree collection) later in the
        // same function satisfies the rule.
        let span = f.regions.enclosing_fn(line_no);
        let sorted_after = span.is_some_and(|s| {
            (line_no..=s.end_line).any(|l| {
                let t = lines.get(l as usize - 1).copied().unwrap_or("");
                t.contains(".sort") || t.contains("BTreeMap") || t.contains("BTreeSet")
            })
        });
        if sorted_after {
            continue;
        }
        out.push(Violation {
            file: f.path.clone(),
            line: line_no,
            rule: HASH_ITER,
            msg: format!(
                "iteration over hash container `{recv}` with no canonicalising sort \
                 later in the same function; sort the result or justify with \
                 `// lint:allow({HASH_ITER}): <why order cannot leak>`"
            ),
        });
    }
}

/// Extracts the name bound on a declaration line, given the code-view
/// text from line start to the `HashMap`/`HashSet` token: handles
/// `let [mut] name = …`, `let [mut] name: … =`, and `name: Type`
/// fields/params. Returns `None` for uses that bind nothing (return
/// types, generic args of other calls, `use` paths).
fn bound_name(prefix: &str) -> Option<String> {
    let t = prefix.trim_start();
    if t.starts_with("use ") || t.starts_with("pub use ") {
        return None;
    }
    // `let [mut] name …` (the token must come after `=` or `:`).
    if let Some(rest) = t.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty()
            && (rest[name.len()..].contains('=') || rest[name.len()..].contains(':'))
        {
            return Some(name);
        }
        return None;
    }
    // `name: …HashMap<…` — field or parameter annotation. Find the
    // last single `:` (not `::`) and take the identifier before it.
    let bytes = prefix.as_bytes();
    let mut i = bytes.len();
    while i > 0 {
        i -= 1;
        if bytes[i] == b':' {
            if i > 0 && bytes[i - 1] == b':' {
                i -= 1; // skip `::`
                continue;
            }
            if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                continue;
            }
            let mut e = i;
            while e > 0 && bytes[e - 1].is_ascii_whitespace() {
                e -= 1;
            }
            // `fn f(x: u32) -> HashMap<…>`: the token is a return
            // type, not a binding for `x`.
            if prefix[i..].contains("->") {
                return None;
            }
            let mut s = e;
            while s > 0 && is_ident(bytes[s - 1]) {
                s -= 1;
            }
            if s < e {
                return Some(prefix[s..e].to_string());
            }
            return None;
        }
    }
    None
}

/// Identifier immediately before a `.method` token offset.
fn receiver_before(bytes: &[u8], dot_off: usize) -> String {
    let mut s = dot_off;
    while s > 0 && is_ident(bytes[s - 1]) {
        s -= 1;
    }
    String::from_utf8_lossy(&bytes[s..dot_off]).into_owned()
}

/// For `for pat in [&|&mut ]name {`, returns `name` when the iterated
/// expression is a plain (possibly field) path.
fn for_loop_receiver(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("for ")?;
    let in_pos = rest.find(" in ")?;
    let expr = rest[in_pos + 4..].trim();
    let expr = expr.strip_suffix('{').unwrap_or(expr).trim_end();
    let expr = expr.strip_prefix('&').unwrap_or(expr);
    let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
    if expr.is_empty()
        || expr.contains("..")
        || !expr
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return None;
    }
    Some(expr.rsplit('.').next().unwrap_or(expr).to_string())
}
