//! Structural regions recovered from the code view: which lines are
//! test code, and the body span of every `fn`.
//!
//! Both analyses run on the blanked code view produced by
//! [`crate::lexer::lex`], so braces inside strings and comments are
//! already gone and simple brace balancing is sound.
//!
//! * **Test lines** — the brace-balanced body of any item carrying a
//!   `#[cfg(test)]` or `#[test]` attribute (the idiomatic in-file
//!   `mod tests`, plus stray test fns). Rules that exempt test code
//!   consult this mask.
//! * **Fn spans** — `(start_line, end_line)` of each function body,
//!   for the rules that reason "within the same function" (the
//!   hashmap-iteration-order canonicalisation check).

/// Byte-and-line structure of one file's code view.
pub struct Regions {
    /// `test_lines[l - 1]` is true when 1-based line `l` is inside a
    /// `#[cfg(test)]` / `#[test]` item.
    pub test_lines: Vec<bool>,
    /// Body span of every `fn`, as 1-based inclusive line ranges.
    pub fns: Vec<FnSpan>,
}

/// One function body: `fn` keyword line through closing-brace line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnSpan {
    pub start_line: u32,
    pub end_line: u32,
}

impl Regions {
    /// The innermost function span containing `line`, if any.
    /// Innermost = the containing span with the latest start (nested
    /// fns start later than their parent).
    pub fn enclosing_fn(&self, line: u32) -> Option<FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .max_by_key(|f| f.start_line)
            .copied()
    }

    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Line number (1-based) of byte `offset`, given precomputed line
/// start offsets.
pub fn line_of(line_starts: &[usize], offset: usize) -> u32 {
    match line_starts.binary_search(&offset) {
        Ok(i) => i as u32 + 1,
        Err(i) => i as u32,
    }
}

/// Start offset of every line (line 1 starts at 0).
pub fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Analyzes the code view of one file.
pub fn analyze(code: &str) -> Regions {
    let bytes = code.as_bytes();
    let starts = line_starts(code);
    let n_lines = starts.len();
    let mut test_lines = vec![false; n_lines];

    // --- Test regions: each `#[cfg(test)]`/`#[test]` attribute marks
    // the following item's brace-balanced body.
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'#' && i + 1 < bytes.len() && bytes[i + 1] == b'[' {
            let attr_start = i;
            let attr_end = match matching(bytes, i + 1, b'[', b']') {
                Some(e) => e,
                None => break,
            };
            let attr: String = code[attr_start..=attr_end]
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            if attr == "#[test]" || attr.contains("cfg(test") {
                if let Some((body_start, body_end)) = item_body_after(bytes, attr_end + 1) {
                    let from = line_of(&starts, attr_start) as usize - 1;
                    let to = line_of(&starts, body_end) as usize - 1;
                    for l in &mut test_lines[from..=to.min(n_lines - 1)] {
                        *l = true;
                    }
                    // Keep scanning *inside* for nothing — the whole
                    // region is already marked; skip past it.
                    i = body_end + 1;
                    let _ = body_start;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }

    // --- Fn spans.
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 2 < bytes.len() {
        if bytes[i] == b'f'
            && bytes[i + 1] == b'n'
            && !is_ident(bytes[i + 2])
            && (i == 0 || !is_ident(bytes[i - 1]))
        {
            if let Some((body_start, body_end)) = fn_body_after(bytes, i + 2) {
                fns.push(FnSpan {
                    start_line: line_of(&starts, i),
                    end_line: line_of(&starts, body_end),
                });
                // Continue scanning *inside* the body: nested fns and
                // closures containing fns are real.
                i = body_start + 1;
                continue;
            }
        }
        i += 1;
    }

    Regions { test_lines, fns }
}

/// Offset of the closing delimiter matching the opener at `open`.
fn matching(bytes: &[u8], open: usize, lo: u8, hi: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == lo {
            depth += 1;
        } else if bytes[i] == hi {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// After an attribute, skips further attributes and whitespace, then
/// finds the item's `{…}` body. Items that end at a `;` before any
/// brace (e.g. `#[cfg(test)] use …;`) have no body.
fn item_body_after(bytes: &[u8], mut i: usize) -> Option<(usize, usize)> {
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i + 1 < bytes.len() && bytes[i] == b'#' && bytes[i + 1] == b'[' {
            i = matching(bytes, i + 1, b'[', b']')? + 1;
            continue;
        }
        break;
    }
    // Scan to the first `{` at paren depth 0, bailing at a top-level `;`.
    let mut paren = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren = paren.saturating_sub(1),
            b'{' if paren == 0 => {
                let end = matching(bytes, i, b'{', b'}')?;
                return Some((i, end));
            }
            b';' if paren == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// After the `fn` keyword, finds the body braces. Trait-method
/// declarations (`fn f();`) have none.
fn fn_body_after(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    item_body_after(bytes, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let r = analyze(src);
        assert!(!r.is_test_line(1));
        assert!(r.is_test_line(2));
        assert!(r.is_test_line(3));
        assert!(r.is_test_line(4));
        assert!(r.is_test_line(5));
        assert!(!r.is_test_line(6));
    }

    #[test]
    fn cfg_test_use_without_body_marks_nothing_after() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let r = analyze(src);
        assert!(!r.is_test_line(3));
    }

    #[test]
    fn fn_spans_cover_bodies_and_nest() {
        let src = "fn outer() {\n    let x = 1;\n    fn inner() {\n        let y = 2;\n    }\n}\n";
        let r = analyze(src);
        assert_eq!(r.fns.len(), 2);
        let inner = r.enclosing_fn(4).unwrap();
        assert_eq!((inner.start_line, inner.end_line), (3, 5));
        let outer = r.enclosing_fn(2).unwrap();
        assert_eq!((outer.start_line, outer.end_line), (1, 6));
    }

    #[test]
    fn trait_method_decl_has_no_span() {
        let src =
            "trait T {\n    fn decl(&self);\n    fn with_default(&self) {\n        ()\n    }\n}\n";
        let r = analyze(src);
        assert_eq!(r.fns.len(), 1);
        assert_eq!(r.fns[0].start_line, 3);
    }
}
