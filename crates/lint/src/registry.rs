//! `lint/oracles.toml`: the checked-in registry that pairs every
//! parallel or approximate kernel with its sequential oracle and the
//! equivalence test that pins them together.
//!
//! The build environment has no crates.io access, so this is a
//! hand-rolled parser for the small TOML subset the registry needs:
//! `[[oracle]]` array-of-tables, one `[wall_clock]` table, `#`
//! comments, string values, and single-line string arrays. Parse
//! problems are reported as lint violations, not panics — a broken
//! registry must fail CI with a message, not a backtrace.

/// One kernel ↔ oracle ↔ test binding.
#[derive(Debug, Clone, Default)]
pub struct OracleEntry {
    /// Human name of the kernel (used in messages).
    pub kernel: String,
    /// Function symbol of the parallel/approximate kernel…
    pub kernel_fn: String,
    /// …defined in this file.
    pub kernel_file: String,
    /// Files whose `par_map`/`par_for_each_mut` call sites this entry
    /// covers (the kernel's implementation files).
    pub covers: Vec<String>,
    /// Function symbol of the sequential oracle…
    pub oracle_fn: String,
    /// …defined in this file.
    pub oracle_file: String,
    /// The equivalence test file pinning kernel ≡ oracle.
    pub test_file: String,
    /// Symbol the test file must mention (defaults to `oracle_fn`).
    pub test_symbol: Option<String>,
    /// Line of the entry's `[[oracle]]` header, for diagnostics.
    pub line: u32,
}

/// The parsed registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub entries: Vec<OracleEntry>,
    /// Declared pipeline-timing modules: files (workspace-relative)
    /// where `Instant::now`/`SystemTime::now` is part of the design.
    pub wall_clock_allow: Vec<String>,
}

/// Parses the registry; returns `Err(line, message)` on the first
/// syntax problem.
pub fn parse(src: &str) -> Result<Registry, (u32, String)> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Oracle,
        WallClock,
    }
    let mut reg = Registry::default();
    let mut section = Section::None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[oracle]]" {
            reg.entries.push(OracleEntry {
                line: lineno,
                ..OracleEntry::default()
            });
            section = Section::Oracle;
            continue;
        }
        if line == "[wall_clock]" {
            section = Section::WallClock;
            continue;
        }
        if line.starts_with('[') {
            return Err((lineno, format!("unknown section `{line}`")));
        }
        let Some(eq) = line.find('=') else {
            return Err((lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section {
            Section::None => {
                return Err((lineno, format!("`{key}` outside any section")));
            }
            Section::WallClock => {
                if key == "allow" {
                    reg.wall_clock_allow = parse_array(value).map_err(|m| (lineno, m))?;
                } else {
                    return Err((lineno, format!("unknown wall_clock key `{key}`")));
                }
            }
            Section::Oracle => {
                let entry = reg
                    .entries
                    .last_mut()
                    .expect("Oracle section implies an entry");
                match key {
                    "kernel" => entry.kernel = parse_string(value).map_err(|m| (lineno, m))?,
                    "kernel_fn" => {
                        entry.kernel_fn = parse_string(value).map_err(|m| (lineno, m))?
                    }
                    "kernel_file" => {
                        entry.kernel_file = parse_string(value).map_err(|m| (lineno, m))?
                    }
                    "covers" => entry.covers = parse_array(value).map_err(|m| (lineno, m))?,
                    "oracle_fn" => {
                        entry.oracle_fn = parse_string(value).map_err(|m| (lineno, m))?
                    }
                    "oracle_file" => {
                        entry.oracle_file = parse_string(value).map_err(|m| (lineno, m))?
                    }
                    "test_file" => {
                        entry.test_file = parse_string(value).map_err(|m| (lineno, m))?
                    }
                    "test_symbol" => {
                        entry.test_symbol = Some(parse_string(value).map_err(|m| (lineno, m))?)
                    }
                    other => {
                        return Err((lineno, format!("unknown oracle key `{other}`")));
                    }
                }
            }
        }
    }
    // Required fields.
    for e in &reg.entries {
        for (field, v) in [
            ("kernel", &e.kernel),
            ("kernel_fn", &e.kernel_fn),
            ("kernel_file", &e.kernel_file),
            ("oracle_fn", &e.oracle_fn),
            ("oracle_file", &e.oracle_file),
            ("test_file", &e.test_file),
        ] {
            if v.is_empty() {
                return Err((e.line, format!("entry is missing `{field}`")));
            }
        }
    }
    Ok(reg)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected a quoted string, got `{v}`"))
    }
}

fn parse_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a single-line array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# kernel registry
[[oracle]]
kernel = "sharded graph build"
kernel_fn = "cooccurrence"
kernel_file = "crates/similarity/src/shard.rs"
covers = ["crates/similarity/src/shard.rs", "crates/similarity/src/estimator.rs"]
oracle_fn = "build_graph_sequential"
oracle_file = "crates/similarity/src/estimator.rs"
test_file = "tests/shard_equivalence.rs"

[wall_clock]
allow = ["crates/core/src/pipeline.rs"]
"#;

    #[test]
    fn parses_entries_and_allowlist() {
        let reg = parse(SAMPLE).unwrap();
        assert_eq!(reg.entries.len(), 1);
        let e = &reg.entries[0];
        assert_eq!(e.kernel_fn, "cooccurrence");
        assert_eq!(e.covers.len(), 2);
        assert_eq!(e.test_symbol, None);
        assert_eq!(reg.wall_clock_allow, vec!["crates/core/src/pipeline.rs"]);
    }

    #[test]
    fn missing_required_field_errors() {
        let err = parse("[[oracle]]\nkernel = \"x\"\n").unwrap_err();
        assert!(err.1.contains("missing"));
    }

    #[test]
    fn unknown_key_errors_with_line() {
        let err = parse("[[oracle]]\nbogus = \"x\"\n").unwrap_err();
        assert_eq!(err.0, 2);
    }
}
