//! Workspace loading and file classification.
//!
//! A [`Workspace`] is the unit the rule engine runs over: every
//! tracked `.rs` file (lexed + region-analyzed) plus the parsed
//! oracle registry. It can be loaded from disk (the CLI) or built
//! from in-memory `(path, content)` pairs (the rule fixtures), so
//! every rule is testable without touching the filesystem.

use crate::lexer::{lex, Lexed};
use crate::pragma::{self, Pragma};
use crate::regions::{self, Regions};
use crate::registry::{self, Registry};
use std::fs;
use std::io;
use std::path::Path;

/// Workspace-relative path of the oracle registry.
pub const REGISTRY_PATH: &str = "lint/oracles.toml";

/// Directories never linted: build output, vendored dep stubs, VCS.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "results", ".github"];

/// One lexed and classified source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub lexed: Lexed,
    pub regions: Regions,
    pub line_starts: Vec<usize>,
    pub pragmas: Vec<Pragma>,
    /// `crates/<name>/…` → `Some(name)`; root `src/`, `tests/` → `None`.
    pub krate: Option<String>,
    /// Integration tests, examples, benches — exempt from most rules.
    pub testlike: bool,
}

impl SourceFile {
    pub fn new(path: String, content: &str) -> Self {
        let lexed = lex(content);
        let regions = regions::analyze(&lexed.code);
        let line_starts = regions::line_starts(&lexed.code);
        let pragmas = pragma::parse(&lexed.comments);
        let krate = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let testlike = path.starts_with("tests/")
            || path.starts_with("examples/")
            || path.contains("/tests/")
            || path.contains("/examples/")
            || path.contains("/benches/");
        SourceFile {
            path,
            lexed,
            regions,
            line_starts,
            pragmas,
            krate,
            testlike,
        }
    }

    /// True for `crates/bench/src/bin/*` — the one place allowed to
    /// *set* the thread-policy variable for sweeps.
    pub fn is_bench_bin(&self) -> bool {
        self.path.starts_with("crates/bench/src/bin/")
    }

    /// 1-based line of a byte offset into the code view.
    pub fn line_of(&self, offset: usize) -> u32 {
        regions::line_of(&self.line_starts, offset)
    }

    /// True when `line` is inside `#[cfg(test)]`/`#[test]` code or
    /// the whole file is test-like.
    pub fn is_test_code(&self, line: u32) -> bool {
        self.testlike || self.regions.is_test_line(line)
    }
}

/// A loaded workspace, ready for [`crate::engine::check`].
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// Parse outcome of `lint/oracles.toml`; `Err` carries the load or
    /// parse failure to be reported as a violation.
    pub registry: Result<Registry, (u32, String)>,
}

impl Workspace {
    /// Builds a workspace from in-memory files — the fixture seam.
    pub fn from_memory(files: Vec<(&str, &str)>, registry_toml: &str) -> Self {
        Workspace {
            files: files
                .into_iter()
                .map(|(p, c)| SourceFile::new(p.to_string(), c))
                .collect(),
            registry: registry::parse(registry_toml),
        }
    }

    /// Loads every tracked `.rs` file under `root` plus the registry.
    pub fn from_disk(root: &Path) -> io::Result<Self> {
        let mut paths = Vec::new();
        walk(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let content = fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::new(rel, &content));
        }
        let registry = match fs::read_to_string(root.join(REGISTRY_PATH)) {
            Ok(toml) => registry::parse(&toml),
            Err(e) => Err((0, format!("cannot read {REGISTRY_PATH}: {e}"))),
        };
        Ok(Workspace { files, registry })
    }

    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}
