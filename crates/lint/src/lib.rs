//! # mawilab-lint
//!
//! A workspace invariant linter that makes the determinism
//! architecture machine-checked.
//!
//! MAWILab's reproducibility claim rests on conventions this
//! workspace enforces socially: the thread policy is read in exactly
//! one place, there is one fan-out level, kernels never read the wall
//! clock, every parallel or approximate kernel has a sequential
//! oracle pinned by an equivalence test, and hash-container iteration
//! never leaks its order into output. This crate turns those
//! conventions into six lexical rules over the workspace source:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `thread-env-isolation` | `MAWILAB_THREADS` read only in `crates/exec`, set only in bench bins/tests |
//! | `no-ad-hoc-threads` | `std::thread` fan-out only in `crates/exec` |
//! | `no-wall-clock-in-kernels` | `Instant::now`/`SystemTime::now` only in `crates/bench` + declared timing modules |
//! | `panic-free-data-plane` | `.unwrap()`/`.expect(`/`panic!` in data-plane crates needs a justified pragma |
//! | `oracle-registry` | `lint/oracles.toml` binds kernel ↔ oracle ↔ equivalence test; all `par_*` call sites covered |
//! | `hashmap-iteration-order` | hash iteration in order-sensitive crates must canonicalise or justify |
//!
//! Escape hatch: `// lint:allow(<rule>): <reason>` on the offending
//! line (or alone on the line above). A pragma without a reason is
//! itself a violation.
//!
//! The linter is dependency-free and lexical by design: no `syn`, no
//! crates.io. The lexer ([`lexer`]) blanks comments and string
//! literals first, so token rules neither miss-fire inside strings
//! nor honour pragmas spelled inside them.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod pragma;
pub mod regions;
pub mod registry;
pub mod rules;
pub mod workspace;

pub use engine::{check, render};
pub use rules::Violation;
pub use workspace::Workspace;
