//! `mawilab-lint` — the workspace invariant linter.
//!
//! ```text
//! mawilab-lint [--deny-all] [--root <dir>]
//! ```
//!
//! Lints every tracked `.rs` file under the workspace root against
//! the six determinism invariants (see the crate docs). With
//! `--deny-all`, any violation exits 2 (the CI mode); without it the
//! report prints but the exit code stays 0 (the local triage mode).
//! Exit 1 is reserved for operational failures (unreadable root).

#![forbid(unsafe_code)]

use mawilab_lint::{check, render, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(1);
                }
            },
            "--help" | "-h" => {
                println!("usage: mawilab-lint [--deny-all] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(1);
            }
        }
    }

    let ws = match Workspace::from_disk(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "mawilab-lint: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(1);
        }
    };
    let violations = check(&ws);
    if violations.is_empty() {
        println!(
            "mawilab-lint: {} files clean across 6 invariant rules",
            ws.files.len()
        );
        return ExitCode::SUCCESS;
    }
    print!("{}", render(&violations));
    println!("mawilab-lint: {} violation(s)", violations.len());
    if deny_all {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
