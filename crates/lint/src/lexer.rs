//! A comment/string/raw-string-aware Rust lexer.
//!
//! The rules in this crate are lexical, not syntactic: they look for
//! token patterns like `.unwrap()` or `env::var("MAWILAB_THREADS")`.
//! Matching those against raw source would miss-fire on occurrences
//! inside comments, doc comments, and string literals — including the
//! pragma syntax itself, which must only count when it appears in a
//! real `//` comment.
//!
//! [`lex`] therefore produces a *code view* of the file: a string of
//! the same byte length as the input in which every comment byte and
//! every string/char-literal interior byte has been replaced by a
//! space (newlines are preserved, so byte offsets and line numbers
//! stay valid). Rules scan the code view; the pragma scanner reads
//! the extracted [`Comment`]s; the one rule that needs a literal's
//! *content* (`thread-env-isolation` looks for `"MAWILAB_THREADS"`)
//! reads the extracted [`StrLit`]s.
//!
//! Handled: line comments, nested block comments, `"…"` strings with
//! escapes, raw strings `r"…"` / `r#"…"#` (any number of `#`), byte
//! strings `b"…"` / `br#"…"#`, C strings `c"…"`, char and byte-char
//! literals (including `'\''` and `'"'`), and the char-literal vs
//! lifetime ambiguity (`'a'` vs `&'a str`).

/// One `//` line comment (doc comments included), without the
/// leading slashes, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    /// True when the line holds nothing but whitespace before the
    /// comment — a comment-only line.
    pub own_line: bool,
    pub text: String,
}

/// One string literal's interior text (escapes left undecoded) with
/// the byte offset of its opening quote in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    pub line: u32,
    pub offset: usize,
    pub text: String,
}

/// The lexed form of one source file. See the module docs.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Same byte length as the input; comments and literal interiors
    /// blanked to spaces, newlines preserved.
    pub code: String,
    pub comments: Vec<Comment>,
    pub strings: Vec<StrLit>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into its code view plus extracted comments and string
/// literals. Never panics on malformed input: an unterminated
/// comment/literal simply blanks through end of file.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut code: Vec<u8> = bytes.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line: u32 = 1;
    // Byte offset where the current line starts; everything before
    // the cursor on this line is already finalized in `code`, so
    // "comment-only line" falls out of the blanked view directly.
    let mut line_start = 0usize;
    let mut i = 0usize;

    // Blanks bytes `from..to` in the code view, preserving newlines
    // and keeping `line`/`line_start` in sync.
    macro_rules! blank {
        ($code:ident, $from:expr, $to:expr) => {
            for k in $from..$to.min($code.len()) {
                if $code[k] == b'\n' {
                    line += 1;
                    line_start = k + 1;
                } else {
                    $code[k] = b' ';
                }
            }
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let end = bytes[i..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(bytes.len(), |p| i + p);
                let mut text_start = i + 2;
                // Doc comments: strip the third slash or the `/!`.
                if text_start < end && (bytes[text_start] == b'/' || bytes[text_start] == b'!') {
                    text_start += 1;
                }
                let own_line = code[line_start..i].iter().all(|b| b.is_ascii_whitespace());
                comments.push(Comment {
                    line,
                    own_line,
                    text: src[text_start.min(end)..end].to_string(),
                });
                blank!(code, i, end);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Nested block comment.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank!(code, start, i);
            }
            b'"' => {
                i = scan_string(src, i, line, &mut strings);
                let (start, end) = (strings.last().map(|s| s.offset).unwrap_or(i), i);
                // Blank the interior, keep both quote bytes.
                blank!(code, start + 1, end.saturating_sub(1));
            }
            b'r' | b'b' | b'c'
                if !prev_is_ident(bytes, i) && raw_or_byte_prefix(bytes, i).is_some() =>
            {
                let (kind, lit_start) = raw_or_byte_prefix(bytes, i).unwrap();
                match kind {
                    PrefixKind::RawString { hashes } => {
                        let start = lit_start; // offset of `"`
                        let end = scan_raw_string(bytes, start, hashes);
                        let lo = (start + 1).min(end);
                        let hi = end.saturating_sub(1 + hashes).max(lo);
                        strings.push(StrLit {
                            line,
                            offset: i,
                            // An unterminated raw literal can leave `hi`
                            // mid-char; degrade to empty rather than slice.
                            text: src.get(lo..hi).unwrap_or("").to_string(),
                        });
                        blank!(code, start + 1, end.saturating_sub(1 + hashes));
                        i = end;
                    }
                    PrefixKind::PlainString => {
                        let end = scan_string(src, lit_start, line, &mut strings);
                        // Re-stamp the prefix offset so rules see the
                        // literal starting at `b"`/`c"`.
                        if let Some(last) = strings.last_mut() {
                            last.offset = i;
                        }
                        blank!(code, lit_start + 1, end.saturating_sub(1));
                        i = end;
                    }
                    PrefixKind::ByteChar => {
                        let end = scan_char(bytes, lit_start);
                        blank!(code, lit_start + 1, end.saturating_sub(1));
                        i = end;
                    }
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank!(code, i + 1, end - 1);
                    i = end;
                } else {
                    // A lifetime: leave it in the code view.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    Lexed {
        code: String::from_utf8(code).unwrap_or_else(|e| {
            // Blanking only ever writes ASCII spaces over whole bytes
            // of multi-byte chars inside literals/comments, which
            // keeps the buffer valid UTF-8 except in that one case —
            // fall back to a lossy view rather than failing the lint.
            String::from_utf8_lossy(e.as_bytes()).into_owned()
        }),
        comments,
        strings,
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident(bytes[i - 1])
}

enum PrefixKind {
    /// `r"…"`, `r#"…"#`, `br#"…"#`, `cr"…"`… — `hashes` is the number
    /// of `#` between the prefix and the quote.
    RawString { hashes: usize },
    /// `b"…"` / `c"…"` — behaves like a plain string.
    PlainString,
    /// `b'…'`.
    ByteChar,
}

/// If position `i` starts a prefixed literal (`r`/`b`/`c`/`br`/`cr`,
/// then optional `#`s, then a quote), returns its kind and the offset
/// of the opening quote.
fn raw_or_byte_prefix(bytes: &[u8], i: usize) -> Option<(PrefixKind, usize)> {
    let mut j = i;
    let mut raw = false;
    match bytes[j] {
        b'r' => {
            raw = true;
            j += 1;
        }
        b'b' | b'c' => {
            j += 1;
            if j < bytes.len() && bytes[j] == b'r' {
                raw = true;
                j += 1;
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'"' {
            return Some((PrefixKind::RawString { hashes }, j));
        }
        return None;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        return Some((PrefixKind::PlainString, j));
    }
    if bytes[i] == b'b' && j < bytes.len() && bytes[j] == b'\'' {
        return Some((PrefixKind::ByteChar, j));
    }
    None
}

/// Scans a plain `"…"` string starting at the opening quote; records
/// the literal and returns the offset just past the closing quote.
fn scan_string(src: &str, start: usize, line: u32, strings: &mut Vec<StrLit>) -> usize {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                strings.push(StrLit {
                    line,
                    offset: start,
                    text: src[start + 1..i].to_string(),
                });
                return i + 1;
            }
            _ => i += 1,
        }
    }
    strings.push(StrLit {
        line,
        offset: start,
        text: src[(start + 1).min(bytes.len())..].to_string(),
    });
    bytes.len()
}

/// Scans a raw string whose opening quote is at `start` with `hashes`
/// `#`s; returns the offset just past the final `#` (or `"`).
fn scan_raw_string(bytes: &[u8], start: usize, hashes: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < bytes.len() && bytes[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Scans a char/byte-char literal whose opening `'` is at `start`;
/// returns the offset just past the closing `'`.
fn scan_char(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Distinguishes a char literal from a lifetime at a bare `'`.
/// Returns the end offset (past the closing quote) for a literal,
/// `None` for a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        return Some(scan_char(bytes, i));
    }
    if next == b'\'' {
        // `''` — malformed; treat as empty literal to keep scanning.
        return Some(i + 2);
    }
    // A literal holds exactly one char then a quote; anything longer
    // before the next `'` is a lifetime (or a `'` never arrives).
    let ch_len = utf8_len(next);
    if bytes.get(i + 1 + ch_len) == Some(&b'\'') {
        return Some(i + 2 + ch_len);
    }
    None
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comment_is_blanked_and_captured() {
        let l = lex("let x = 1; // trailing note\nlet y = 2;");
        assert!(l.code.contains("let x = 1;"));
        assert!(!l.code.contains("trailing"));
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(!l.comments[0].own_line);
        assert_eq!(l.comments[0].text, " trailing note");
        assert_eq!(
            l.code.len(),
            "let x = 1; // trailing note\nlet y = 2;".len()
        );
    }

    #[test]
    fn own_line_comment_is_flagged() {
        let l = lex("    // just a comment\nlet z = 3;");
        assert!(l.comments[0].own_line);
    }

    #[test]
    fn string_interior_is_blanked_but_recorded() {
        let l = lex(r#"let s = "panic! inside"; s.len();"#);
        assert!(!l.code.contains("panic!"));
        assert!(l.code.contains("s.len()"));
        assert_eq!(l.strings.len(), 1);
        assert_eq!(l.strings[0].text, "panic! inside");
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let l = lex(r#"let s = "a\"b.unwrap()"; x();"#);
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains("x()"));
        assert_eq!(l.strings[0].text, r#"a\"b.unwrap()"#);
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l.code.contains("&'a str"), "{}", l.code);
        assert!(!l.code.contains("'x'"));
        assert!(l.code.contains("' '"), "literal quotes kept: {}", l.code);
    }

    #[test]
    fn multibyte_char_literal() {
        let l = lex("let c = 'é'; let d = 1;");
        assert!(l.code.contains("let d = 1;"));
        assert!(!l.code.contains('é'));
    }

    #[test]
    fn raw_string_interior_is_blanked() {
        let l = lex(r###"let s = r#"x.unwrap() and "quotes" inside"#; y();"###);
        assert!(!l.code.contains("unwrap"), "{}", l.code);
        assert!(l.code.contains("y()"));
        assert_eq!(l.strings[0].text, r#"x.unwrap() and "quotes" inside"#);
    }

    #[test]
    fn raw_string_hash_count_must_match() {
        // A `"#` inside an `r##"…"##` literal does not close it.
        let l = lex(r####"let s = r##"one "# still inside"##; z();"####);
        assert_eq!(l.strings.len(), 1);
        assert_eq!(l.strings[0].text, r##"one "# still inside"##);
        assert!(l.code.contains("z()"));
    }

    #[test]
    fn nested_block_comments_blank_to_the_outer_close() {
        let l = lex("a(); /* outer /* inner panic!() */ still comment */ b();");
        assert!(l.code.contains("a()"));
        assert!(l.code.contains("b()"));
        assert!(!l.code.contains("panic!"));
        assert!(!l.code.contains("still comment"));
    }

    #[test]
    fn multiline_block_comment_keeps_line_numbers() {
        let l = lex("a();\n/* one\ntwo\nthree */\n// after\nb();");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 5);
        assert!(l.comments[0].own_line);
    }

    #[test]
    fn byte_string_interior_is_blanked() {
        let l = lex(r##"let b = b"thread::spawn"; let rb = br#"x.expect("w")"#; t();"##);
        assert!(!l.code.contains("thread::spawn"), "{}", l.code);
        assert!(!l.code.contains("expect"), "{}", l.code);
        assert!(l.code.contains("t()"));
        assert_eq!(l.strings[0].text, "thread::spawn");
    }

    #[test]
    fn char_literals_containing_quotes() {
        let l = lex(r#"let a = '"'; let b = '\''; let c = b'\''; ok();"#);
        assert!(l.code.contains("ok()"), "{}", l.code);
        assert!(!l.code.contains('"'), "quote char leaked: {}", l.code);
        // No string literal was opened by the quote inside the char.
        assert!(l.strings.is_empty());
    }

    #[test]
    fn pragma_inside_string_is_not_a_comment() {
        let l = lex(r#"let s = "// lint:allow(panic-free-data-plane): no"; x.unwrap();"#);
        assert!(l.comments.is_empty(), "string interior parsed as comment");
        // The code outside the string is still visible to rules.
        assert!(l.code.contains(".unwrap()"));
    }

    #[test]
    fn pragma_inside_raw_string_is_not_a_comment() {
        let l = lex(r###"let s = r#"// lint:allow(oracle-registry): no"#;"###);
        assert!(l.comments.is_empty());
    }
}
