//! The per-line escape hatch: `// lint:allow(<rule>): <reason>`.
//!
//! A pragma waives violations of `<rule>` on its own line — or, when
//! the comment stands alone on its line, on the next line that holds
//! code. The reason is mandatory: a bare `lint:allow(rule)` (or one
//! with an empty reason) is itself a violation, as is a pragma naming
//! an unknown rule or one that waives nothing (`pragma-hygiene`).
//! Pragmas are only recognised in real `//` comments — the lexer has
//! already blanked string literals, so a pragma spelled inside a
//! string never counts.

use crate::lexer::Comment;

/// One parsed pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the comment sits on.
    pub line: u32,
    /// True when the comment is alone on its line (applies to the
    /// next code line instead of its own).
    pub own_line: bool,
    pub rule: String,
    /// `None` for a bare pragma; `Some` is guaranteed non-empty.
    pub reason: Option<String>,
    /// Malformed-ness: set when the pragma could not be parsed past
    /// `lint:allow` (unclosed paren etc.).
    pub malformed: bool,
}

/// Extracts every pragma from a file's line comments.
pub fn parse(comments: &[Comment]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            out.push(Pragma {
                line: c.line,
                own_line: c.own_line,
                rule: String::new(),
                reason: None,
                malformed: true,
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Pragma {
                line: c.line,
                own_line: c.own_line,
                rule: String::new(),
                reason: None,
                malformed: true,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim();
        let reason = after
            .strip_prefix(':')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        out.push(Pragma {
            line: c.line,
            own_line: c.own_line,
            rule,
            reason,
            malformed: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas_of(src: &str) -> Vec<Pragma> {
        parse(&lex(src).comments)
    }

    #[test]
    fn trailing_pragma_with_reason() {
        let p = pragmas_of("x.unwrap(); // lint:allow(panic-free-data-plane): seeded above\n");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rule, "panic-free-data-plane");
        assert_eq!(p[0].reason.as_deref(), Some("seeded above"));
        assert!(!p[0].own_line);
    }

    #[test]
    fn bare_pragma_has_no_reason() {
        let p = pragmas_of("x(); // lint:allow(no-ad-hoc-threads)\n");
        assert_eq!(p[0].reason, None);
        assert!(!p[0].malformed);
        // Colon with empty reason is still bare.
        let p = pragmas_of("x(); // lint:allow(no-ad-hoc-threads):   \n");
        assert_eq!(p[0].reason, None);
    }

    #[test]
    fn pragma_inside_string_does_not_count() {
        let p = pragmas_of(r#"let s = "// lint:allow(panic-free-data-plane): nope";"#);
        assert!(p.is_empty());
    }

    #[test]
    fn own_line_pragma_is_marked() {
        let p = pragmas_of(
            "// lint:allow(hashmap-iteration-order): folded into a sum\nfor k in m.keys() {}\n",
        );
        assert!(p[0].own_line);
    }
}
