//! Runs the rules and applies pragmas.
//!
//! The engine is where the escape hatch meets the rules: a violation
//! is waived only by a *justified* pragma (`lint:allow(<rule>):
//! <reason>`) whose effective line matches. Pragma problems — bare
//! (no reason), malformed, unknown rule, or waiving nothing — are
//! themselves `pragma-hygiene` violations, which cannot be waived.

use crate::rules::{self, Violation, PRAGMA_HYGIENE, RULES};
use crate::workspace::{SourceFile, Workspace};

/// Runs every rule over the workspace and applies pragmas. Returns
/// the surviving violations, sorted by (file, line, rule).
pub fn check(ws: &Workspace) -> Vec<Violation> {
    let raw = rules::run_all(ws);
    let mut out = Vec::new();
    let mut waived_by: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.pragmas.len()])
        .collect();

    for v in raw {
        let waived = ws
            .files
            .iter()
            .position(|f| f.path == v.file)
            .is_some_and(|fi| {
                let f = &ws.files[fi];
                let mut hit = false;
                for (pi, p) in f.pragmas.iter().enumerate() {
                    if p.malformed || p.reason.is_none() || p.rule != v.rule {
                        continue;
                    }
                    if effective_line(f, p.line, p.own_line) == v.line {
                        waived_by[fi][pi] = true;
                        hit = true;
                    }
                }
                hit
            });
        if !waived {
            out.push(v);
        }
    }

    // Pragma hygiene.
    for (fi, f) in ws.files.iter().enumerate() {
        for (pi, p) in f.pragmas.iter().enumerate() {
            if p.malformed {
                out.push(Violation {
                    file: f.path.clone(),
                    line: p.line,
                    rule: PRAGMA_HYGIENE,
                    msg: "malformed pragma: expected `lint:allow(<rule>): <reason>`".to_string(),
                });
                continue;
            }
            if !RULES.contains(&p.rule.as_str()) {
                out.push(Violation {
                    file: f.path.clone(),
                    line: p.line,
                    rule: PRAGMA_HYGIENE,
                    msg: format!("pragma names unknown rule `{}`", p.rule),
                });
                continue;
            }
            if p.reason.is_none() {
                out.push(Violation {
                    file: f.path.clone(),
                    line: p.line,
                    rule: PRAGMA_HYGIENE,
                    msg: format!(
                        "bare pragma: `lint:allow({})` must carry a reason — \
                         `lint:allow({}): <why this is sound>`",
                        p.rule, p.rule
                    ),
                });
                continue;
            }
            if !waived_by[fi][pi] {
                out.push(Violation {
                    file: f.path.clone(),
                    line: p.line,
                    rule: PRAGMA_HYGIENE,
                    msg: format!(
                        "pragma waives nothing: no `{}` violation on its line — \
                         remove it",
                        p.rule
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// The line a pragma applies to: its own line for a trailing comment,
/// or the next line holding code for a comment-only line.
fn effective_line(f: &SourceFile, pragma_line: u32, own_line: bool) -> u32 {
    if !own_line {
        return pragma_line;
    }
    let lines: Vec<&str> = f.lexed.code.lines().collect();
    let mut l = pragma_line as usize; // 0-based index of the next line
    while l < lines.len() {
        if !lines[l].trim().is_empty() {
            return l as u32 + 1;
        }
        l += 1;
    }
    pragma_line
}

/// Renders violations in `file:line: [rule] message` form.
pub fn render(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        s.push_str(&format!("{}:{}: [{}] {}\n", v.file, v.line, v.rule, v.msg));
    }
    s
}
