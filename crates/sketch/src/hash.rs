//! 2-universal hashing over `u64` keys.
//!
//! Multiply–add–shift hashing (Dietzfelbinger et al.): with odd random
//! `a` and random `b`, `h(x) = (a·x + b) >> (64 − ℓ)` is universal on
//! `ℓ`-bit outputs; the result is then reduced modulo the (arbitrary)
//! width. Deterministic given the seed, which keeps every detector
//! reproducible.

/// One hash function from a 2-universal family, mapping `u64` keys to
/// `0..width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalHash {
    a: u64,
    b: u64,
    width: u64,
}

impl UniversalHash {
    /// Derives the `index`-th function of the family identified by
    /// `seed`, with output range `0..width`.
    pub fn new(seed: u64, index: u64, width: usize) -> Self {
        assert!(width >= 1, "hash width must be at least 1");
        // SplitMix64 expansion of (seed, index) into the (a, b) pair.
        let mut s = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = next() | 1; // multiplier must be odd
        let b = next();
        UniversalHash {
            a,
            b,
            width: width as u64,
        }
    }

    /// Output range.
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Hashes a key into `0..width`.
    pub fn hash(&self, key: u64) -> usize {
        let mixed = self.a.wrapping_mul(key).wrapping_add(self.b);
        // Take the high 32 bits (best-mixed under multiply) and reduce.
        ((mixed >> 32) % self.width) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let h1 = UniversalHash::new(7, 0, 64);
        let h2 = UniversalHash::new(7, 0, 64);
        for k in 0..1000u64 {
            assert_eq!(h1.hash(k), h2.hash(k));
        }
    }

    #[test]
    fn different_indices_give_different_functions() {
        let h1 = UniversalHash::new(7, 0, 1024);
        let h2 = UniversalHash::new(7, 1, 1024);
        let diff = (0..1000u64).filter(|&k| h1.hash(k) != h2.hash(k)).count();
        assert!(diff > 900, "only {diff} keys hash differently");
    }

    #[test]
    fn output_always_in_range() {
        for width in [1usize, 2, 3, 17, 64, 1000] {
            let h = UniversalHash::new(42, 3, width);
            for k in [0u64, 1, u64::MAX, 0xdead_beef] {
                assert!(h.hash(k) < width);
            }
        }
    }

    #[test]
    fn sequential_ips_spread_evenly() {
        // IPv4 addresses in a /16 must not collide into few bins.
        let h = UniversalHash::new(1, 0, 64);
        let mut counts = vec![0u32; 64];
        for k in 0..65_536u64 {
            counts[h.hash(0x0a00_0000 + k)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        let expected = 65_536.0 / 64.0;
        assert!(max < expected * 1.4, "max bin {max}");
        assert!(min > expected * 0.6, "min bin {min}");
    }

    #[test]
    fn width_one_maps_everything_to_zero() {
        let h = UniversalHash::new(5, 5, 1);
        assert_eq!(h.hash(123), 0);
        assert_eq!(h.hash(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        UniversalHash::new(0, 0, 0);
    }
}
