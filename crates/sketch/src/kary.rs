//! k-ary sketch families with reversible identification.

use crate::hash::UniversalHash;

/// A family of `rows` independent hash functions of common `width`,
/// plus the reverse-identification step both sketch-based detectors
/// share.
#[derive(Debug, Clone)]
pub struct SketchFamily {
    rows: Vec<UniversalHash>,
}

impl SketchFamily {
    /// Builds a family of `rows ≥ 1` hash functions with `width ≥ 1`
    /// bins each, derived deterministically from `seed`.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows >= 1, "sketch needs at least one row");
        SketchFamily {
            rows: (0..rows as u64)
                .map(|i| UniversalHash::new(seed, i, width))
                .collect(),
        }
    }

    /// Number of hash rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Bins per row.
    pub fn width(&self) -> usize {
        self.rows[0].width()
    }

    /// Bin of `key` in row `row`.
    pub fn bin(&self, row: usize, key: u64) -> usize {
        self.rows[row].hash(key)
    }

    /// Bins of `key` in every row.
    pub fn bins(&self, key: u64) -> Vec<usize> {
        self.rows.iter().map(|h| h.hash(key)).collect()
    }

    /// Reverse identification: among `candidates`, returns the keys
    /// whose bin is flagged in **every** row. `flagged[r]` is the
    /// boolean flag vector of row `r` (length = width).
    ///
    /// This is how the sketch-based detectors name the IP address
    /// behind an anomalous bin: a key must explain the anomaly in all
    /// `H` independent projections, so hash collisions (innocent keys
    /// sharing a bin with an attacker in one row) survive with
    /// probability only ≈ `(f/M)^H`.
    pub fn identify<I>(&self, candidates: I, flagged: &[Vec<bool>]) -> Vec<u64>
    where
        I: IntoIterator<Item = u64>,
    {
        assert_eq!(flagged.len(), self.rows(), "one flag vector per row");
        for (r, f) in flagged.iter().enumerate() {
            assert_eq!(f.len(), self.rows[r].width(), "flag vector width mismatch");
        }
        candidates
            .into_iter()
            .filter(|&key| self.rows.iter().zip(flagged).all(|(h, f)| f[h.hash(key)]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_dimensions() {
        let s = SketchFamily::new(4, 32, 99);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.width(), 32);
        assert_eq!(s.bins(12345).len(), 4);
    }

    #[test]
    fn bins_match_per_row_bin() {
        let s = SketchFamily::new(3, 17, 5);
        let all = s.bins(777);
        for (r, &b) in all.iter().enumerate() {
            assert_eq!(s.bin(r, 777), b);
        }
    }

    #[test]
    fn identify_finds_the_planted_key() {
        let s = SketchFamily::new(4, 64, 11);
        let attacker = 0xBAD_CAFE_u64;
        // Flag exactly the attacker's bins.
        let mut flagged = vec![vec![false; 64]; 4];
        for (r, f) in flagged.iter_mut().enumerate() {
            f[s.bin(r, attacker)] = true;
        }
        let candidates: Vec<u64> = (0..10_000).chain([attacker]).collect();
        let found = s.identify(candidates, &flagged);
        assert!(found.contains(&attacker));
        // Collisions must be rare: with f=1 flagged bin per row the
        // expected survivors are 10_000/64⁴ ≈ 0.0006.
        assert!(
            found.len() <= 2,
            "too many false identifications: {}",
            found.len()
        );
    }

    #[test]
    fn more_rows_reduce_false_identifications() {
        let attacker = 424_242u64;
        let candidates: Vec<u64> = (0..50_000).collect();
        let survivors = |rows: usize| {
            let s = SketchFamily::new(rows, 16, 3);
            let mut flagged = vec![vec![false; 16]; rows];
            for (r, f) in flagged.iter_mut().enumerate() {
                f[s.bin(r, attacker)] = true;
            }
            s.identify(candidates.iter().copied(), &flagged).len()
        };
        assert!(survivors(4) < survivors(1));
    }

    #[test]
    fn nothing_flagged_identifies_nothing() {
        let s = SketchFamily::new(2, 8, 1);
        let flagged = vec![vec![false; 8]; 2];
        assert!(s.identify(0..100u64, &flagged).is_empty());
    }

    #[test]
    fn everything_flagged_identifies_everything() {
        let s = SketchFamily::new(2, 8, 1);
        let flagged = vec![vec![true; 8]; 2];
        assert_eq!(s.identify(0..100u64, &flagged).len(), 100);
    }

    #[test]
    #[should_panic(expected = "one flag vector per row")]
    fn wrong_flag_row_count_panics() {
        let s = SketchFamily::new(3, 8, 1);
        let flagged = vec![vec![false; 8]; 2];
        s.identify(0..10u64, &flagged);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_flag_width_panics() {
        let s = SketchFamily::new(1, 8, 1);
        let flagged = vec![vec![false; 9]];
        s.identify(0..10u64, &flagged);
    }
}
