//! # mawilab-sketch
//!
//! Random-projection (hash-based) sketches.
//!
//! Two of the paper's detectors depend on sketching: the PCA detector
//! uses sketches to make the subspace method *reversible* — able to
//! name the source IP behind an anomalous residual (paper §3.2,
//! detector 1, citing Li et al. [23] and Kanda et al. [18]) — and the
//! Gamma detector hashes traffic on source and destination addresses
//! before fitting per-bin Gamma models (detector 2, Dewaele et al.).
//!
//! The scheme is the classic k-ary sketch: `H` independent universal
//! hash rows of width `M`. A key (IP address) maps to one bin per row;
//! a key is *identified* as anomalous when every row flags the bin the
//! key lands in — intersecting across independent rows shrinks the
//! false-identification probability to roughly `(f/M)^H` for `f`
//! flagged bins per row.

#![forbid(unsafe_code)]

pub mod hash;
pub mod kary;

pub use hash::UniversalHash;
pub use kary::SketchFamily;
