//! Summary statistics: moments, quantiles, robust scale, EWMA.
//!
//! The detectors derive adaptive thresholds from these primitives:
//! the PCA detector's Q-statistic uses residual mean/stddev, the Gamma
//! detector normalises distances by median/MAD across sketch bins, and
//! the KL detector maintains an EWMA baseline of per-bin divergences.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (0 for fewer than two points).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (0 for an empty slice). Does not mutate the input.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile `q ∈ [0,1]` (0 for an empty slice).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile outside [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input")); // lint:allow(panic-free-data-plane): quantile inputs are detector metrics, finite by construction
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median absolute deviation, scaled by 1.4826 to be a consistent
/// estimator of σ under normality. Returns 0 for constant input.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    1.4826 * median(&devs)
}

/// Exponentially weighted moving average of a series with smoothing
/// factor `alpha ∈ (0, 1]`; element `i` of the result is the EWMA
/// *after* absorbing `xs[i]`.
pub fn ewma(xs: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha outside (0,1]");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = None;
    for &x in xs {
        let next = match acc {
            None => x,
            Some(prev) => alpha * x + (1.0 - alpha) * prev,
        };
        out.push(next);
        acc = Some(next);
    }
    out
}

/// Welford's online mean/variance accumulator — single pass, numerically
/// stable, usable while streaming packets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased running variance (0 below two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_of_known_set() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_give_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[]), 0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 1.0 / 3.0) - 20.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_does_not_mutate_input() {
        let xs = [3.0, 1.0, 2.0];
        let _ = quantile(&xs, 0.5);
        assert_eq!(xs, [3.0, 1.0, 2.0]);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 1000.0];
        // stddev explodes, MAD barely moves.
        assert!(stddev(&dirty) > 100.0 * stddev(&clean) / 2.0);
        assert!((mad(&dirty) - mad(&clean)).abs() < 1.5);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[7.0; 10]), 0.0);
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let xs = [1.0, 5.0, 2.0];
        assert_eq!(ewma(&xs, 1.0), xs.to_vec());
    }

    #[test]
    fn ewma_smooths_towards_history() {
        let xs = [0.0, 0.0, 0.0, 10.0];
        let out = ewma(&xs, 0.5);
        assert_eq!(out[2], 0.0);
        assert_eq!(out[3], 5.0);
    }

    #[test]
    fn welford_matches_batch_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive two-pass.
        let base = 1e9;
        let xs: Vec<f64> = (0..1000).map(|i| base + (i % 10) as f64).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.variance() - variance(&xs)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn ewma_zero_alpha_panics() {
        ewma(&[1.0], 0.0);
    }
}
