//! # mawilab-stats
//!
//! Statistical substrate shared by the detectors, the synthetic-trace
//! generator and the evaluation harness:
//!
//! * [`histogram`] — fixed-width feature histograms with probability
//!   normalisation, as used by the KL-divergence detector.
//! * [`divergence`] — Kullback–Leibler (smoothed) and Jensen–Shannon
//!   divergences between discrete distributions.
//! * [`gamma`] — the Gamma(α, β) distribution: density, moments,
//!   method-of-moments fitting (the estimator Dewaele et al.'s
//!   multi-resolution detector relies on) and Marsaglia–Tsang sampling.
//! * [`samplers`] — heavy-tail and counting distributions needed to
//!   synthesise Internet-like traffic (Zipf, Pareto, log-normal,
//!   exponential, Poisson). Implemented here rather than pulling
//!   `rand_distr`, keeping the substrate self-contained (DESIGN.md §3).
//! * [`summary`] — running moments, quantiles, median/MAD robust
//!   scale, and EWMA baselines used for adaptive thresholds.

#![forbid(unsafe_code)]

pub mod divergence;
pub mod gamma;
pub mod histogram;
pub mod samplers;
pub mod summary;

pub use divergence::{js_divergence, kl_contributions, kl_divergence, kl_divergence_counts};
pub use gamma::Gamma;
pub use histogram::Histogram;
pub use samplers::{Exponential, LogNormal, Pareto, Poisson, Zipf};
pub use summary::{ewma, mad, mean, median, quantile, stddev, variance, Welford};
