//! Random-variate samplers for Internet-like traffic synthesis.
//!
//! The MAWI archive substitute (`mawilab-synth`) needs the classic
//! traffic-model ingredients: Zipf host popularity, Pareto flow sizes,
//! log-normal transfer volumes, exponential inter-arrivals and Poisson
//! batch counts. All samplers draw through `rand::Rng` so the whole
//! generator stays deterministic under a seeded RNG.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`
/// (`P(k) ∝ k^-s`). Sampling is inversion over the precomputed CDF —
/// O(log n) per draw, exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf sampler over `n ≥ 1` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        let prev = if k == 1 { 0.0 } else { self.cdf[k - 2] };
        self.cdf[k - 1] - prev
    }
}

/// Pareto distribution with scale `xm > 0` and shape `a > 0`
/// (`P(X > x) = (xm/x)^a` for `x ≥ xm`). Heavy-tailed flow sizes.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto sampler.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && xm.is_finite(), "Pareto scale must be positive");
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "Pareto shape must be positive"
        );
        Pareto { xm, alpha }
    }

    /// Inversion sampling: `xm / U^{1/α}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        self.xm / u.powf(1.0 / self.alpha)
    }

    /// Mean (infinite for `α ≤ 1`).
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
}

/// Log-normal distribution with log-mean `mu` and log-stddev `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal sampler (`sigma ≥ 0`).
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        LogNormal { mu, sigma }
    }

    /// Box–Muller standard normal, then exponentiate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Distribution mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/λ`).
/// Inter-arrival times of Poisson processes.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential sampler with rate `λ > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "rate must be positive");
        Exponential { lambda }
    }

    /// Inversion sampling: `-ln(U)/λ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Knuth multiplication for small λ, normal approximation (rounded,
/// clamped at zero) for λ > 30 — adequate for batch counts in traffic
/// synthesis.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson sampler with mean `λ ≥ 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be non-negative"
        );
        Poisson { lambda }
    }

    /// Draws one count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 30.0 {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = self.lambda + self.lambda.sqrt() * z;
            return x.round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const fn seed() -> u64 {
        0x4d41_5749 // "MAWI"
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(seed());
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[50]);
        // Empirical top-rank share close to pmf(1).
        let share = counts[1] as f64 / 20_000.0;
        assert!((share - z.pmf(1)).abs() < 0.02, "share = {share}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.9);
        let s: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_single_rank_always_returns_one() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(seed());
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let p = Pareto::new(3.0, 1.5);
        let mut rng = StdRng::seed_from_u64(seed());
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn pareto_sample_mean_approximates_theory() {
        let p = Pareto::new(1.0, 2.5);
        let mut rng = StdRng::seed_from_u64(seed());
        let n = 200_000;
        let m: f64 = (0..n).map(|_| p.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (m - p.mean()).abs() < 0.05,
            "mean = {m}, theory = {}",
            p.mean()
        );
    }

    #[test]
    fn pareto_heavy_tail_mean_is_infinite() {
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn lognormal_mean_matches_theory() {
        let ln = LogNormal::new(1.0, 0.5);
        let mut rng = StdRng::seed_from_u64(seed());
        let n = 200_000;
        let m: f64 = (0..n).map(|_| ln.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - ln.mean()).abs() / ln.mean() < 0.02, "mean = {m}");
    }

    #[test]
    fn exponential_mean_is_reciprocal_rate() {
        let e = Exponential::new(4.0);
        let mut rng = StdRng::seed_from_u64(seed());
        let n = 100_000;
        let m: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 0.25).abs() < 0.01, "mean = {m}");
    }

    #[test]
    fn poisson_small_lambda_mean_and_zero() {
        let mut rng = StdRng::seed_from_u64(seed());
        assert_eq!(Poisson::new(0.0).sample(&mut rng), 0);
        let p = Poisson::new(3.0);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_path() {
        let p = Poisson::new(200.0);
        let mut rng = StdRng::seed_from_u64(seed());
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let m: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let v: f64 = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((m - 200.0).abs() < 1.0, "mean = {m}");
        assert!((v - 200.0).abs() < 10.0, "var = {v}");
    }

    #[test]
    fn samplers_are_deterministic_under_fixed_seed() {
        let z = Zipf::new(20, 1.0);
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exponential_zero_rate_panics() {
        Exponential::new(0.0);
    }
}
