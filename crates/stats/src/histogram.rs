//! Fixed-width feature histograms.
//!
//! The KL detector (Brauckhoff et al., reproduced in
//! `mawilab-detectors::kl`) monitors one histogram per traffic feature
//! and time bin. Feature domains (IPv4 addresses, ports) are larger
//! than practical bin counts, so values are folded into `bins` cells by
//! a multiplicative hash — the same trade-off the original work makes
//! with hash-based histograms.

/// A fixed-width histogram over `u64` keys.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` cells (≥1).
    pub fn new(bins: usize) -> Self {
        assert!(bins >= 1, "histogram needs at least one bin");
        Histogram {
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of cells.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cell index a key folds into (Fibonacci multiplicative hash —
    /// cheap, deterministic, well-mixed for sequential keys).
    pub fn bin_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.counts.len()
    }

    /// Adds one observation of `key`.
    pub fn add(&mut self, key: u64) {
        self.add_weighted(key, 1);
    }

    /// Adds `w` observations of `key`.
    pub fn add_weighted(&mut self, key: u64, w: u64) {
        let idx = self.bin_of(key);
        self.counts[idx] += w;
        self.total += w;
    }

    /// Raw cell counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count in the cell `key` folds into.
    pub fn count_of(&self, key: u64) -> u64 {
        self.counts[self.bin_of(key)]
    }

    /// Probability vector (uniform when empty so divergence against an
    /// empty histogram stays finite).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            let p = 1.0 / self.counts.len() as f64;
            return vec![p; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        self.probabilities()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// Cells sorted by count, descending: `(bin index, count)`.
    /// The KL detector uses the head of this list to find the feature
    /// values responsible for a divergence spike.
    pub fn top_cells(&self, k: usize) -> Vec<(usize, u64)> {
        let mut cells: Vec<(usize, u64)> = self
            .counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        cells.truncate(k);
        cells
    }

    /// Resets all cells to zero, keeping the bin count.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut h = Histogram::new(16);
        for k in 0..100u64 {
            h.add(k);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn same_key_same_bin() {
        let mut h = Histogram::new(8);
        h.add(42);
        h.add(42);
        h.add(42);
        assert_eq!(h.count_of(42), 3);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut h = Histogram::new(32);
        for k in 0..1000u64 {
            h.add_weighted(k, (k % 7) + 1);
        }
        let s: f64 = h.probabilities().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_uniform() {
        let h = Histogram::new(4);
        assert_eq!(h.probabilities(), vec![0.25; 4]);
        assert!((h.entropy() - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn concentrated_histogram_has_low_entropy() {
        let mut concentrated = Histogram::new(64);
        for _ in 0..1000 {
            concentrated.add(7);
        }
        let mut spread = Histogram::new(64);
        for k in 0..1000u64 {
            spread.add(k * 2654435761);
        }
        assert!(concentrated.entropy() < spread.entropy());
        assert_eq!(concentrated.entropy(), 0.0);
    }

    #[test]
    fn top_cells_orders_by_count() {
        let mut h = Histogram::new(128);
        for _ in 0..50 {
            h.add(1);
        }
        for _ in 0..30 {
            h.add(2);
        }
        h.add(3);
        let top = h.top_cells(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 50);
        assert_eq!(top[1].1, 30);
    }

    #[test]
    fn clear_resets_counts() {
        let mut h = Histogram::new(8);
        h.add(1);
        h.clear();
        assert_eq!(h.total(), 0);
        assert!(h.counts().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0);
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // Sequential IPv4-like keys should not all collide.
        let mut h = Histogram::new(64);
        for k in 0..64u64 {
            h.add(k);
        }
        let occupied = h.counts().iter().filter(|&&c| c > 0).count();
        assert!(occupied > 32, "only {occupied} bins used");
    }
}
