//! Divergences between discrete probability distributions.
//!
//! The KL detector scores each time bin by the Kullback–Leibler
//! divergence between the current and reference feature histograms
//! (paper §3.2, detector 4). Real histograms contain empty cells, so
//! the divergence is computed with additive (Laplace-style) smoothing
//! to stay finite — the standard treatment in the anomaly-detection
//! literature.

/// Smoothing mass added to every cell before normalising.
const SMOOTHING: f64 = 1e-9;

/// Kullback–Leibler divergence `D(p ‖ q)` in nats, with additive
/// smoothing so that empty `q` cells do not produce infinities.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    assert!(!p.is_empty(), "empty distributions");
    let ps: f64 = p.iter().sum::<f64>() + SMOOTHING * p.len() as f64;
    let qs: f64 = q.iter().sum::<f64>() + SMOOTHING * q.len() as f64;
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pn = (pi + SMOOTHING) / ps;
        let qn = (qi + SMOOTHING) / qs;
        d += pn * (pn / qn).ln();
    }
    d.max(0.0) // clamp away -0.0 / tiny negative rounding
}

/// Jensen–Shannon divergence (symmetric, bounded by ln 2).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.8, 0.1, 0.1];
        let q = [0.4, 0.3, 0.3];
        let dpq = kl_divergence(&p, &q);
        let dqp = kl_divergence(&q, &p);
        assert!((dpq - dqp).abs() > 1e-3);
    }

    #[test]
    fn smoothing_keeps_zero_cells_finite() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite());
        assert!(d > 1.0); // still clearly large
    }

    #[test]
    fn kl_accepts_unnormalised_counts() {
        // Count histograms should behave like their normalised form.
        let p = [90.0, 10.0];
        let q = [10.0, 90.0];
        let pn = [0.9, 0.1];
        let qn = [0.1, 0.9];
        assert!((kl_divergence(&p, &q) - kl_divergence(&pn, &qn)).abs() < 1e-6);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 0.0, 1.0];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 <= (2.0f64).ln() + 1e-9);
        assert!(d1 > 0.5);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        kl_divergence(&[0.5, 0.5], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_distributions_panic() {
        kl_divergence(&[], &[]);
    }
}
