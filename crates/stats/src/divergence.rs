//! Divergences between discrete probability distributions.
//!
//! The KL detector scores each time bin by the Kullback–Leibler
//! divergence between the current and reference feature histograms
//! (paper §3.2, detector 4). Real histograms contain empty cells, so
//! the divergence is computed with additive (Laplace-style) smoothing
//! to stay finite — the standard treatment in the anomaly-detection
//! literature.

/// Smoothing mass added to every cell before normalising.
const SMOOTHING: f64 = 1e-9;

/// Kullback–Leibler divergence `D(p ‖ q)` in nats, with additive
/// smoothing so that empty `q` cells do not produce infinities.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    assert!(!p.is_empty(), "empty distributions");
    let ps: f64 = p.iter().sum::<f64>() + SMOOTHING * p.len() as f64;
    let qs: f64 = q.iter().sum::<f64>() + SMOOTHING * q.len() as f64;
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pn = (pi + SMOOTHING) / ps;
        let qn = (qi + SMOOTHING) / qs;
        d += pn * (pn / qn).ln();
    }
    d.max(0.0) // clamp away -0.0 / tiny negative rounding
}

/// Kullback–Leibler divergence `D(p ‖ q)` between two *count*
/// histograms with Laplace smoothing: `pseudo` observations are added
/// to every cell before normalising.
///
/// Unlike [`kl_divergence`]'s fixed additive mass, the pseudo-count is
/// calibrated to the sample size, so cells that flip between zero and
/// a handful of observations contribute `O(p · ln(c/pseudo))` instead
/// of `O(p · ln(p/1e-9))` — sparse-cell churn no longer dominates the
/// divergence of a genuinely shifted distribution.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or `pseudo` is
/// not positive.
pub fn kl_divergence_counts(p: &[u64], q: &[u64], pseudo: f64) -> f64 {
    smoothed_terms(p, q, pseudo).sum::<f64>().max(0.0)
}

/// Per-cell terms `pᵢ · ln(pᵢ/qᵢ)` of [`kl_divergence_counts`], under
/// the same Laplace smoothing. The KL detector ranks these to find
/// the histogram cells responsible for a divergence spike; summing
/// them (clamped at zero) gives exactly the divergence, so the score
/// and its attribution can never use different smoothing.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or `pseudo` is
/// not positive.
pub fn kl_contributions(p: &[u64], q: &[u64], pseudo: f64) -> Vec<f64> {
    smoothed_terms(p, q, pseudo).collect()
}

/// The shared per-cell term computation behind both count-based
/// functions — sum-without-allocating for the series hot path,
/// collected for attribution.
fn smoothed_terms<'a>(p: &'a [u64], q: &'a [u64], pseudo: f64) -> impl Iterator<Item = f64> + 'a {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    assert!(!p.is_empty(), "empty distributions");
    assert!(pseudo > 0.0, "pseudo-count must be positive");
    let ps: f64 = p.iter().sum::<u64>() as f64 + pseudo * p.len() as f64;
    let qs: f64 = q.iter().sum::<u64>() as f64 + pseudo * q.len() as f64;
    p.iter().zip(q).map(move |(&pi, &qi)| {
        let pn = (pi as f64 + pseudo) / ps;
        let qn = (qi as f64 + pseudo) / qs;
        pn * (pn / qn).ln()
    })
}

/// Jensen–Shannon divergence (symmetric, bounded by ln 2).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.8, 0.1, 0.1];
        let q = [0.4, 0.3, 0.3];
        let dpq = kl_divergence(&p, &q);
        let dqp = kl_divergence(&q, &p);
        assert!((dpq - dqp).abs() > 1e-3);
    }

    #[test]
    fn smoothing_keeps_zero_cells_finite() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite());
        assert!(d > 1.0); // still clearly large
    }

    #[test]
    fn kl_accepts_unnormalised_counts() {
        // Count histograms should behave like their normalised form.
        let p = [90.0, 10.0];
        let q = [10.0, 90.0];
        let pn = [0.9, 0.1];
        let qn = [0.1, 0.9];
        assert!((kl_divergence(&p, &q) - kl_divergence(&pn, &qn)).abs() < 1e-6);
    }

    #[test]
    fn counts_kl_of_identical_is_zero() {
        let p = [25u64, 25, 25, 25];
        assert!(kl_divergence_counts(&p, &p, 0.5) < 1e-12);
    }

    #[test]
    fn counts_kl_is_positive_and_asymmetric() {
        let p = [800u64, 100, 100];
        let q = [400u64, 300, 300];
        let dpq = kl_divergence_counts(&p, &q, 0.5);
        let dqp = kl_divergence_counts(&q, &p, 0.5);
        assert!(dpq > 0.0);
        assert!(dqp > 0.0);
        assert!((dpq - dqp).abs() > 1e-3, "D(p‖q)={dpq} vs D(q‖p)={dqp}");
    }

    #[test]
    fn counts_kl_stays_finite_with_empty_cells() {
        let d = kl_divergence_counts(&[1000, 0], &[0, 1000], 0.5);
        assert!(d.is_finite());
        assert!(d > 1.0);
    }

    #[test]
    fn sparse_cell_flips_score_far_below_a_real_shift() {
        // The motivating property of Laplace smoothing over a fixed
        // 1e-9 mass: low-count cells flipping between zero and a
        // couple of observations (background churn) must score far
        // below half the traffic moving into one cell (a flood).
        let mut churn_a = vec![16u64; 128];
        let mut churn_b = vec![16u64; 128];
        for i in 0..12 {
            churn_a[i * 5] = 0;
            churn_b[i * 5] = 2;
            churn_a[i * 5 + 1] = 2;
            churn_b[i * 5 + 1] = 0;
        }
        let churn = kl_divergence_counts(&churn_a, &churn_b, 0.5);

        let base = vec![16u64; 128];
        let mut flood = vec![16u64; 128];
        flood[7] = 2048;
        let shift = kl_divergence_counts(&flood, &base, 0.5);
        assert!(
            shift > 4.0 * churn,
            "flood ({shift:.3}) must dominate churn ({churn:.3})"
        );

        // And the same churn under the old absolute smoothing scores
        // several times higher — the noise floor the Laplace variant
        // exists to remove.
        let norm = |c: &[u64]| {
            let tot: u64 = c.iter().sum();
            c.iter().map(|&x| x as f64 / tot as f64).collect::<Vec<_>>()
        };
        let old_churn = kl_divergence(&norm(&churn_a), &norm(&churn_b));
        assert!(
            churn < 0.5 * old_churn,
            "laplace churn ({churn:.3}) must undercut absolute-smoothing churn ({old_churn:.3})"
        );
    }

    #[test]
    fn contributions_sum_to_the_divergence() {
        let p = [500u64, 120, 0, 30];
        let q = [30u64, 400, 200, 20];
        let sum: f64 = kl_contributions(&p, &q, 0.5).iter().sum();
        assert!((sum - kl_divergence_counts(&p, &q, 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pseudo-count must be positive")]
    fn counts_kl_rejects_nonpositive_pseudo() {
        kl_divergence_counts(&[1, 2], &[2, 1], 0.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 0.0, 1.0];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 <= (2.0f64).ln() + 1e-9);
        assert!(d1 > 0.5);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        kl_divergence(&[0.5, 0.5], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_distributions_panic() {
        kl_divergence(&[], &[]);
    }
}
