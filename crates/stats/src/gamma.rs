//! The Gamma(α, β) distribution.
//!
//! Dewaele et al.'s detector models per-sketch packet counts at each
//! aggregation scale as Gamma distributed and tracks the evolution of
//! the fitted shape α and scale β across scales (paper §3.2,
//! detector 2). Fitting uses the method of moments — `α = m²/v`,
//! `β = v/m` — which is what makes the multi-resolution trajectory
//! cheap enough to compute per sketch bin. Sampling (for the synthetic
//! generator and for tests) uses Marsaglia–Tsang with the standard
//! α < 1 boost.

use rand::Rng;

/// Gamma distribution with shape `alpha` and scale `beta`
/// (mean `αβ`, variance `αβ²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Shape parameter α > 0.
    pub alpha: f64,
    /// Scale parameter β > 0.
    pub beta: f64,
}

impl Gamma {
    /// Creates a Gamma distribution; both parameters must be positive
    /// and finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        Gamma { alpha, beta }
    }

    /// Distribution mean `αβ`.
    pub fn mean(&self) -> f64 {
        self.alpha * self.beta
    }

    /// Distribution variance `αβ²`.
    pub fn variance(&self) -> f64 {
        self.alpha * self.beta * self.beta
    }

    /// Method-of-moments fit from a sample: `α = m²/v`, `β = v/m`.
    ///
    /// Returns `None` when the sample is too small (<2), has
    /// non-positive mean, or zero variance — degenerate sketch bins the
    /// detector must skip rather than crash on.
    pub fn fit_moments(samples: &[f64]) -> Option<Gamma> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let m = samples.iter().sum::<f64>() / n;
        // NaN means fall through to None, so `<=` plus the finite
        // check covers the negated-comparison forms exactly.
        if m <= 0.0 || !m.is_finite() {
            return None;
        }
        let v = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0);
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        Some(Gamma::new(m * m / v, v / m))
    }

    /// Natural log of the density at `x` (−∞ for `x ≤ 0`).
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.alpha - 1.0) * x.ln()
            - x / self.beta
            - ln_gamma(self.alpha)
            - self.alpha * self.beta.ln()
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// Draws one sample (Marsaglia–Tsang 2000; for α < 1 draws from
    /// Gamma(α+1) and applies the `U^{1/α}` boost).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.alpha < 1.0 {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let inner = Gamma::new(self.alpha + 1.0, self.beta);
            return inner.sample(rng) * u.powf(1.0 / self.alpha);
        }
        let d = self.alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller.
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * self.beta;
            }
        }
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`
/// (g = 7, n = 9 coefficients; |relative error| < 1e-13 on the domain
/// the detector touches).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs positive argument");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-10, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half_is_sqrt_pi() {
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn moments_match_parameters() {
        let g = Gamma::new(3.0, 2.0);
        assert_eq!(g.mean(), 6.0);
        assert_eq!(g.variance(), 12.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gamma::new(2.5, 1.5);
        // Trapezoidal integration on [0, 60].
        let n = 60_000;
        let h = 60.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * g.pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-6, "integral = {}", s * h);
    }

    #[test]
    fn pdf_is_zero_for_nonpositive_x() {
        let g = Gamma::new(2.0, 1.0);
        assert_eq!(g.pdf(0.0), 0.0);
        assert_eq!(g.pdf(-1.0), 0.0);
    }

    #[test]
    fn fit_recovers_parameters_from_big_sample() {
        let truth = Gamma::new(4.0, 0.5);
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..200_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = Gamma::fit_moments(&samples).unwrap();
        assert!((fit.alpha - 4.0).abs() < 0.15, "alpha = {}", fit.alpha);
        assert!((fit.beta - 0.5).abs() < 0.05, "beta = {}", fit.beta);
    }

    #[test]
    fn fit_rejects_degenerate_samples() {
        assert!(Gamma::fit_moments(&[]).is_none());
        assert!(Gamma::fit_moments(&[1.0]).is_none());
        assert!(Gamma::fit_moments(&[2.0, 2.0, 2.0]).is_none()); // zero variance
        assert!(Gamma::fit_moments(&[0.0, 0.0]).is_none()); // zero mean
        assert!(Gamma::fit_moments(&[-5.0, -3.0]).is_none()); // negative mean
    }

    #[test]
    fn sampling_matches_moments_small_alpha() {
        // Exercises the α < 1 boost path.
        let g = Gamma::new(0.4, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        assert!((m - g.mean()).abs() < 0.05 * g.mean() + 0.02, "mean = {m}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn negative_beta_panics() {
        Gamma::new(1.0, -1.0);
    }
}
