//! Confidence-score aggregation strategies (paper §2.2.3).

use crate::votes::{Decision, VoteTable};

/// An unsupervised combination strategy: classifies every community
/// of a vote table as accepted or rejected.
pub trait CombinationStrategy: Send + Sync {
    /// Strategy name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Classifies all communities.
    fn classify(&self, table: &VoteTable) -> Vec<Decision>;
}

/// Accept iff the **average** of the four confidence scores exceeds
/// 0.5. Fig. 2 example: mean = 5/9 → accepted.
#[derive(Debug, Clone, Copy, Default)]
pub struct Average;

impl CombinationStrategy for Average {
    fn name(&self) -> &'static str {
        "average"
    }

    fn classify(&self, table: &VoteTable) -> Vec<Decision> {
        (0..table.len())
            .map(|c| {
                let phi = table.confidences(c);
                let mu = phi.iter().sum::<f64>() / phi.len() as f64;
                Decision::new(mu > 0.5)
            })
            .collect()
    }
}

/// Accept iff the **minimum** confidence exceeds 0.5 — the pessimistic
/// strategy: every detector must support the decision. Fig. 2
/// example: min = 0 → rejected.
#[derive(Debug, Clone, Copy, Default)]
pub struct Minimum;

impl CombinationStrategy for Minimum {
    fn name(&self) -> &'static str {
        "minimum"
    }

    fn classify(&self, table: &VoteTable) -> Vec<Decision> {
        (0..table.len())
            .map(|c| {
                let phi = table.confidences(c);
                let mu = phi.iter().copied().fold(f64::INFINITY, f64::min);
                Decision::new(mu > 0.5)
            })
            .collect()
    }
}

/// Accept iff the **maximum** confidence exceeds 0.5 — the optimistic
/// strategy: one convinced detector suffices. Fig. 2 example:
/// max = 1 → accepted.
#[derive(Debug, Clone, Copy, Default)]
pub struct Maximum;

impl CombinationStrategy for Maximum {
    fn name(&self) -> &'static str {
        "maximum"
    }

    fn classify(&self, table: &VoteTable) -> Vec<Decision> {
        (0..table.len())
            .map(|c| {
                let phi = table.confidences(c);
                let mu = phi.iter().copied().fold(0.0, f64::max);
                Decision::new(mu > 0.5)
            })
            .collect()
    }
}

/// The classical majority vote over raw configurations (paper §2.2.1,
/// the Condorcet discussion): accept when more than half of all
/// configurations voted. Not one of the paper's four evaluated
/// strategies — kept as the baseline its §2.2.1 analysis refers to.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl CombinationStrategy for MajorityVote {
    fn name(&self) -> &'static str {
        "majority"
    }

    fn classify(&self, table: &VoteTable) -> Vec<Decision> {
        (0..table.len())
            .map(|c| Decision::new(2 * table.vote_count(c) > crate::votes::N_CONFIGS))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::votes::N_CONFIGS;

    /// Paper Fig. 2: ϕ_A = 2/3, ϕ_B = 1, ϕ_C = 0 (and a fourth
    /// detector D with ϕ_D = 0 since our table has four families).
    fn fig2() -> VoteTable {
        let mut row = [false; N_CONFIGS];
        row[0] = true;
        row[1] = true;
        row[3] = true;
        row[4] = true;
        row[5] = true;
        VoteTable::from_rows(vec![row])
    }

    #[test]
    fn paper_fig2_strategy_outcomes() {
        // With three detectors the paper gets avg = 5/9 → accept.
        // Our table has four families (the fourth scoring 0), so the
        // average drops to 5/12 → reject; min/max match the paper
        // exactly: min = 0 → reject, max = 1 → accept.
        let t = fig2();
        assert!(!Average.classify(&t)[0].accepted);
        assert!(!Minimum.classify(&t)[0].accepted);
        assert!(Maximum.classify(&t)[0].accepted);
    }

    #[test]
    fn three_detector_fig2_average_accepts() {
        // Restrict to the paper's three-detector setting by giving the
        // fourth detector full support: avg of (2/3, 1, 0, 1) > 0.5.
        let mut row = [false; N_CONFIGS];
        row[0] = true;
        row[1] = true;
        row[3] = true;
        row[4] = true;
        row[5] = true;
        row[9] = true;
        row[10] = true;
        row[11] = true;
        let t = VoteTable::from_rows(vec![row]);
        assert!(Average.classify(&t)[0].accepted);
    }

    #[test]
    fn unanimous_and_empty_rows() {
        let all = [true; N_CONFIGS];
        let none = [false; N_CONFIGS];
        let t = VoteTable::from_rows(vec![all, none]);
        for s in strategies() {
            let d = s.classify(&t);
            assert!(d[0].accepted, "{} rejected unanimity", s.name());
            assert!(!d[1].accepted, "{} accepted silence", s.name());
        }
    }

    #[test]
    fn minimum_is_subset_of_average_is_subset_of_maximum() {
        // min ≤ avg ≤ max pointwise ⇒ accepted sets are nested.
        let rows: Vec<[bool; N_CONFIGS]> = (0..256u32)
            .map(|s| {
                let mut r = [false; N_CONFIGS];
                for (k, slot) in r.iter_mut().enumerate() {
                    *slot = (s >> k) & 1 == 1 || (s % 3 == 0 && k % 4 == 1);
                }
                r
            })
            .collect();
        let t = VoteTable::from_rows(rows);
        let mins = Minimum.classify(&t);
        let avgs = Average.classify(&t);
        let maxs = Maximum.classify(&t);
        for c in 0..t.len() {
            if mins[c].accepted {
                assert!(avgs[c].accepted, "min ⊄ avg at {c}");
            }
            if avgs[c].accepted {
                assert!(maxs[c].accepted, "avg ⊄ max at {c}");
            }
        }
    }

    #[test]
    fn majority_needs_seven_of_twelve() {
        let mut six = [false; N_CONFIGS];
        for s in six.iter_mut().take(6) {
            *s = true;
        }
        let mut seven = six;
        seven[6] = true;
        let t = VoteTable::from_rows(vec![six, seven]);
        let d = MajorityVote.classify(&t);
        assert!(!d[0].accepted);
        assert!(d[1].accepted);
    }

    #[test]
    fn single_detector_unanimity_accepted_only_by_maximum() {
        // One detector's 3 configs all vote; others silent.
        let mut row = [false; N_CONFIGS];
        row[9] = true;
        row[10] = true;
        row[11] = true;
        let t = VoteTable::from_rows(vec![row]);
        assert!(Maximum.classify(&t)[0].accepted);
        assert!(!Average.classify(&t)[0].accepted);
        assert!(!Minimum.classify(&t)[0].accepted);
        assert!(!MajorityVote.classify(&t)[0].accepted);
    }

    fn strategies() -> Vec<Box<dyn CombinationStrategy>> {
        vec![
            Box::new(Average),
            Box::new(Minimum),
            Box::new(Maximum),
            Box::new(MajorityVote),
        ]
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            strategies().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
