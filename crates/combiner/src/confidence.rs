//! Per-label confidence from combiner evidence (ROADMAP item 2).
//!
//! A hard accept/reject throws away most of what the combiner knows:
//! how many of the paper's four strategies concur, how far SCANN
//! places the community from its decision boundary (Fig. 10's
//! relative distance — computed in [`crate::scann`] but previously
//! dropped before labeling), and how much raw vote mass the community
//! carries. This module folds those three signals into a single
//! anomaly-confidence score in `[0, 1]` and, following the
//! dual-threshold auto-labeler pattern, an explicit abstention tier:
//! `anomalous` past the high threshold, `benign` under the low one,
//! `uncertain` in between.
//!
//! The score is a pure function of the [`VoteTable`] — it does not
//! depend on which strategy the pipeline happens to run, so batch,
//! streaming, online and warm paths agree on it by construction.
//!
//! **Thresholds-off contract.** With `thresholds = None` the tier
//! degenerates to the hard decision (accepted → `Anomalous`, else
//! `Benign`, never `Uncertain`), so existing label output is
//! byte-identical to the pre-confidence pipeline — pinned by
//! `tests/confidence_equivalence.rs`.

use crate::scann::Scann;
use crate::strategies::{Average, CombinationStrategy, Maximum, Minimum};
use crate::votes::{Decision, VoteTable, N_CONFIGS};

/// The four combination strategies of the paper (§2.2.3): average,
/// minimum, maximum, SCANN. The majority-vote baseline is a repo
/// extension and deliberately excluded from the agreement count.
pub const PAPER_STRATEGIES: usize = 4;

/// Weight of the strategy-agreement fraction in the score.
pub const STRATEGY_WEIGHT: f64 = 0.5;
/// Weight of SCANN's boundary-margin component.
pub const MARGIN_WEIGHT: f64 = 0.3;
/// Weight of the raw vote mass (votes / 12 configurations).
pub const VOTE_WEIGHT: f64 = 0.2;

/// Dual decision thresholds for the abstention tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceThresholds {
    /// Scores `≤ low` are confidently benign.
    pub low: f64,
    /// Scores `≥ high` are confidently anomalous.
    pub high: f64,
}

impl ConfidenceThresholds {
    /// Builds a threshold pair, checking `0 ≤ low < high ≤ 1`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low < high,
            "confidence thresholds need 0 ≤ low < high ≤ 1, got low={low} high={high}"
        );
        ConfidenceThresholds { low, high }
    }
}

impl Default for ConfidenceThresholds {
    /// The archive-sweep operating point: unanimous-strategy
    /// communities score ≥ 0.65 even with thin vote mass, while one
    /// lone strategy accept tops out near 0.3 — the band in between
    /// is where day-over-day churn concentrates (see README
    /// "Confidence tiers").
    fn default() -> Self {
        ConfidenceThresholds {
            low: 0.30,
            high: 0.65,
        }
    }
}

/// The abstention tier of a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConfidenceTier {
    /// Confidently anomalous (score past the high threshold, or the
    /// community was accepted and thresholds are off).
    Anomalous,
    /// The dual thresholds disagree: evidence is ambiguous and the
    /// label abstains from a confident call. Never produced with
    /// thresholds off.
    Uncertain,
    /// Confidently benign.
    Benign,
}

impl ConfidenceTier {
    /// Stable lowercase name (JSON/CSV schema).
    pub fn name(&self) -> &'static str {
        match self {
            ConfidenceTier::Anomalous => "anomalous",
            ConfidenceTier::Uncertain => "uncertain",
            ConfidenceTier::Benign => "benign",
        }
    }

    /// Dense index for tier-population arrays (`[anomalous,
    /// uncertain, benign]`).
    pub fn index(&self) -> usize {
        match self {
            ConfidenceTier::Anomalous => 0,
            ConfidenceTier::Uncertain => 1,
            ConfidenceTier::Benign => 2,
        }
    }
}

/// Confidence carried on every labeled community.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelConfidence {
    /// Anomaly confidence in `[0, 1]` — 1 means every strategy and
    /// all the vote mass agree the community is anomalous.
    pub score: f64,
    /// The abstention tier the score falls in.
    pub tier: ConfidenceTier,
}

impl LabelConfidence {
    /// True unless the label sits in the abstention band.
    pub fn is_confident(&self) -> bool {
        self.tier != ConfidenceTier::Uncertain
    }
}

/// Maps a SCANN decision to its boundary-margin component in
/// `[0, 1]`: 0.5 on the decision boundary, → 1 deep inside the
/// accepted region, → 0 deep inside the rejected region. The
/// relative distance `rel ∈ [0, ∞)` is squashed by `rel/(1+rel)`
/// (∞ → 1). A decision without a distance (the degenerate
/// majority-vote fallback) is treated as boundary-neutral.
pub fn margin_component(scann: &Decision) -> f64 {
    match scann.relative_distance {
        None => 0.5,
        Some(rel) => {
            let m = if rel.is_infinite() {
                1.0
            } else {
                rel / (1.0 + rel)
            };
            if scann.accepted {
                0.5 + m / 2.0
            } else {
                0.5 - m / 2.0
            }
        }
    }
}

/// The confidence score: a convex combination of the
/// strategy-agreement fraction, SCANN's boundary margin, and the raw
/// vote fraction. Each component lies in `[0, 1]` and the weights sum
/// to 1, so the score is in `[0, 1]` and strictly monotone in
/// `strategy_accepts` — pinned by proptests in
/// `tests/confidence_equivalence.rs`.
pub fn confidence_score(strategy_accepts: usize, margin: f64, vote_fraction: f64) -> f64 {
    assert!(
        strategy_accepts <= PAPER_STRATEGIES,
        "at most {PAPER_STRATEGIES} paper strategies can accept, got {strategy_accepts}"
    );
    debug_assert!(
        (0.0..=1.0).contains(&margin),
        "margin {margin} out of range"
    );
    debug_assert!(
        (0.0..=1.0).contains(&vote_fraction),
        "vote fraction {vote_fraction} out of range"
    );
    STRATEGY_WEIGHT * (strategy_accepts as f64 / PAPER_STRATEGIES as f64)
        + MARGIN_WEIGHT * margin
        + VOTE_WEIGHT * vote_fraction
}

/// Scores every community of a vote table and assigns its tier.
///
/// `decisions` are the pipeline's hard decisions for the same table
/// (one per community); with `thresholds = None` they define the tier
/// directly, keeping thresholds-off output byte-identical to hard
/// labels. The score itself never depends on them.
pub fn label_confidences(
    table: &VoteTable,
    decisions: &[Decision],
    thresholds: Option<ConfidenceThresholds>,
) -> Vec<LabelConfidence> {
    assert_eq!(
        decisions.len(),
        table.len(),
        "one decision per community required"
    );
    if table.is_empty() {
        return Vec::new();
    }
    let scann = Scann::default().classify_detailed(table);
    let simple = [
        Average.classify(table),
        Minimum.classify(table),
        Maximum.classify(table),
    ];
    (0..table.len())
        .map(|c| {
            let accepts =
                simple.iter().filter(|d| d[c].accepted).count() + usize::from(scann[c].accepted);
            let margin = margin_component(&scann[c]);
            let vote_fraction = table.vote_count(c) as f64 / N_CONFIGS as f64;
            let score = confidence_score(accepts, margin, vote_fraction);
            let tier = match thresholds {
                None => {
                    if decisions[c].accepted {
                        ConfidenceTier::Anomalous
                    } else {
                        ConfidenceTier::Benign
                    }
                }
                Some(t) => {
                    if score >= t.high {
                        ConfidenceTier::Anomalous
                    } else if score <= t.low {
                        ConfidenceTier::Benign
                    } else {
                        ConfidenceTier::Uncertain
                    }
                }
            };
            LabelConfidence { score, tier }
        })
        .collect()
}

/// Per-community agreement count of the four paper strategies with
/// the given decisions (used by the archive bench's agreement
/// histogram): for community `c`, how many of the four strategies
/// reach the same accept/reject verdict as `decisions[c]`.
pub fn strategy_agreement(table: &VoteTable, decisions: &[Decision]) -> Vec<usize> {
    assert_eq!(decisions.len(), table.len());
    if table.is_empty() {
        return Vec::new();
    }
    let all = [
        Average.classify(table),
        Minimum.classify(table),
        Maximum.classify(table),
        Scann::default().classify_detailed(table),
    ];
    (0..table.len())
        .map(|c| {
            all.iter()
                .filter(|d| d[c].accepted == decisions[c].accepted)
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(on: &[usize]) -> [bool; N_CONFIGS] {
        let mut r = [false; N_CONFIGS];
        for &i in on {
            r[i] = true;
        }
        r
    }

    fn mixed_table() -> VoteTable {
        VoteTable::from_rows(vec![
            row(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]), // unanimous
            row(&[0, 1, 3, 4, 5, 9, 10, 11]),             // strong
            row(&[3, 4, 5, 9, 10, 11]),                   // two detectors
            row(&[0]),                                    // noise
            row(&[]),                                     // silence
        ])
    }

    #[test]
    fn scores_are_in_unit_interval_and_ordered_by_evidence() {
        let t = mixed_table();
        let decisions = Scann::default().classify_detailed(&t);
        let conf = label_confidences(&t, &decisions, None);
        assert_eq!(conf.len(), t.len());
        for lc in &conf {
            assert!((0.0..=1.0).contains(&lc.score), "score {}", lc.score);
        }
        // Unanimous support must outrank silence by a wide margin.
        assert!(conf[0].score > 0.8, "unanimous scored {}", conf[0].score);
        assert!(conf[4].score < 0.2, "silence scored {}", conf[4].score);
        assert!(conf[0].score > conf[2].score && conf[2].score > conf[4].score);
    }

    #[test]
    fn thresholds_off_tier_is_the_hard_decision() {
        let t = mixed_table();
        let decisions = Scann::default().classify_detailed(&t);
        let conf = label_confidences(&t, &decisions, None);
        for (lc, d) in conf.iter().zip(&decisions) {
            let expect = if d.accepted {
                ConfidenceTier::Anomalous
            } else {
                ConfidenceTier::Benign
            };
            assert_eq!(lc.tier, expect);
            assert!(lc.is_confident(), "thresholds-off must never abstain");
        }
    }

    #[test]
    fn dual_thresholds_carve_out_an_uncertain_band() {
        let t = mixed_table();
        let decisions = Scann::default().classify_detailed(&t);
        let conf = label_confidences(&t, &decisions, Some(ConfidenceThresholds::default()));
        assert_eq!(conf[0].tier, ConfidenceTier::Anomalous);
        assert_eq!(conf[4].tier, ConfidenceTier::Benign);
        assert!(
            conf.iter().any(|lc| lc.tier == ConfidenceTier::Uncertain),
            "mixed table should leave something in the abstention band: {conf:?}"
        );
        // Tiers are consistent with the score ordering.
        for lc in &conf {
            match lc.tier {
                ConfidenceTier::Anomalous => assert!(lc.score >= 0.65),
                ConfidenceTier::Benign => assert!(lc.score <= 0.30),
                ConfidenceTier::Uncertain => {
                    assert!(lc.score > 0.30 && lc.score < 0.65)
                }
            }
        }
    }

    #[test]
    fn score_is_monotone_in_strategy_agreement() {
        for k in 0..PAPER_STRATEGIES {
            assert!(
                confidence_score(k + 1, 0.4, 0.25) > confidence_score(k, 0.4, 0.25),
                "not monotone at {k}"
            );
        }
        assert_eq!(confidence_score(0, 0.0, 0.0), 0.0);
        assert_eq!(confidence_score(PAPER_STRATEGIES, 1.0, 1.0), 1.0);
    }

    #[test]
    fn margin_component_is_symmetric_around_the_boundary() {
        let on_boundary = Decision {
            accepted: true,
            relative_distance: Some(0.0),
        };
        assert_eq!(margin_component(&on_boundary), 0.5);
        let deep_accept = Decision {
            accepted: true,
            relative_distance: Some(f64::INFINITY),
        };
        assert_eq!(margin_component(&deep_accept), 1.0);
        let deep_reject = Decision {
            accepted: false,
            relative_distance: Some(f64::INFINITY),
        };
        assert_eq!(margin_component(&deep_reject), 0.0);
        let fallback = Decision::new(true);
        assert_eq!(margin_component(&fallback), 0.5);
    }

    #[test]
    fn degenerate_tables_are_scored_via_the_majority_fallback() {
        // All-identical rows: SCANN falls back to the majority vote
        // with no distances; the margin component must stay neutral
        // and the score finite.
        let t = VoteTable::from_rows(vec![row(&[0, 1, 2, 3, 4, 5, 6, 7]); 3]);
        let decisions = Scann::default().classify_detailed(&t);
        let conf = label_confidences(&t, &decisions, Some(ConfidenceThresholds::default()));
        for lc in &conf {
            assert!(lc.score.is_finite());
            assert!((0.0..=1.0).contains(&lc.score));
        }
    }

    #[test]
    fn strategy_agreement_counts_consensus_with_the_decision() {
        let t = mixed_table();
        let decisions = Scann::default().classify_detailed(&t);
        let agree = strategy_agreement(&t, &decisions);
        assert_eq!(agree.len(), t.len());
        // SCANN itself always agrees with its own decisions.
        assert!(agree.iter().all(|&k| (1..=PAPER_STRATEGIES).contains(&k)));
        // Unanimous and silent rows get full agreement.
        assert_eq!(agree[0], PAPER_STRATEGIES);
        assert_eq!(agree[4], PAPER_STRATEGIES);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn inverted_thresholds_are_rejected() {
        ConfidenceThresholds::new(0.8, 0.2);
    }
}
