//! Vote tables and confidence scores.

use mawilab_detectors::{DetectorKind, Tuning};
use mawilab_similarity::AlarmCommunities;

/// Number of configurations (4 detectors × 3 tunings).
pub const N_CONFIGS: usize = 12;

/// Binary votes of every configuration for every community.
///
/// `vote[c][k]` is true when configuration `k` (detector-major ×
/// tuning-minor, see [`Alarm::config_index`]) reported at least one
/// alarm inside community `c` — the definition of a detector's vote in
/// paper §2.2.2.
///
/// [`Alarm::config_index`]: mawilab_detectors::Alarm::config_index
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteTable {
    votes: Vec<[bool; N_CONFIGS]>,
}

impl VoteTable {
    /// Builds the table from estimated communities.
    pub fn from_communities(communities: &AlarmCommunities) -> Self {
        let mut votes = vec![[false; N_CONFIGS]; communities.community_count()];
        for (i, alarm) in communities.alarms.iter().enumerate() {
            let c = communities.partition.of(i);
            votes[c][alarm.config_index()] = true;
        }
        VoteTable { votes }
    }

    /// Builds a table from raw rows (used by tests and benches).
    pub fn from_rows(rows: Vec<[bool; N_CONFIGS]>) -> Self {
        VoteTable { votes: rows }
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// True when the table has no communities.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Raw vote row of community `c`.
    pub fn row(&self, c: usize) -> &[bool; N_CONFIGS] {
        &self.votes[c]
    }

    /// Whether configuration `(d, t)` voted for community `c`.
    pub fn voted(&self, c: usize, d: DetectorKind, t: Tuning) -> bool {
        self.votes[c][d.index() * 3 + t.index()]
    }

    /// The confidence score `ϕ_d(c)`: the fraction of detector `d`'s
    /// configurations that reported an alarm in community `c`
    /// (paper §2.2.2).
    pub fn confidence(&self, c: usize, d: DetectorKind) -> f64 {
        let hits = Tuning::ALL.iter().filter(|t| self.voted(c, d, **t)).count();
        hits as f64 / Tuning::ALL.len() as f64
    }

    /// Confidence scores of all four detectors for community `c`,
    /// indexed by [`DetectorKind::index`].
    pub fn confidences(&self, c: usize) -> [f64; 4] {
        let mut out = [0.0; 4];
        for d in DetectorKind::ALL {
            out[d.index()] = self.confidence(c, d);
        }
        out
    }

    /// Number of distinct detectors voting for community `c`.
    pub fn detector_count(&self, c: usize) -> usize {
        DetectorKind::ALL
            .iter()
            .filter(|d| self.confidence(c, **d) > 0.0)
            .count()
    }

    /// Total votes (configurations) for community `c`.
    pub fn vote_count(&self, c: usize) -> usize {
        self.votes[c].iter().filter(|&&v| v).count()
    }
}

/// A combiner's verdict on one community.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Accepted (reported anomalous) or rejected (ignored).
    pub accepted: bool,
    /// SCANN's relative distance `(d_rej/d_acc) − 1`; `None` for
    /// strategies that do not produce one. 0 = exactly on the
    /// decision boundary; large = deep in the rejected region
    /// (paper §4.2.3).
    pub relative_distance: Option<f64>,
}

impl Decision {
    /// Plain accept/reject decision without a distance.
    pub fn new(accepted: bool) -> Self {
        Decision {
            accepted,
            relative_distance: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2 community: detectors A, B, C with 3 configs
    /// each; A voted with 2 configs, B with 3, C with 0. We map
    /// A=PCA, B=Gamma, C=Hough.
    fn fig2_row() -> [bool; N_CONFIGS] {
        let mut row = [false; N_CONFIGS];
        row[0] = true; // PCA conservative (A0)
        row[1] = true; // PCA optimal (A1)
        row[3] = true; // Gamma conservative (B0)
        row[4] = true; // Gamma optimal (B1)
        row[5] = true; // Gamma sensitive (B2)
        row
    }

    #[test]
    fn paper_fig2_confidence_scores() {
        let t = VoteTable::from_rows(vec![fig2_row()]);
        assert!((t.confidence(0, DetectorKind::Pca) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.confidence(0, DetectorKind::Gamma), 1.0);
        assert_eq!(t.confidence(0, DetectorKind::Hough), 0.0);
        assert_eq!(t.confidence(0, DetectorKind::Kl), 0.0);
    }

    #[test]
    fn detector_and_vote_counts() {
        let t = VoteTable::from_rows(vec![fig2_row()]);
        assert_eq!(t.detector_count(0), 2);
        assert_eq!(t.vote_count(0), 5);
    }

    #[test]
    fn confidences_are_indexed_by_detector() {
        let t = VoteTable::from_rows(vec![fig2_row()]);
        let c = t.confidences(0);
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[1], 1.0);
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn confidence_is_always_a_valid_fraction() {
        // Exhaustive over all 2^12 rows would be slow; sample a spread.
        for seed in 0..200u16 {
            let mut row = [false; N_CONFIGS];
            for (k, r) in row.iter_mut().enumerate() {
                *r = (seed as usize >> (k % 12)) & 1 == 1;
            }
            let t = VoteTable::from_rows(vec![row]);
            for d in DetectorKind::ALL {
                let phi = t.confidence(0, d);
                assert!((0.0..=1.0).contains(&phi));
                assert!((phi * 3.0).fract().abs() < 1e-9, "ϕ must be a third");
            }
        }
    }

    #[test]
    fn empty_table() {
        let t = VoteTable::from_rows(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
