//! SCANN: combination by correspondence analysis (Merz 1999;
//! paper §2.2.3).
//!
//! SCANN stores every community's configuration votes in an indicator
//! table (one *voted* and one *abstained* column per configuration, so
//! each row carries equal mass), reduces the table by correspondence
//! analysis, and projects two *reference* communities into the reduced
//! space: the unanimously-accepted pattern (every configuration votes)
//! and the unanimously-rejected pattern (none votes). A community's
//! class is the nearer reference point.
//!
//! The dimensionality reduction is what gives SCANN its selectivity:
//! a configuration that votes indiscriminately (or never) contributes
//! no discriminating inertia and is factored out — exactly how the
//! paper explains SCANN ignoring the PCA detector's noise while
//! keeping the KL detector's sparse-but-precise votes (§4.2.3).
//!
//! **Relative distance.** The paper defines `(d_rej/d_acc) − 1` with
//! range `[0, ∞)` and 0 on the decision boundary. Taken literally the
//! formula goes negative for rejected communities, so — consistent
//! with the stated range and Fig. 10's usage — we compute
//! `d_other/d_own − 1`: the distance to the *other* class's reference
//! over the distance to the *assigned* class's reference. 0 = on the
//! boundary; large = deep inside the assigned class.

use crate::strategies::CombinationStrategy;
use crate::votes::{Decision, VoteTable, N_CONFIGS};
use mawilab_linalg::ca::CaDims;
use mawilab_linalg::matrix::distance;
use mawilab_linalg::{CorrespondenceAnalysis, Matrix};

/// The SCANN combination strategy.
#[derive(Debug, Clone, Copy)]
pub struct Scann {
    /// Retained CA dimensionality.
    ///
    /// For a two-class vote table the dominant axis *is* the
    /// accept/reject direction; additional axes encode *which
    /// detector bloc* voted, which blurs nearest-reference
    /// classification. The default keeps only the dominant axis —
    /// the very low dimensionality Merz's formulation operates at.
    pub dims: CaDims,
}

impl Default for Scann {
    fn default() -> Self {
        Scann {
            dims: CaDims::Count(1),
        }
    }
}

impl Scann {
    /// Builds the indicator row of a vote pattern: `[voted, abstained]`
    /// per configuration.
    fn indicator_row(votes: &[bool; N_CONFIGS]) -> Vec<f64> {
        let mut row = Vec::with_capacity(2 * N_CONFIGS);
        for &v in votes {
            row.push(if v { 1.0 } else { 0.0 });
            row.push(if v { 0.0 } else { 1.0 });
        }
        row
    }

    /// Classifies with full diagnostics. Falls back to the majority
    /// vote when the table carries no discriminating inertia (e.g.
    /// every community has the identical vote pattern).
    pub fn classify_detailed(&self, table: &VoteTable) -> Vec<Decision> {
        if table.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f64>> = (0..table.len())
            .map(|c| Self::indicator_row(table.row(c)))
            .collect();
        let t = Matrix::from_rows(&rows);
        let ca = CorrespondenceAnalysis::fit(&t, self.dims);
        let total_inertia: f64 = ca.inertia().iter().sum();
        if total_inertia < 1e-12 {
            // Degenerate: all rows share one profile; no geometry to
            // classify with. Fall back to the raw majority rule.
            return crate::strategies::MajorityVote.classify(table);
        }
        let accept_ref = ca.project_row(&Self::indicator_row(&[true; N_CONFIGS]));
        let reject_ref = ca.project_row(&Self::indicator_row(&[false; N_CONFIGS]));
        (0..table.len())
            .map(|c| {
                let x = ca.row_coords(c);
                let d_acc = distance(x, &accept_ref);
                let d_rej = distance(x, &reject_ref);
                let accepted = d_acc < d_rej;
                let (d_own, d_other) = if accepted {
                    (d_acc, d_rej)
                } else {
                    (d_rej, d_acc)
                };
                let rel = if d_own > 0.0 {
                    d_other / d_own - 1.0
                } else if d_other > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                Decision {
                    accepted,
                    relative_distance: Some(rel),
                }
            })
            .collect()
    }
}

impl CombinationStrategy for Scann {
    fn name(&self) -> &'static str {
        "SCANN"
    }

    fn classify(&self, table: &VoteTable) -> Vec<Decision> {
        self.classify_detailed(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(on: &[usize]) -> [bool; N_CONFIGS] {
        let mut r = [false; N_CONFIGS];
        for &i in on {
            r[i] = true;
        }
        r
    }

    /// A table with clear structure: heavily-voted communities and
    /// barely-voted ones.
    fn structured() -> VoteTable {
        VoteTable::from_rows(vec![
            row(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]), // unanimous
            row(&[0, 1, 3, 4, 5, 9, 10, 11]),             // strong
            row(&[3, 4, 5, 9, 10, 11]),                   // two detectors full
            row(&[0]),                                    // single config
            row(&[6]),                                    // single config
            row(&[]),                                     // silence
        ])
    }

    #[test]
    fn unanimous_accepted_silence_rejected() {
        let d = Scann::default().classify(&structured());
        assert!(d[0].accepted, "unanimous community rejected");
        assert!(!d[5].accepted, "silent community accepted");
    }

    #[test]
    fn strong_support_accepted_weak_rejected() {
        let d = Scann::default().classify(&structured());
        assert!(d[1].accepted, "8-vote community rejected");
        assert!(!d[3].accepted, "1-vote community accepted");
        assert!(!d[4].accepted);
    }

    #[test]
    fn relative_distance_present_and_nonnegative() {
        let d = Scann::default().classify(&structured());
        for (i, dec) in d.iter().enumerate() {
            let rel = dec.relative_distance.expect("SCANN must report distances");
            assert!(rel >= 0.0, "negative relative distance at {i}");
        }
    }

    #[test]
    fn boundary_cases_have_smaller_relative_distance() {
        let d = Scann::default().classify(&structured());
        // The silent community is deeper in "rejected" than the
        // single-vote ones.
        let rel_silent = d[5].relative_distance.unwrap();
        let rel_single = d[3].relative_distance.unwrap();
        assert!(
            rel_silent >= rel_single,
            "silence ({rel_silent}) should be deeper than one vote ({rel_single})"
        );
    }

    #[test]
    fn ignores_an_uninformative_detector() {
        // Hough (configs 6..9) votes for *everything* — it carries no
        // information. Communities differing only in the informative
        // detectors must still be separated.
        let t = VoteTable::from_rows(vec![
            row(&[6, 7, 8, 0, 1, 2, 3, 4, 5, 9, 10, 11]),
            row(&[6, 7, 8, 0, 1, 2, 3, 4, 5]),
            row(&[6, 7, 8]),
            row(&[6, 7, 8]),
            row(&[6, 7, 8]),
            row(&[6, 7, 8]),
        ]);
        let d = Scann::default().classify(&t);
        assert!(d[0].accepted);
        assert!(d[1].accepted);
        assert!(
            !d[2].accepted,
            "Hough-only community accepted despite Hough being noise"
        );
    }

    /// A realistic mixed table: unanimous communities, two strong
    /// blocs anchored by KL, single-config noise, KL-exclusive
    /// communities.
    fn realistic() -> VoteTable {
        let mut rows = Vec::new();
        for _ in 0..5 {
            rows.push(row(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        }
        for _ in 0..10 {
            rows.push(row(&[3, 4, 5, 9, 10, 11])); // Gamma+KL
        }
        for _ in 0..10 {
            rows.push(row(&[2, 6, 7, 8, 9, 10, 11])); // Hough+KL (+PCA sens.)
        }
        for _ in 0..15 {
            rows.push(row(&[2])); // PCA-sensitive noise
        }
        for _ in 0..10 {
            rows.push(row(&[1, 2])); // PCA noise
        }
        for _ in 0..8 {
            rows.push(row(&[8])); // Hough-sensitive noise
        }
        for _ in 0..5 {
            rows.push(row(&[9, 10, 11])); // KL-exclusive
        }
        VoteTable::from_rows(rows)
    }

    #[test]
    fn realistic_table_separates_strong_from_noise() {
        let t = realistic();
        let d = Scann::default().classify(&t);
        assert!(
            (0..25).all(|c| d[c].accepted),
            "strong communities rejected"
        );
        assert!((25..58).all(|c| !d[c].accepted), "noise accepted");
    }

    #[test]
    fn exclusive_reliable_detector_sits_near_the_boundary() {
        // §4.2.3/§5: communities reported only by the accurate KL
        // detector are either accepted, or rejected with a *small*
        // relative distance (→ Suspicious in the taxonomy), while
        // single-config noise is rejected deep in the rejected region
        // (→ Notice). The average rule cannot express this at all: it
        // inherently rejects every single-detector community.
        let t = realistic();
        let d = Scann::default().classify(&t);
        let kl_rel: f64 = (58..63)
            .map(|c| d[c].relative_distance.unwrap())
            .fold(0.0, f64::max);
        let noise_rel: f64 = (25..58)
            .filter(|&c| !d[c].accepted)
            .map(|c| d[c].relative_distance.unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (58..63).all(|c| d[c].accepted) || kl_rel < noise_rel,
            "KL-exclusive (rel {kl_rel}) not better placed than noise (rel {noise_rel})"
        );
        // The average strategy rejects all single-detector communities
        // by construction (max ϕ contribution = 1/4).
        let avg = crate::strategies::Average.classify(&t);
        assert!((58..63).all(|c| !avg[c].accepted));
        assert!((25..58).all(|c| !avg[c].accepted));
    }

    #[test]
    fn degenerate_identical_rows_fall_back_to_majority() {
        let t = VoteTable::from_rows(vec![row(&[0, 1, 2, 3, 4, 5, 6, 7]); 4]);
        let d = Scann::default().classify(&t);
        // 8 of 12 votes → majority accepts.
        assert!(d.iter().all(|x| x.accepted));
        let t2 = VoteTable::from_rows(vec![row(&[0]); 4]);
        let d2 = Scann::default().classify(&t2);
        assert!(d2.iter().all(|x| !x.accepted));
    }

    #[test]
    fn empty_table_is_empty_output() {
        assert!(Scann::default()
            .classify(&VoteTable::from_rows(vec![]))
            .is_empty());
    }

    #[test]
    fn single_community_tables_do_not_panic() {
        for votes in [row(&[]), row(&[0, 1, 2]), row(&(0..12).collect::<Vec<_>>())] {
            let t = VoteTable::from_rows(vec![votes]);
            let d = Scann::default().classify(&t);
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn deterministic() {
        let a = Scann::default().classify(&structured());
        let b = Scann::default().classify(&structured());
        assert_eq!(a, b);
    }
}
