//! SCANN: combination by correspondence analysis (Merz 1999;
//! paper §2.2.3).
//!
//! SCANN stores every community's configuration votes in an indicator
//! table (one *voted* and one *abstained* column per configuration, so
//! each row carries equal mass), reduces the table by correspondence
//! analysis, and projects two *reference* communities into the reduced
//! space: the unanimously-accepted pattern (every configuration votes)
//! and the unanimously-rejected pattern (none votes). A community's
//! class is the nearer reference point.
//!
//! The dimensionality reduction is what gives SCANN its selectivity:
//! a configuration that votes indiscriminately (or never) contributes
//! no discriminating inertia and is factored out — exactly how the
//! paper explains SCANN ignoring the PCA detector's noise while
//! keeping the KL detector's sparse-but-precise votes (§4.2.3).
//!
//! **Relative distance.** The paper defines `(d_rej/d_acc) − 1` with
//! range `[0, ∞)` and 0 on the decision boundary. Taken literally the
//! formula goes negative for rejected communities, so — consistent
//! with the stated range and Fig. 10's usage — we compute
//! `d_other/d_own − 1`: the distance to the *other* class's reference
//! over the distance to the *assigned* class's reference. 0 = on the
//! boundary; large = deep inside the assigned class.
//!
//! **Convergence.** Merz's SCANN iterates: after the first CA round
//! assigns classes, the indicator table is *augmented* with one
//! accepted/rejected membership column pair, CA is re-fit, and the
//! communities are re-classified against the augmented references —
//! until the class assignment is a fixed point (or [`SCANN_MAX_ROUNDS`]
//! caps a cycle). The single-round path is retained as
//! [`Scann::classify_single_round`], the equivalence oracle pinned in
//! `lint/oracles.toml`: `max_rounds = 1` is byte-identical to it.

use crate::strategies::CombinationStrategy;
use crate::votes::{Decision, VoteTable, N_CONFIGS};
use mawilab_linalg::ca::CaDims;
use mawilab_linalg::matrix::distance;
use mawilab_linalg::{CorrespondenceAnalysis, Matrix};

/// Iteration cap for the convergence loop: boundary communities can
/// oscillate between the two references, so the re-fit loop needs a
/// deterministic stop. Clean tables converge in 2–3 rounds.
pub const SCANN_MAX_ROUNDS: usize = 8;

/// The SCANN combination strategy.
#[derive(Debug, Clone, Copy)]
pub struct Scann {
    /// Retained CA dimensionality.
    ///
    /// For a two-class vote table the dominant axis *is* the
    /// accept/reject direction; additional axes encode *which
    /// detector bloc* voted, which blurs nearest-reference
    /// classification. The default keeps only the dominant axis —
    /// the very low dimensionality Merz's formulation operates at.
    pub dims: CaDims,
    /// Upper bound on CA re-fit rounds. `1` disables the convergence
    /// loop entirely and reproduces the single-round oracle byte for
    /// byte.
    pub max_rounds: usize,
}

impl Default for Scann {
    fn default() -> Self {
        Scann {
            dims: CaDims::Count(1),
            max_rounds: SCANN_MAX_ROUNDS,
        }
    }
}

impl Scann {
    /// Builds the indicator row of a vote pattern: `[voted, abstained]`
    /// per configuration.
    fn indicator_row(votes: &[bool; N_CONFIGS]) -> Vec<f64> {
        let mut row = Vec::with_capacity(2 * N_CONFIGS);
        for &v in votes {
            row.push(if v { 1.0 } else { 0.0 });
            row.push(if v { 0.0 } else { 1.0 });
        }
        row
    }

    /// Augments an indicator row with the previous round's class
    /// membership as one more `[accepted, rejected]` column pair —
    /// Merz's feedback step: the next CA round sees the current
    /// assignment as an extra (equal-mass) categorical variable.
    fn augmented_row(votes: &[bool; N_CONFIGS], accepted: bool) -> Vec<f64> {
        let mut row = Self::indicator_row(votes);
        row.push(if accepted { 1.0 } else { 0.0 });
        row.push(if accepted { 0.0 } else { 1.0 });
        row
    }

    /// Nearest-reference classification of every table row in a fitted
    /// CA space.
    fn classify_in_space(
        table: &VoteTable,
        ca: &CorrespondenceAnalysis,
        accept_ref: &[f64],
        reject_ref: &[f64],
    ) -> Vec<Decision> {
        (0..table.len())
            .map(|c| {
                let x = ca.row_coords(c);
                let d_acc = distance(x, accept_ref);
                let d_rej = distance(x, reject_ref);
                let accepted = d_acc < d_rej;
                let (d_own, d_other) = if accepted {
                    (d_acc, d_rej)
                } else {
                    (d_rej, d_acc)
                };
                let rel = if d_own > 0.0 {
                    d_other / d_own - 1.0
                } else if d_other > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                Decision {
                    accepted,
                    relative_distance: Some(rel),
                }
            })
            .collect()
    }

    /// One CA round over the raw indicator table — the seed
    /// implementation, kept verbatim as the equivalence oracle for the
    /// convergence loop (`max_rounds = 1` ≡ this, byte for byte).
    /// Falls back to the majority vote when the table carries no
    /// discriminating inertia (e.g. every community has the identical
    /// vote pattern).
    pub fn classify_single_round(&self, table: &VoteTable) -> Vec<Decision> {
        if table.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f64>> = (0..table.len())
            .map(|c| Self::indicator_row(table.row(c)))
            .collect();
        let t = Matrix::from_rows(&rows);
        let ca = CorrespondenceAnalysis::fit(&t, self.dims);
        let total_inertia: f64 = ca.inertia().iter().sum();
        if total_inertia < 1e-12 {
            // Degenerate: all rows share one profile; no geometry to
            // classify with. Fall back to the raw majority rule.
            return crate::strategies::MajorityVote.classify(table);
        }
        let accept_ref = ca.project_row(&Self::indicator_row(&[true; N_CONFIGS]));
        let reject_ref = ca.project_row(&Self::indicator_row(&[false; N_CONFIGS]));
        Self::classify_in_space(table, &ca, &accept_ref, &reject_ref)
    }

    /// Classifies with full diagnostics, iterating CA re-fits on the
    /// class-augmented table until the assignment is stable (Merz's
    /// SCANN; see module docs). Relative distances come from the
    /// final round's geometry.
    pub fn classify_detailed(&self, table: &VoteTable) -> Vec<Decision> {
        assert!(self.max_rounds >= 1, "SCANN needs at least one CA round");
        let mut decisions = self.classify_single_round(table);
        if decisions.is_empty() || decisions[0].relative_distance.is_none() {
            // Empty table, or the majority-vote fallback fired: there
            // is no CA geometry to iterate on.
            return decisions;
        }
        for _ in 1..self.max_rounds {
            let rows: Vec<Vec<f64>> = (0..table.len())
                .map(|c| Self::augmented_row(table.row(c), decisions[c].accepted))
                .collect();
            let t = Matrix::from_rows(&rows);
            let ca = CorrespondenceAnalysis::fit(&t, self.dims);
            if ca.inertia().iter().sum::<f64>() < 1e-12 {
                // The augmented table lost its geometry (cannot happen
                // unless the class columns are uniform AND the votes
                // are); keep the last well-defined round.
                break;
            }
            let accept_ref = ca.project_row(&Self::augmented_row(&[true; N_CONFIGS], true));
            let reject_ref = ca.project_row(&Self::augmented_row(&[false; N_CONFIGS], false));
            let next = Self::classify_in_space(table, &ca, &accept_ref, &reject_ref);
            let stable = next
                .iter()
                .zip(&decisions)
                .all(|(n, p)| n.accepted == p.accepted);
            decisions = next;
            if stable {
                break;
            }
        }
        decisions
    }
}

impl CombinationStrategy for Scann {
    fn name(&self) -> &'static str {
        "SCANN"
    }

    fn classify(&self, table: &VoteTable) -> Vec<Decision> {
        self.classify_detailed(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(on: &[usize]) -> [bool; N_CONFIGS] {
        let mut r = [false; N_CONFIGS];
        for &i in on {
            r[i] = true;
        }
        r
    }

    /// A table with clear structure: heavily-voted communities and
    /// barely-voted ones.
    fn structured() -> VoteTable {
        VoteTable::from_rows(vec![
            row(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]), // unanimous
            row(&[0, 1, 3, 4, 5, 9, 10, 11]),             // strong
            row(&[3, 4, 5, 9, 10, 11]),                   // two detectors full
            row(&[0]),                                    // single config
            row(&[6]),                                    // single config
            row(&[]),                                     // silence
        ])
    }

    #[test]
    fn unanimous_accepted_silence_rejected() {
        let d = Scann::default().classify(&structured());
        assert!(d[0].accepted, "unanimous community rejected");
        assert!(!d[5].accepted, "silent community accepted");
    }

    #[test]
    fn strong_support_accepted_weak_rejected() {
        let d = Scann::default().classify(&structured());
        assert!(d[1].accepted, "8-vote community rejected");
        assert!(!d[3].accepted, "1-vote community accepted");
        assert!(!d[4].accepted);
    }

    #[test]
    fn relative_distance_present_and_nonnegative() {
        let d = Scann::default().classify(&structured());
        for (i, dec) in d.iter().enumerate() {
            let rel = dec.relative_distance.expect("SCANN must report distances");
            assert!(rel >= 0.0, "negative relative distance at {i}");
        }
    }

    #[test]
    fn boundary_cases_have_smaller_relative_distance() {
        let d = Scann::default().classify(&structured());
        // The silent community is deeper in "rejected" than the
        // single-vote ones.
        let rel_silent = d[5].relative_distance.unwrap();
        let rel_single = d[3].relative_distance.unwrap();
        assert!(
            rel_silent >= rel_single,
            "silence ({rel_silent}) should be deeper than one vote ({rel_single})"
        );
    }

    #[test]
    fn ignores_an_uninformative_detector() {
        // Hough (configs 6..9) votes for *everything* — it carries no
        // information. Communities differing only in the informative
        // detectors must still be separated.
        let t = VoteTable::from_rows(vec![
            row(&[6, 7, 8, 0, 1, 2, 3, 4, 5, 9, 10, 11]),
            row(&[6, 7, 8, 0, 1, 2, 3, 4, 5]),
            row(&[6, 7, 8]),
            row(&[6, 7, 8]),
            row(&[6, 7, 8]),
            row(&[6, 7, 8]),
        ]);
        let d = Scann::default().classify(&t);
        assert!(d[0].accepted);
        assert!(d[1].accepted);
        assert!(
            !d[2].accepted,
            "Hough-only community accepted despite Hough being noise"
        );
    }

    /// A realistic mixed table: unanimous communities, two strong
    /// blocs anchored by KL, single-config noise, KL-exclusive
    /// communities.
    fn realistic() -> VoteTable {
        let mut rows = Vec::new();
        for _ in 0..5 {
            rows.push(row(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        }
        for _ in 0..10 {
            rows.push(row(&[3, 4, 5, 9, 10, 11])); // Gamma+KL
        }
        for _ in 0..10 {
            rows.push(row(&[2, 6, 7, 8, 9, 10, 11])); // Hough+KL (+PCA sens.)
        }
        for _ in 0..15 {
            rows.push(row(&[2])); // PCA-sensitive noise
        }
        for _ in 0..10 {
            rows.push(row(&[1, 2])); // PCA noise
        }
        for _ in 0..8 {
            rows.push(row(&[8])); // Hough-sensitive noise
        }
        for _ in 0..5 {
            rows.push(row(&[9, 10, 11])); // KL-exclusive
        }
        VoteTable::from_rows(rows)
    }

    #[test]
    fn realistic_table_separates_strong_from_noise() {
        let t = realistic();
        let d = Scann::default().classify(&t);
        assert!(
            (0..25).all(|c| d[c].accepted),
            "strong communities rejected"
        );
        assert!((25..58).all(|c| !d[c].accepted), "noise accepted");
    }

    #[test]
    fn exclusive_reliable_detector_sits_near_the_boundary() {
        // §4.2.3/§5: communities reported only by the accurate KL
        // detector are either accepted, or rejected with a *small*
        // relative distance (→ Suspicious in the taxonomy), while
        // single-config noise is rejected deep in the rejected region
        // (→ Notice). The average rule cannot express this at all: it
        // inherently rejects every single-detector community.
        let t = realistic();
        let d = Scann::default().classify(&t);
        let kl_rel: f64 = (58..63)
            .map(|c| d[c].relative_distance.unwrap())
            .fold(0.0, f64::max);
        let noise_rel: f64 = (25..58)
            .filter(|&c| !d[c].accepted)
            .map(|c| d[c].relative_distance.unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (58..63).all(|c| d[c].accepted) || kl_rel < noise_rel,
            "KL-exclusive (rel {kl_rel}) not better placed than noise (rel {noise_rel})"
        );
        // The average strategy rejects all single-detector communities
        // by construction (max ϕ contribution = 1/4).
        let avg = crate::strategies::Average.classify(&t);
        assert!((58..63).all(|c| !avg[c].accepted));
        assert!((25..58).all(|c| !avg[c].accepted));
    }

    #[test]
    fn degenerate_identical_rows_fall_back_to_majority() {
        let t = VoteTable::from_rows(vec![row(&[0, 1, 2, 3, 4, 5, 6, 7]); 4]);
        let d = Scann::default().classify(&t);
        // 8 of 12 votes → majority accepts.
        assert!(d.iter().all(|x| x.accepted));
        let t2 = VoteTable::from_rows(vec![row(&[0]); 4]);
        let d2 = Scann::default().classify(&t2);
        assert!(d2.iter().all(|x| !x.accepted));
    }

    #[test]
    fn empty_table_is_empty_output() {
        assert!(Scann::default()
            .classify(&VoteTable::from_rows(vec![]))
            .is_empty());
    }

    #[test]
    fn single_community_tables_do_not_panic() {
        for votes in [row(&[]), row(&[0, 1, 2]), row(&(0..12).collect::<Vec<_>>())] {
            let t = VoteTable::from_rows(vec![votes]);
            let d = Scann::default().classify(&t);
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn deterministic() {
        let a = Scann::default().classify(&structured());
        let b = Scann::default().classify(&structured());
        assert_eq!(a, b);
    }

    #[test]
    fn one_round_cap_is_the_single_round_oracle() {
        // The oracle contract registered in lint/oracles.toml:
        // `max_rounds = 1` must reproduce the seed single-round path
        // byte for byte, on every table shape including degenerate
        // fallbacks.
        let capped = Scann {
            max_rounds: 1,
            ..Scann::default()
        };
        for t in [
            structured(),
            realistic(),
            VoteTable::from_rows(vec![row(&[0, 1, 2]); 4]),
            VoteTable::from_rows(vec![]),
            VoteTable::from_rows(vec![row(&[0, 5, 9])]),
        ] {
            assert_eq!(
                capped.classify_detailed(&t),
                capped.classify_single_round(&t)
            );
        }
    }

    #[test]
    fn convergence_reaches_a_fixed_point() {
        // Re-classifying with the converged assignment as the class
        // augmentation must reproduce that assignment: running with a
        // doubled round cap changes nothing.
        for t in [structured(), realistic()] {
            let converged = Scann::default().classify_detailed(&t);
            let extra = Scann {
                max_rounds: 2 * SCANN_MAX_ROUNDS,
                ..Scann::default()
            }
            .classify_detailed(&t);
            assert_eq!(converged, extra, "assignment not a fixed point");
        }
    }

    #[test]
    fn convergence_keeps_the_clean_separation() {
        // On tables with clear structure the iterated assignment must
        // agree with the single-round one — the loop sharpens
        // geometry, it must not invent flips where separation is
        // unambiguous.
        let t = structured();
        let single = Scann::default().classify_single_round(&t);
        let converged = Scann::default().classify_detailed(&t);
        for (c, (s, i)) in single.iter().zip(&converged).enumerate() {
            assert_eq!(s.accepted, i.accepted, "community {c} flipped");
        }
    }
}
