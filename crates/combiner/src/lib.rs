//! # mawilab-combiner
//!
//! The combiner — the paper's second main ingredient (§2.2).
//!
//! Given the communities produced by the similarity estimator, the
//! combiner decides which communities are *accepted* (reported as
//! anomalous) and which are *rejected*. Detector outputs are treated
//! as votes:
//!
//! * [`votes`] — the per-community **vote table** over the 12
//!   configurations, and the per-detector **confidence scores**
//!   `ϕ_d(c) = φ_d(c)/T_d` (paper §2.2.2, Fig. 2 worked example);
//! * [`strategies`] — the unsupervised aggregation strategies:
//!   **average**, **minimum**, **maximum** over confidence scores with
//!   the 0.5 acceptance threshold (§2.2.3), plus the classical
//!   **majority vote** (§2.2.1, kept as a baseline extension);
//! * [`scann`] — **SCANN** (Merz 1999): correspondence analysis of the
//!   binary vote table iterated to a stable class assignment,
//!   nearest-unanimous-reference classification, and the *relative
//!   distance* `(d_rej/d_acc) − 1` that drives the MAWILab taxonomy's
//!   Suspicious/Notice split (§4.2.3, Fig. 10);
//! * [`confidence`] — per-label **confidence scores** folded from the
//!   evidence above (strategy agreement, SCANN margin, vote mass) and
//!   the dual-threshold **abstention tier**
//!   (anomalous/uncertain/benign).

#![forbid(unsafe_code)]

pub mod confidence;
pub mod scann;
pub mod strategies;
pub mod votes;

pub use confidence::{
    confidence_score, label_confidences, margin_component, strategy_agreement,
    ConfidenceThresholds, ConfidenceTier, LabelConfidence,
};
pub use scann::{Scann, SCANN_MAX_ROUNDS};
pub use strategies::{Average, CombinationStrategy, MajorityVote, Maximum, Minimum};
pub use votes::{Decision, VoteTable};
