//! # mawilab-exec
//!
//! The workspace's single fan-out idiom: scoped-thread data
//! parallelism with one global thread-count policy.
//!
//! Every parallel stage of the pipeline — detector execution, the
//! sharded similarity-graph build, the Louvain proposal scans — goes
//! through [`par_map`] / [`par_for_each_mut`], so one environment
//! variable controls them all:
//!
//! * `MAWILAB_THREADS=<n>` caps the worker count (`1` forces fully
//!   sequential, in-line execution);
//! * unset (or unparsable), the hardware parallelism reported by
//!   [`std::thread::available_parallelism`] is used.
//!
//! All helpers are **deterministic**: results are returned in input
//! order regardless of the number of workers, so any stage built on
//! them produces identical output at any thread count. There is no
//! long-lived pool — workers are `std::thread::scope` threads, which
//! keeps the helpers dependency-free and lets them borrow from the
//! caller's stack.
//!
//! ## One fan-out level (the shared-pool policy)
//!
//! Helpers called from *inside* an exec worker run **inline** on that
//! worker. The outermost fan-out therefore owns the whole thread
//! budget: a day-level driver that maps whole pipelines over N days
//! uses `thread_count()` workers total, not `thread_count()` workers
//! each running another `thread_count()` detector/graph workers —
//! nesting never multiplies into `threads²` live threads. Because
//! every helper is deterministic at any worker count, inlining a
//! nested stage cannot change its output, only its schedule.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// True on threads spawned by these helpers: nested fan-outs from
    /// such a thread run inline instead of spawning another level.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as an exec worker for its lifetime;
/// restores the previous state on drop (the inline path reuses the
/// caller's thread, which may itself already be a worker).
struct WorkerGuard {
    was: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let was = IN_WORKER.with(|f| f.replace(true));
        WorkerGuard { was }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_WORKER.with(|f| f.set(was));
    }
}

/// True when the calling thread is one of these helpers' workers — a
/// fan-out started here would run inline (see the module docs on the
/// one-fan-out-level policy).
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Worker count for a fan-out over `n_items` under `cap`: the global
/// [`thread_count`] policy at the top level, always 1 (inline) inside
/// an existing worker.
fn fanout_width(n_items: usize, cap: usize) -> usize {
    if in_worker() {
        1
    } else {
        thread_count().min(cap).min(n_items)
    }
}

/// Number of worker threads the fan-out helpers use: the
/// `MAWILAB_THREADS` override when set to a positive integer,
/// otherwise the hardware parallelism (1 when unknown).
pub fn thread_count() -> usize {
    match std::env::var("MAWILAB_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => hardware_parallelism(),
        },
        Err(_) => hardware_parallelism(),
    }
}

fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// returning the results in input order.
///
/// Work is distributed by atomic index pulling, so uneven per-item
/// cost balances automatically. With one worker (or one item) the map
/// runs in-line on the caller's thread — no spawn overhead on the
/// sequential path.
///
/// # Panics
/// Propagates a panic from `f` (the worker's panic aborts the map).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_capped(items, usize::MAX, f)
}

/// [`par_map`] with an explicit worker cap (`min(thread_count(),
/// cap)`). For outer-level drivers whose per-item work itself fans
/// out through these helpers — e.g. the bench day harness runs whole
/// pipelines per item — an uncapped outer map would multiply the two
/// levels into `threads²` live workers on big machines.
///
/// # Panics
/// Propagates a panic from `f` (the worker's panic aborts the map).
pub fn par_map_capped<T, R, F>(items: &[T], cap: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = fanout_width(items.len(), cap);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let _guard = WorkerGuard::enter();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    for (i, r) in parts.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("par_map worker skipped an item"))
        .collect()
}

/// Maps `f` over mutable items, splitting the slice into up to
/// [`thread_count`] contiguous chunks (one scoped thread per chunk);
/// results come back in input order. With one worker the map runs
/// in-line.
///
/// # Panics
/// Propagates a panic from `f`.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let workers = fanout_width(items.len(), usize::MAX);
    if workers <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let parts: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|part| {
                s.spawn(move || {
                    let _guard = WorkerGuard::enter();
                    part.iter_mut().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map_mut worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Runs `f` on every element of `items` in place, splitting the slice
/// into up to [`thread_count`] contiguous chunks (one scoped thread
/// per chunk). With one worker the loop runs in-line.
///
/// # Panics
/// Propagates a panic from `f`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    par_for_each_mut_capped(items, usize::MAX, f)
}

/// [`par_for_each_mut`] with an explicit worker cap
/// (`min(thread_count(), cap)`); `cap == 1` runs fully in-line. Lets
/// callers sweep effective worker counts (e.g. the generation
/// throughput benchmark) without mutating the process-wide
/// `MAWILAB_THREADS` variable.
///
/// # Panics
/// Propagates a panic from `f`.
pub fn par_for_each_mut_capped<T, F>(items: &mut [T], cap: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = fanout_width(items.len(), cap);
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        for part in items.chunks_mut(chunk) {
            s.spawn(move || {
                let _guard = WorkerGuard::enter();
                for item in part {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_preserves_order() {
        let mut items: Vec<usize> = (0..301).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x * 10
        });
        assert_eq!(out, (1..=301).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(items[0], 1);
    }

    #[test]
    fn par_for_each_mut_touches_every_item() {
        let mut items: Vec<usize> = vec![0; 257];
        par_for_each_mut(&mut items, |x| *x += 1);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_for_each_mut_capped_is_inline_at_cap_one() {
        let me = std::thread::current().id();
        let mut items: Vec<usize> = vec![0; 64];
        par_for_each_mut_capped(&mut items, 1, |x| {
            assert_eq!(std::thread::current().id(), me, "cap 1 must not spawn");
            *x += 1;
        });
        assert!(items.iter().all(|&x| x == 1));
        // Larger caps still touch everything exactly once.
        for cap in [2, 5, usize::MAX] {
            let mut items: Vec<usize> = vec![0; 129];
            par_for_each_mut_capped(&mut items, cap, |x| *x += 1);
            assert!(items.iter().all(|&x| x == 1), "cap {cap}");
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_fanout_runs_inline() {
        // From inside a worker context, every helper must stay on the
        // calling thread — one fan-out level, no threads² nesting.
        let _guard = WorkerGuard::enter();
        let me = std::thread::current().id();
        let items: Vec<u32> = (0..64).collect();
        let ids = par_map(&items, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == me));
        let mut muts: Vec<u32> = (0..64).collect();
        let ids = par_map_mut(&mut muts, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == me));
        assert!(in_worker());
    }

    #[test]
    fn worker_guard_restores_state() {
        assert!(!in_worker());
        {
            let _outer = WorkerGuard::enter();
            assert!(in_worker());
            {
                let _inner = WorkerGuard::enter();
                assert!(in_worker());
            }
            assert!(in_worker(), "inner guard must restore, not clear");
        }
        assert!(!in_worker());
    }

    #[test]
    fn nested_results_are_still_correct() {
        let outer: Vec<usize> = (0..9).collect();
        let got = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..100).collect();
            par_map(&inner, |&j| i * j).iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..9).map(|i| i * 4950).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        // The determinism contract: same output at any worker count.
        // Swept via the cap (not the env override — mutating the
        // process environment would race with sibling tests; the
        // env path itself is covered by tests/thread_determinism.rs,
        // isolated in its own binary).
        let items: Vec<u64> = (0..503).map(|i| i * 17 % 101).collect();
        let expect: Vec<u64> = items.iter().map(|&i| i * i).collect();
        for cap in [1, 2, 7, usize::MAX] {
            assert_eq!(par_map_capped(&items, cap, |&i| i * i), expect, "cap {cap}");
        }
    }
}
