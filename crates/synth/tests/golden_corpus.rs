//! Golden-corpus regression pins.
//!
//! Every committed BENCH baseline and every seeded test in the
//! workspace sits on top of the synthetic corpus. A refactor of the
//! generator that silently shifts the corpus would invalidate all of
//! them at once while every structural test stays green — so the
//! corpus itself is pinned: stable FNV-1a content hashes over the
//! full packet tuples + truth tags of three (seed, date) archive
//! days, including the worm-onset day of each epoch so the
//! `worm_intensity` wiring is pinned too.
//!
//! If an intentional generator change lands (it rewrites the corpus
//! by design — like the sharded engine did), regenerate the constants
//! with `cargo test -p mawilab-synth --test golden_corpus -- --nocapture`
//! after setting `PRINT_GOLDEN=1`, and say so in the changelog.

use mawilab_model::TraceDate;
use mawilab_synth::{AnomalyKind, ArchiveConfig, ArchiveSimulator, LabeledTrace};

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }
}

/// Content hash of a labeled day: every packet tuple in stream order,
/// interleaved with its truth tag.
fn corpus_hash(lt: &LabeledTrace) -> u64 {
    let mut h = Fnv::new();
    h.u64(lt.trace.len() as u64);
    for (p, tag) in lt.trace.packets.iter().zip(lt.truth.tags()) {
        h.u64(p.ts_us);
        h.write(&p.src.octets());
        h.write(&p.dst.octets());
        h.u16(p.sport);
        h.u16(p.dport);
        h.u16(p.len);
        h.write(&[p.proto.number(), p.flags.0]);
        h.u64(match tag {
            Some(t) => *t as u64 + 1,
            None => 0,
        });
    }
    h.0
}

fn sim() -> ArchiveSimulator {
    ArchiveSimulator::new(ArchiveConfig {
        scale: 0.3,
        ..Default::default()
    })
}

/// The pinned (date, packet count, hash) triples. Counts make hash
/// mismatches easier to diagnose (volume shift vs content shift).
const GOLDEN: [(u16, u8, u8, usize, u64); 3] = [
    // Quiet 18 Mbps baseline, no worm epochs.
    (2002, 3, 5, 6974, 0x86c2_3d68_6eb6_ec3e),
    // Blaster onset day.
    (2003, 8, 12, 8516, 0xffdd_bafe_299f_8355),
    // Sasser onset day.
    (2004, 5, 10, 9517, 0x30a2_4ae1_1f0a_be9e),
];

#[test]
fn corpus_hashes_are_pinned() {
    for &(y, m, d, want_count, want_hash) in &GOLDEN {
        let date = TraceDate::new(y, m, d);
        let lt = sim().generate(date);
        let hash = corpus_hash(&lt);
        if std::env::var("PRINT_GOLDEN").is_ok() {
            println!("({y}, {m}, {d}, {}, 0x{hash:016x}),", lt.trace.len());
            continue;
        }
        assert_eq!(
            lt.trace.len(),
            want_count,
            "{date}: packet count shifted — the corpus under every \
             committed baseline changed"
        );
        assert_eq!(
            hash, want_hash,
            "{date}: corpus content hash shifted — the corpus under \
             every committed baseline changed"
        );
    }
}

#[test]
fn worm_onset_days_inject_their_worms() {
    // Pins the `worm_intensity` wiring behind the golden hashes: the
    // onset-day corpora above must actually contain their epoch's worm
    // traffic, with tagged packets on the scan port.
    for (date, kind, port) in [
        (TraceDate::new(2003, 8, 12), AnomalyKind::BlasterWorm, 135),
        (TraceDate::new(2004, 5, 10), AnomalyKind::SasserWorm, 445),
    ] {
        let lt = sim().generate(date);
        let ids: Vec<u32> = lt
            .truth
            .anomalies()
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.id)
            .collect();
        assert!(!ids.is_empty(), "{date}: no {kind:?} injected on onset day");
        let tagged_on_port = lt
            .trace
            .packets
            .iter()
            .zip(lt.truth.tags())
            .filter(|(p, tag)| p.dport == port && matches!(tag, Some(t) if ids.contains(t)))
            .count();
        assert!(
            tagged_on_port > 50,
            "{date}: only {tagged_on_port} tagged {kind:?} scan packets"
        );
    }
}

#[test]
fn quiet_day_has_no_worms() {
    let lt = sim().generate(TraceDate::new(2002, 3, 5));
    assert!(lt
        .truth
        .anomalies()
        .iter()
        .all(|a| !matches!(a.kind, AnomalyKind::BlasterWorm | AnomalyKind::SasserWorm)));
}
