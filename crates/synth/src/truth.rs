//! Ground-truth bookkeeping for synthetic traces.
//!
//! The real MAWI archive has no ground truth — that absence is the
//! paper's whole motivation. The synthetic substitute records, for
//! every packet, which injected anomaly (if any) produced it. The
//! evaluation crate uses this to score detectors and combination
//! strategies with real precision/recall, something the original
//! authors could only approximate through the Table-1 heuristics.

use crate::anomalies::AnomalyKind;
use mawilab_model::{TimeWindow, Trace, TrafficRule};
use std::fmt;

/// One injected anomaly.
#[derive(Debug, Clone)]
pub struct AnomalyRecord {
    /// Tag carried by this anomaly's packets (1-based; 0 = background).
    pub id: u32,
    /// Anomaly class.
    pub kind: AnomalyKind,
    /// Time span of the injected packets.
    pub window: TimeWindow,
    /// Number of packets injected.
    pub packet_count: usize,
    /// Primary feature pattern describing the anomaly (the pattern an
    /// ideal detector would report).
    pub rule: TrafficRule,
}

impl fmt::Display for AnomalyRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {:?} {} pkts {} {}",
            self.id, self.kind, self.packet_count, self.window, self.rule
        )
    }
}

/// Ground truth aligned with a trace's packet order.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    tags: Vec<Option<u32>>,
    anomalies: Vec<AnomalyRecord>,
}

impl GroundTruth {
    /// Builds ground truth from per-packet tags and anomaly records.
    pub fn new(tags: Vec<Option<u32>>, anomalies: Vec<AnomalyRecord>) -> Self {
        GroundTruth { tags, anomalies }
    }

    /// Per-packet anomaly tag, aligned with `trace.packets`.
    pub fn tags(&self) -> &[Option<u32>] {
        &self.tags
    }

    /// All injected anomalies.
    pub fn anomalies(&self) -> &[AnomalyRecord] {
        &self.anomalies
    }

    /// Record of anomaly `id`, if any.
    pub fn anomaly(&self, id: u32) -> Option<&AnomalyRecord> {
        self.anomalies.iter().find(|a| a.id == id)
    }

    /// Packet indices produced by anomaly `id`.
    pub fn packets_of(&self, id: u32) -> Vec<usize> {
        self.tags
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == Some(id)).then_some(i))
            .collect()
    }

    /// Fraction of packets that belong to any anomaly.
    pub fn anomalous_fraction(&self) -> f64 {
        if self.tags.is_empty() {
            return 0.0;
        }
        self.tags.iter().filter(|t| t.is_some()).count() as f64 / self.tags.len() as f64
    }

    /// Ids of anomalies considered *attacks* (as opposed to benign
    /// oddities like flash crowds / elephant flows).
    pub fn attack_ids(&self) -> Vec<u32> {
        self.anomalies
            .iter()
            .filter(|a| a.kind.is_attack())
            .map(|a| a.id)
            .collect()
    }
}

/// A synthetic trace together with its ground truth.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// The trace (what the pipeline sees).
    pub trace: Trace,
    /// Per-packet truth (what the evaluator sees).
    pub truth: GroundTruth,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, kind: AnomalyKind, n: usize) -> AnomalyRecord {
        AnomalyRecord {
            id,
            kind,
            window: TimeWindow::new(0, 1_000_000),
            packet_count: n,
            rule: TrafficRule::any(),
        }
    }

    #[test]
    fn packets_of_selects_by_tag() {
        let tags = vec![None, Some(1), Some(2), Some(1), None];
        let gt = GroundTruth::new(
            tags,
            vec![
                record(1, AnomalyKind::SynFlood, 2),
                record(2, AnomalyKind::PortScan, 1),
            ],
        );
        assert_eq!(gt.packets_of(1), vec![1, 3]);
        assert_eq!(gt.packets_of(2), vec![2]);
        assert!(gt.packets_of(9).is_empty());
    }

    #[test]
    fn anomalous_fraction_counts_tagged() {
        let gt = GroundTruth::new(vec![None, Some(1), None, Some(1)], vec![]);
        assert_eq!(gt.anomalous_fraction(), 0.5);
        assert_eq!(GroundTruth::new(vec![], vec![]).anomalous_fraction(), 0.0);
    }

    #[test]
    fn attack_ids_exclude_benign_kinds() {
        let gt = GroundTruth::new(
            vec![],
            vec![
                record(1, AnomalyKind::SynFlood, 0),
                record(2, AnomalyKind::FlashCrowd, 0),
                record(3, AnomalyKind::SasserWorm, 0),
                record(4, AnomalyKind::ElephantFlow, 0),
            ],
        );
        assert_eq!(gt.attack_ids(), vec![1, 3]);
    }

    #[test]
    fn lookup_by_id() {
        let gt = GroundTruth::new(vec![], vec![record(7, AnomalyKind::PingFlood, 3)]);
        assert_eq!(gt.anomaly(7).unwrap().packet_count, 3);
        assert!(gt.anomaly(8).is_none());
    }
}
