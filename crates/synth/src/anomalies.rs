//! Anomaly injectors.
//!
//! One injector per anomaly class the paper's evaluation revolves
//! around. Attack classes map onto the Table-1 heuristics (Sasser /
//! RPC / SMB / Ping / Other attacks / NetBIOS); the benign-but-odd
//! classes (flash crowd, elephant flow) exist precisely because the
//! paper shows they depress the attack ratio of both accepted and
//! rejected communities after 2007 (§4.2.2).
//!
//! Every injector writes `(packet, tag)` pairs into the shared buffer
//! and returns an [`AnomalyRecord`] documenting what an ideal detector
//! should report.

use crate::background::{emit_tcp_flow, HostModel};
use crate::truth::AnomalyRecord;
use mawilab_model::{Packet, Protocol, TcpFlags, TimeWindow, TrafficRule};
use mawilab_stats::LogNormal;
use rand::rngs::StdRng;
use rand::Rng;

/// Anomaly classes the generator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// TCP SYN flood against one server (DDoS).
    SynFlood,
    /// Vertical port scan of one victim host.
    PortScan,
    /// Sasser-style worm: SMB (445/tcp) sweep + 5554/9898 backdoor
    /// flows.
    SasserWorm,
    /// Blaster-style worm: RPC (135/tcp) sweep + 4444/tcp follow-up.
    BlasterWorm,
    /// NetBIOS name-service probing (137/udp, 139/tcp).
    NetbiosProbe,
    /// ICMP echo flood.
    PingFlood,
    /// Flash crowd: many clients fetching from one web server
    /// (benign; Table-1 labels it "Special/Http").
    FlashCrowd,
    /// Single high-volume transfer on ephemeral ports
    /// (benign; Table-1 labels it "Unknown").
    ElephantFlow,
}

impl AnomalyKind {
    /// Whether this class is a genuine attack (drives the ground-truth
    /// attack ids used by the evaluation crate).
    pub fn is_attack(self) -> bool {
        !matches!(self, AnomalyKind::FlashCrowd | AnomalyKind::ElephantFlow)
    }
}

/// A parameterised anomaly to inject into one trace.
#[derive(Debug, Clone)]
pub enum AnomalySpec {
    /// SYN flood: `rate_pps` SYNs for `duration_s` seconds against
    /// internal server index `victim`, destination port `dport`.
    SynFlood {
        victim: usize,
        dport: u16,
        rate_pps: f64,
        duration_s: f64,
        spoofed: bool,
    },
    /// Vertical scan of `ports` sequential ports on internal host
    /// `victim` from external host `scanner`.
    PortScan {
        scanner: usize,
        victim: usize,
        ports: u16,
        rate_pps: f64,
    },
    /// Sasser-style worm from external host `infected`: `scans` SYNs
    /// to 445/tcp of random hosts; ~5% "victims" receive follow-up
    /// 5554/tcp and 9898/tcp connections.
    SasserWorm {
        infected: usize,
        scans: usize,
        rate_pps: f64,
    },
    /// Blaster-style worm from external host `infected`: `scans` SYNs
    /// to 135/tcp, follow-up 4444/tcp on ~5%.
    BlasterWorm {
        infected: usize,
        scans: usize,
        rate_pps: f64,
    },
    /// NetBIOS probing from external host `prober`: `probes` 137/udp
    /// datagrams plus some 139/tcp SYNs across internal hosts.
    NetbiosProbe {
        prober: usize,
        probes: usize,
        rate_pps: f64,
    },
    /// ICMP echo flood from external host `src` to internal host
    /// `dst`.
    PingFlood {
        src: usize,
        dst: usize,
        rate_pps: f64,
        duration_s: f64,
    },
    /// `flows` complete HTTP fetches from distinct external clients to
    /// internal server `server` within `duration_s`.
    FlashCrowd {
        server: usize,
        flows: usize,
        duration_s: f64,
    },
    /// One long transfer of `packets` large segments between an
    /// internal and an external host on ephemeral ports.
    ElephantFlow { packets: usize },
}

impl AnomalySpec {
    /// The anomaly class of this spec.
    pub fn kind(&self) -> AnomalyKind {
        match self {
            AnomalySpec::SynFlood { .. } => AnomalyKind::SynFlood,
            AnomalySpec::PortScan { .. } => AnomalyKind::PortScan,
            AnomalySpec::SasserWorm { .. } => AnomalyKind::SasserWorm,
            AnomalySpec::BlasterWorm { .. } => AnomalyKind::BlasterWorm,
            AnomalySpec::NetbiosProbe { .. } => AnomalyKind::NetbiosProbe,
            AnomalySpec::PingFlood { .. } => AnomalyKind::PingFlood,
            AnomalySpec::FlashCrowd { .. } => AnomalyKind::FlashCrowd,
            AnomalySpec::ElephantFlow { .. } => AnomalyKind::ElephantFlow,
        }
    }

    /// A balanced mix sized for the default 60-second trace: one of
    /// each attack class plus the two benign oddities.
    pub fn representative_mix() -> Vec<AnomalySpec> {
        vec![
            AnomalySpec::SynFlood {
                victim: 0,
                dport: 80,
                rate_pps: 60.0,
                duration_s: 20.0,
                spoofed: true,
            },
            AnomalySpec::PortScan {
                scanner: 3,
                victim: 5,
                ports: 800,
                rate_pps: 80.0,
            },
            AnomalySpec::SasserWorm {
                infected: 7,
                scans: 600,
                rate_pps: 50.0,
            },
            AnomalySpec::PingFlood {
                src: 11,
                dst: 2,
                rate_pps: 40.0,
                duration_s: 15.0,
            },
            AnomalySpec::NetbiosProbe {
                prober: 13,
                probes: 300,
                rate_pps: 30.0,
            },
            AnomalySpec::FlashCrowd {
                server: 1,
                flows: 60,
                duration_s: 25.0,
            },
            AnomalySpec::ElephantFlow { packets: 1200 },
        ]
    }

    /// Injects this anomaly into `out` with tag `id`, placing it at a
    /// random offset inside `window`. Returns the ground-truth record.
    pub fn build(
        &self,
        id: u32,
        window: TimeWindow,
        hosts: &HostModel,
        rng: &mut StdRng,
        out: &mut Vec<(Packet, u32)>,
    ) -> AnomalyRecord {
        let before = out.len();
        let (span, rule) = match *self {
            AnomalySpec::SynFlood {
                victim,
                dport,
                rate_pps,
                duration_s,
                spoofed,
            } => build_syn_flood(
                id, window, hosts, rng, out, victim, dport, rate_pps, duration_s, spoofed,
            ),
            AnomalySpec::PortScan {
                scanner,
                victim,
                ports,
                rate_pps,
            } => build_port_scan(
                id, window, hosts, rng, out, scanner, victim, ports, rate_pps,
            ),
            AnomalySpec::SasserWorm {
                infected,
                scans,
                rate_pps,
            } => build_worm(
                id,
                window,
                hosts,
                rng,
                out,
                infected,
                scans,
                rate_pps,
                445,
                &[5554, 9898],
            ),
            AnomalySpec::BlasterWorm {
                infected,
                scans,
                rate_pps,
            } => build_worm(
                id,
                window,
                hosts,
                rng,
                out,
                infected,
                scans,
                rate_pps,
                135,
                &[4444],
            ),
            AnomalySpec::NetbiosProbe {
                prober,
                probes,
                rate_pps,
            } => build_netbios(id, window, hosts, rng, out, prober, probes, rate_pps),
            AnomalySpec::PingFlood {
                src,
                dst,
                rate_pps,
                duration_s,
            } => build_ping_flood(id, window, hosts, rng, out, src, dst, rate_pps, duration_s),
            AnomalySpec::FlashCrowd {
                server,
                flows,
                duration_s,
            } => build_flash_crowd(id, window, hosts, rng, out, server, flows, duration_s),
            AnomalySpec::ElephantFlow { packets } => {
                build_elephant(id, window, hosts, rng, out, packets)
            }
        };
        AnomalyRecord {
            id,
            kind: self.kind(),
            window: span,
            packet_count: out.len() - before,
            rule,
        }
    }
}

/// Picks a start so that `duration_us` fits inside `window`.
fn place(window: TimeWindow, duration_us: u64, rng: &mut StdRng) -> u64 {
    let slack = window.len_us().saturating_sub(duration_us);
    window.start_us
        + if slack == 0 {
            0
        } else {
            rng.random_range(0..slack)
        }
}

#[allow(clippy::too_many_arguments)]
fn build_syn_flood(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    victim: usize,
    dport: u16,
    rate_pps: f64,
    duration_s: f64,
    spoofed: bool,
) -> (TimeWindow, TrafficRule) {
    let dur_us = (duration_s * 1e6) as u64;
    let t0 = place(window, dur_us, rng);
    let victim_ip = hosts.internal_at(victim);
    let n = (rate_pps * duration_s) as usize;
    for i in 0..n {
        let ts = t0 + (i as f64 / rate_pps * 1e6) as u64 + rng.random_range(0..5_000u64);
        if !window.contains(ts) {
            continue;
        }
        let src = if spoofed {
            HostModel::spoofed(rng)
        } else {
            hosts.external_at(i % 40)
        };
        let sport: u16 = rng.random_range(1025..=65000);
        out.push((
            Packet::tcp(ts, src, sport, victim_ip, dport, TcpFlags::syn(), 48),
            id,
        ));
        // Victim backscatter: occasional SYN/ACK or RST.
        if rng.random::<f64>() < 0.15 {
            let ts2 = ts + rng.random_range(100..2_000u64);
            if window.contains(ts2) {
                out.push((
                    Packet::tcp(ts2, victim_ip, dport, src, sport, TcpFlags::rst(), 40),
                    id,
                ));
            }
        }
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            dst: Some(victim_ip),
            dport: Some(dport),
            proto: Some(Protocol::Tcp),
            ..Default::default()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn build_port_scan(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    scanner: usize,
    victim: usize,
    ports: u16,
    rate_pps: f64,
) -> (TimeWindow, TrafficRule) {
    let dur_us = (ports as f64 / rate_pps * 1e6) as u64;
    let t0 = place(window, dur_us, rng);
    let src = hosts.external_at(scanner);
    let dst = hosts.internal_at(victim);
    let sport: u16 = rng.random_range(30_000..60_000);
    for p in 1..=ports {
        let ts = t0 + (p as f64 / rate_pps * 1e6) as u64;
        if !window.contains(ts) {
            continue;
        }
        out.push((Packet::tcp(ts, src, sport, dst, p, TcpFlags::syn(), 44), id));
        // Closed ports answer RST.
        if rng.random::<f64>() < 0.7 {
            let ts2 = ts + rng.random_range(100..1_500u64);
            if window.contains(ts2) {
                out.push((
                    Packet::tcp(ts2, dst, p, src, sport, TcpFlags::rst(), 40),
                    id,
                ));
            }
        }
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            src: Some(src),
            dst: Some(dst),
            proto: Some(Protocol::Tcp),
            ..Default::default()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn build_worm(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    infected: usize,
    scans: usize,
    rate_pps: f64,
    scan_port: u16,
    followup_ports: &[u16],
) -> (TimeWindow, TrafficRule) {
    let dur_us = (scans as f64 / rate_pps * 1e6) as u64;
    let t0 = place(window, dur_us, rng);
    let src = hosts.external_at(infected);
    for i in 0..scans {
        let ts = t0 + (i as f64 / rate_pps * 1e6) as u64 + rng.random_range(0..3_000u64);
        if !window.contains(ts) {
            continue;
        }
        // Worms sweep address space; half the probes hit our modelled
        // internal hosts, half hit random addresses routed through.
        let dst = if rng.random::<f64>() < 0.5 {
            hosts.internal_at(rng.random_range(0..hosts.internal_count()))
        } else {
            HostModel::spoofed(rng)
        };
        let sport: u16 = rng.random_range(1025..=65000);
        out.push((
            Packet::tcp(ts, src, sport, dst, scan_port, TcpFlags::syn(), 48),
            id,
        ));
        // ~5% successful infections: SYN/ACK then backdoor transfer.
        if rng.random::<f64>() < 0.05 {
            let mut t = ts + rng.random_range(500..3_000u64);
            if window.contains(t) {
                out.push((
                    Packet::tcp(t, dst, scan_port, src, sport, TcpFlags::syn_ack(), 48),
                    id,
                ));
            }
            for &fp in followup_ports {
                let fsport: u16 = rng.random_range(1025..=65000);
                for j in 0..6u64 {
                    t += rng.random_range(2_000..20_000u64);
                    if !window.contains(t) {
                        break;
                    }
                    let (s, spt, d, dpt, flags, len) = if j == 0 {
                        (src, fsport, dst, fp, TcpFlags::syn(), 48)
                    } else if j == 1 {
                        (dst, fp, src, fsport, TcpFlags::syn_ack(), 48)
                    } else {
                        (
                            src,
                            fsport,
                            dst,
                            fp,
                            TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                            512,
                        )
                    };
                    out.push((Packet::tcp(t, s, spt, d, dpt, flags, len), id));
                }
            }
        }
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            src: Some(src),
            dport: Some(scan_port),
            proto: Some(Protocol::Tcp),
            ..Default::default()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn build_netbios(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    prober: usize,
    probes: usize,
    rate_pps: f64,
) -> (TimeWindow, TrafficRule) {
    let dur_us = (probes as f64 / rate_pps * 1e6) as u64;
    let t0 = place(window, dur_us, rng);
    let src = hosts.external_at(prober);
    for i in 0..probes {
        let ts = t0 + (i as f64 / rate_pps * 1e6) as u64 + rng.random_range(0..4_000u64);
        if !window.contains(ts) {
            continue;
        }
        let dst = hosts.internal_at(rng.random_range(0..hosts.internal_count()));
        if rng.random::<f64>() < 0.8 {
            // NetBIOS name service query.
            out.push((Packet::udp(ts, src, 137, dst, 137, 78), id));
        } else {
            // Session service connection attempt.
            let sport: u16 = rng.random_range(1025..=65000);
            out.push((
                Packet::tcp(ts, src, sport, dst, 139, TcpFlags::syn(), 48),
                id,
            ));
        }
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            src: Some(src),
            dport: Some(137),
            ..Default::default()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn build_ping_flood(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    src: usize,
    dst: usize,
    rate_pps: f64,
    duration_s: f64,
) -> (TimeWindow, TrafficRule) {
    let dur_us = (duration_s * 1e6) as u64;
    let t0 = place(window, dur_us, rng);
    let s = hosts.external_at(src);
    let d = hosts.internal_at(dst);
    let n = (rate_pps * duration_s) as usize;
    for i in 0..n {
        let ts = t0 + (i as f64 / rate_pps * 1e6) as u64 + rng.random_range(0..3_000u64);
        if !window.contains(ts) {
            continue;
        }
        out.push((Packet::icmp(ts, s, d, 8, 0, 1064), id));
        if rng.random::<f64>() < 0.4 {
            let ts2 = ts + rng.random_range(200..3_000u64);
            if window.contains(ts2) {
                out.push((Packet::icmp(ts2, d, s, 0, 0, 1064), id));
            }
        }
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            src: Some(s),
            dst: Some(d),
            proto: Some(Protocol::Icmp),
            ..Default::default()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn build_flash_crowd(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    server: usize,
    flows: usize,
    duration_s: f64,
) -> (TimeWindow, TrafficRule) {
    let dur_us = (duration_s * 1e6) as u64;
    let t0 = place(window, dur_us, rng);
    let srv = hosts.internal_at(server);
    let data = LogNormal::new(6.5, 0.6);
    let before = out.len();
    for f in 0..flows {
        let start = t0 + rng.random_range(0..dur_us.max(1));
        let client = hosts.external_at(200 + f); // distinct clients
        let cport: u16 = rng.random_range(1025..=65000);
        let n_data = rng.random_range(8..30);
        emit_tcp_flow(
            start,
            window.end_us,
            client,
            cport,
            srv,
            80,
            n_data,
            &data,
            rng,
            out,
        );
    }
    // Retag: emit_tcp_flow writes background tags.
    for entry in out[before..].iter_mut() {
        entry.1 = id;
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            dst: Some(srv),
            dport: Some(80),
            proto: Some(Protocol::Tcp),
            ..Default::default()
        },
    )
}

fn build_elephant(
    id: u32,
    window: TimeWindow,
    hosts: &HostModel,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
    packets: usize,
) -> (TimeWindow, TrafficRule) {
    let a = hosts.internal_at(rng.random_range(0..hosts.internal_count()));
    let b = hosts.external_at(rng.random_range(0..400));
    let aport: u16 = rng.random_range(10_000..60_000);
    let bport: u16 = rng.random_range(10_000..60_000);
    // Spread across most of the window: a persistent heavy transfer.
    let dur_us = window.len_us() * 3 / 4;
    let t0 = place(window, dur_us, rng);
    // Budget the mean step so the requested packet count fits in the
    // remaining window even with jitter (mean step = 9/8 · gap).
    let avail = window.end_us.saturating_sub(t0);
    let gap = (avail * 8 / 9) / packets.max(1) as u64;
    let mut ts = t0;
    for i in 0..packets {
        ts += gap.max(1) + rng.random_range(0..gap.max(4) / 4 + 1);
        if !window.contains(ts) {
            break;
        }
        // Data flows b→a (download), sparse acks a→b.
        if i % 8 == 7 {
            out.push((Packet::tcp(ts, a, aport, b, bport, TcpFlags::ack(), 40), id));
        } else {
            out.push((
                Packet::tcp(
                    ts,
                    b,
                    bport,
                    a,
                    aport,
                    TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                    1500,
                ),
                id,
            ));
        }
    }
    (
        TimeWindow::new(t0, (t0 + dur_us).min(window.end_us)),
        TrafficRule {
            src: Some(b),
            sport: Some(bport),
            dst: Some(a),
            dport: Some(aport),
            proto: Some(Protocol::Tcp),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use rand::SeedableRng;

    fn setup() -> (HostModel, TimeWindow, StdRng) {
        let cfg = SynthConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let hosts = HostModel::new(&cfg, &mut rng);
        (hosts, TimeWindow::new(0, 60_000_000), rng)
    }

    fn run(spec: AnomalySpec) -> (Vec<(Packet, u32)>, AnomalyRecord) {
        let (hosts, window, mut rng) = setup();
        let mut out = Vec::new();
        let rec = spec.build(9, window, &hosts, &mut rng, &mut out);
        (out, rec)
    }

    #[test]
    fn syn_flood_is_mostly_syns_to_one_port() {
        let (pkts, rec) = run(AnomalySpec::SynFlood {
            victim: 0,
            dport: 80,
            rate_pps: 100.0,
            duration_s: 10.0,
            spoofed: true,
        });
        assert!(pkts.len() >= 900, "{} pkts", pkts.len());
        let syns = pkts
            .iter()
            .filter(|(p, _)| p.flags.is_syn() && !p.flags.has(TcpFlags::ACK))
            .count();
        assert!(syns as f64 / pkts.len() as f64 > 0.8);
        assert_eq!(rec.kind, AnomalyKind::SynFlood);
        assert_eq!(rec.rule.dport, Some(80));
        assert_eq!(rec.packet_count, pkts.len());
        // Spoofed sources are diverse.
        let srcs: std::collections::HashSet<_> = pkts
            .iter()
            .filter(|(p, _)| p.flags.is_syn() && !p.flags.has(TcpFlags::ACK))
            .map(|(p, _)| p.src)
            .collect();
        assert!(srcs.len() > 500);
    }

    #[test]
    fn port_scan_covers_many_ports_one_victim() {
        let (pkts, rec) = run(AnomalySpec::PortScan {
            scanner: 1,
            victim: 2,
            ports: 500,
            rate_pps: 100.0,
        });
        let dports: std::collections::HashSet<u16> = pkts
            .iter()
            .filter(|(p, _)| p.flags.is_syn() && !p.flags.has(TcpFlags::ACK))
            .map(|(p, _)| p.dport)
            .collect();
        assert!(dports.len() > 400, "{} distinct ports", dports.len());
        let victims: std::collections::HashSet<_> = pkts
            .iter()
            .filter(|(p, _)| p.flags.is_syn() && !p.flags.has(TcpFlags::ACK))
            .map(|(p, _)| p.dst)
            .collect();
        assert_eq!(victims.len(), 1);
        assert!(rec.rule.src.is_some() && rec.rule.dst.is_some());
    }

    #[test]
    fn sasser_scans_445_with_backdoor_followups() {
        let (pkts, rec) = run(AnomalySpec::SasserWorm {
            infected: 3,
            scans: 800,
            rate_pps: 100.0,
        });
        let scan_445 = pkts.iter().filter(|(p, _)| p.dport == 445).count();
        assert!(scan_445 > 600);
        let backdoor = pkts
            .iter()
            .filter(|(p, _)| {
                p.dport == 5554 || p.dport == 9898 || p.sport == 5554 || p.sport == 9898
            })
            .count();
        assert!(backdoor > 0, "no backdoor traffic");
        assert_eq!(rec.rule.dport, Some(445));
        // Many distinct destinations (sweep).
        let dsts: std::collections::HashSet<_> = pkts
            .iter()
            .filter(|(p, _)| p.dport == 445)
            .map(|(p, _)| p.dst)
            .collect();
        assert!(dsts.len() > 200);
    }

    #[test]
    fn blaster_scans_135() {
        let (pkts, _) = run(AnomalySpec::BlasterWorm {
            infected: 2,
            scans: 400,
            rate_pps: 80.0,
        });
        assert!(pkts.iter().filter(|(p, _)| p.dport == 135).count() > 300);
        assert!(pkts.iter().any(|(p, _)| p.dport == 4444 || p.sport == 4444));
    }

    #[test]
    fn netbios_mixes_udp137_and_tcp139() {
        let (pkts, _) = run(AnomalySpec::NetbiosProbe {
            prober: 4,
            probes: 400,
            rate_pps: 80.0,
        });
        let udp137 = pkts
            .iter()
            .filter(|(p, _)| p.proto == Protocol::Udp && p.dport == 137)
            .count();
        let tcp139 = pkts
            .iter()
            .filter(|(p, _)| p.proto == Protocol::Tcp && p.dport == 139)
            .count();
        assert!(udp137 > 200);
        assert!(tcp139 > 20);
    }

    #[test]
    fn ping_flood_is_icmp_heavy() {
        let (pkts, rec) = run(AnomalySpec::PingFlood {
            src: 1,
            dst: 1,
            rate_pps: 80.0,
            duration_s: 10.0,
        });
        assert!(pkts.iter().all(|(p, _)| p.proto == Protocol::Icmp));
        assert!(pkts.len() > 700);
        assert_eq!(rec.rule.proto, Some(Protocol::Icmp));
    }

    #[test]
    fn flash_crowd_has_low_syn_ratio_on_port_80() {
        let (pkts, rec) = run(AnomalySpec::FlashCrowd {
            server: 0,
            flows: 50,
            duration_s: 30.0,
        });
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|(_, tag)| *tag == 9));
        let to_80 = pkts
            .iter()
            .filter(|(p, _)| p.dport == 80 || p.sport == 80)
            .count();
        assert!(to_80 as f64 / pkts.len() as f64 > 0.9);
        let syn = pkts.iter().filter(|(p, _)| p.flags.is_syn()).count();
        assert!(
            (syn as f64 / pkts.len() as f64) < 0.3,
            "flash crowd looks like a SYN attack"
        );
        assert!(!rec.kind.is_attack());
    }

    #[test]
    fn elephant_is_one_huge_flow() {
        let (pkts, rec) = run(AnomalySpec::ElephantFlow { packets: 800 });
        assert!(pkts.len() > 700);
        let keys: std::collections::HashSet<_> = pkts
            .iter()
            .map(|(p, _)| {
                let mut e = [(p.src, p.sport), (p.dst, p.dport)];
                e.sort();
                e
            })
            .collect();
        assert_eq!(keys.len(), 1, "elephant spans multiple biflows");
        assert_eq!(rec.rule.degree(), 4);
        assert!(!rec.kind.is_attack());
    }

    #[test]
    fn all_specs_stay_inside_window() {
        for spec in AnomalySpec::representative_mix() {
            let (hosts, window, mut rng) = setup();
            let mut out = Vec::new();
            spec.build(1, window, &hosts, &mut rng, &mut out);
            assert!(
                out.iter().all(|(p, _)| window.contains(p.ts_us)),
                "{:?} leaked outside the window",
                spec.kind()
            );
        }
    }

    #[test]
    fn record_counts_match_emitted_packets() {
        for spec in AnomalySpec::representative_mix() {
            let (out, rec) = run(spec);
            assert_eq!(out.len(), rec.packet_count);
            assert!(out.iter().all(|(_, t)| *t == 9));
        }
    }

    #[test]
    fn attack_classification_is_stable() {
        assert!(AnomalyKind::SynFlood.is_attack());
        assert!(AnomalyKind::SasserWorm.is_attack());
        assert!(AnomalyKind::BlasterWorm.is_attack());
        assert!(AnomalyKind::NetbiosProbe.is_attack());
        assert!(AnomalyKind::PingFlood.is_attack());
        assert!(AnomalyKind::PortScan.is_attack());
        assert!(!AnomalyKind::FlashCrowd.is_attack());
        assert!(!AnomalyKind::ElephantFlow.is_attack());
    }
}
