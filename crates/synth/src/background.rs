//! Background (non-anomalous) traffic synthesis.
//!
//! Models the structural properties of backbone traffic that the
//! detectors' baselines are fitted on: Zipf-popular hosts, an
//! application mix anchored on well-known ports, log-normal flow
//! sizes with a Pareto-tailed peer-to-peer component, and Poisson
//! flow arrivals. Absolute realism is not the goal — *diversity and
//! heavy tails* are, because they are what the four detectors' normal
//! models must absorb (DESIGN.md §2).
//!
//! Generation is **bin-native**: a [`BackgroundModel`] holds the
//! day-level parameters (app mix, distributions, the common-mode rate
//! modulation), and [`BackgroundModel::generate_bin`] synthesises the
//! flows *arriving* inside one generation bin from a caller-supplied
//! RNG. Poisson arrivals are memoryless, so restarting the arrival
//! clock at each bin boundary leaves the process statistically
//! unchanged while removing every sequential RNG dependence between
//! bins — the property the sharded generator (`crate::sharded`) is
//! built on. Flows *started* in a bin may emit packets past its end
//! (they are only clipped at the day window), so bin outputs are
//! merged time-sorted by the caller.

use crate::config::SynthConfig;
use mawilab_model::{Packet, TcpFlags, TimeWindow};
use mawilab_stats::{Exponential, LogNormal, Pareto, Zipf};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// The host population of one trace: internal (WIDE-side) and external
/// (trans-Pacific side) addresses, with Zipf popularity and designated
/// server roles.
#[derive(Debug, Clone)]
pub struct HostModel {
    internal: Vec<Ipv4Addr>,
    external: Vec<Ipv4Addr>,
    int_zipf: Zipf,
    ext_zipf: Zipf,
}

impl HostModel {
    /// Builds the population for a config. Internal hosts live in
    /// 203.178.0.0/16 (the WIDE prefix); external hosts are drawn
    /// pseudo-randomly from the public space.
    pub fn new(cfg: &SynthConfig, rng: &mut StdRng) -> Self {
        let internal: Vec<Ipv4Addr> = (0..cfg.internal_hosts)
            .map(|i| Ipv4Addr::new(203, 178, (i / 250) as u8, (i % 250 + 1) as u8))
            .collect();
        let mut external = Vec::with_capacity(cfg.external_hosts);
        while external.len() < cfg.external_hosts {
            let a = rng.random_range(1..=223u8);
            if a == 10 || a == 127 || a == 192 || a == 172 || a == 203 {
                continue; // avoid private/loopback/our prefix
            }
            external.push(Ipv4Addr::new(
                a,
                rng.random_range(0..=255),
                rng.random_range(0..=255),
                rng.random_range(1..=254),
            ));
        }
        HostModel {
            int_zipf: Zipf::new(internal.len(), 1.0),
            ext_zipf: Zipf::new(external.len(), 1.0),
            internal,
            external,
        }
    }

    /// A Zipf-popular internal host.
    pub fn internal(&self, rng: &mut StdRng) -> Ipv4Addr {
        self.internal[self.int_zipf.sample(rng) - 1]
    }

    /// A Zipf-popular external host.
    pub fn external(&self, rng: &mut StdRng) -> Ipv4Addr {
        self.external[self.ext_zipf.sample(rng) - 1]
    }

    /// The `i`-th internal host (stable across runs; used to pin
    /// anomaly victims).
    pub fn internal_at(&self, i: usize) -> Ipv4Addr {
        self.internal[i % self.internal.len()]
    }

    /// The `i`-th external host.
    pub fn external_at(&self, i: usize) -> Ipv4Addr {
        self.external[i % self.external.len()]
    }

    /// Number of internal hosts.
    pub fn internal_count(&self) -> usize {
        self.internal.len()
    }

    /// A uniformly random (spoofed-looking) public address outside the
    /// modelled population.
    pub fn spoofed(rng: &mut StdRng) -> Ipv4Addr {
        loop {
            let a = rng.random_range(1..=223u8);
            if a == 10 || a == 127 || a == 192 || a == 172 || a == 203 {
                continue;
            }
            return Ipv4Addr::new(
                a,
                rng.random_range(0..=255),
                rng.random_range(0..=255),
                rng.random_range(1..=254),
            );
        }
    }
}

/// An application profile of the background mix.
#[derive(Debug, Clone)]
struct App {
    weight: f64,
    proto_tcp: bool,
    server_port: u16,
    mean_data_pkts: f64,
}

fn app_mix(p2p_share: f64) -> Vec<App> {
    let rest = 1.0 - p2p_share;
    vec![
        App {
            weight: rest * 0.42,
            proto_tcp: true,
            server_port: 80,
            mean_data_pkts: 10.0,
        },
        App {
            weight: rest * 0.05,
            proto_tcp: true,
            server_port: 8080,
            mean_data_pkts: 8.0,
        },
        App {
            weight: rest * 0.22,
            proto_tcp: false,
            server_port: 53,
            mean_data_pkts: 1.0,
        },
        App {
            weight: rest * 0.08,
            proto_tcp: true,
            server_port: 25,
            mean_data_pkts: 12.0,
        },
        App {
            weight: rest * 0.06,
            proto_tcp: true,
            server_port: 22,
            mean_data_pkts: 14.0,
        },
        App {
            weight: rest * 0.05,
            proto_tcp: true,
            server_port: 21,
            mean_data_pkts: 6.0,
        },
        App {
            weight: rest * 0.05,
            proto_tcp: false,
            server_port: 123,
            mean_data_pkts: 1.0,
        },
        App {
            weight: rest * 0.04,
            proto_tcp: true,
            server_port: 443,
            mean_data_pkts: 9.0,
        },
        App {
            weight: rest * 0.03,
            proto_tcp: false,
            server_port: 0,
            mean_data_pkts: 1.0,
        }, // icmp echo
        // Peer-to-peer: random high ports both sides, Pareto sizes.
        App {
            weight: p2p_share,
            proto_tcp: true,
            server_port: 0,
            mean_data_pkts: 20.0,
        },
    ]
}

/// Day-level background parameters, shared by every generation bin.
///
/// Everything here is a pure function of the config plus the two
/// modulation phases (drawn once from the day stream), so bins can be
/// generated in any order from independent RNG streams.
#[derive(Debug, Clone)]
pub struct BackgroundModel {
    apps: Vec<App>,
    total_weight: f64,
    inter: Exponential,
    data_size: LogNormal,
    p2p_pkts: Pareto,
    day_window: TimeWindow,
    phases: (f64, f64),
}

/// Peak of the common-mode modulation factor (the thinning bound).
const MOD_MAX: f64 = 1.48;

impl BackgroundModel {
    /// Builds the day model. `phases` are the two common-mode
    /// modulation phases, drawn from the day-level RNG stream.
    pub fn new(cfg: &SynthConfig, day_window: TimeWindow, phases: (f64, f64)) -> Self {
        let apps = app_mix(cfg.p2p_share.clamp(0.0, 0.9));
        let total_weight: f64 = apps.iter().map(|a| a.weight).sum();
        // Overhead ≈ 5 control packets per TCP flow.
        let mean_flow_pkts: f64 = apps
            .iter()
            .map(|a| a.weight / total_weight * (a.mean_data_pkts + 4.0))
            .sum();
        let target_packets = cfg.background_pps * cfg.duration_s as f64;
        let flow_rate = target_packets / mean_flow_pkts / cfg.duration_s as f64; // flows/s
        BackgroundModel {
            apps,
            total_weight,
            inter: Exponential::new(flow_rate.max(1e-6)),
            data_size: LogNormal::new(6.2, 0.8), // ~500-byte median payloads
            p2p_pkts: Pareto::new(4.0, 1.3),
            day_window,
            phases,
        }
    }

    /// Common-mode rate modulation: real backbone traffic breathes —
    /// all hosts' rates co-vary through load and routing dynamics.
    /// This common factor is what PCA-style detectors model as the
    /// "normal subspace"; without it every sketch bin would be an
    /// independent Poisson stream and no low-dimensional normal
    /// behaviour would exist to learn.
    fn modulation(&self, ts: f64) -> f64 {
        let dur = (self.day_window.len_us() as f64).max(1.0);
        let x = (ts - self.day_window.start_us as f64) / dur;
        1.0 + 0.30 * (2.0 * std::f64::consts::PI * (2.3 * x + self.phases.0)).sin()
            + 0.18 * (2.0 * std::f64::consts::PI * (7.1 * x + self.phases.1)).sin()
    }

    /// Generates the background flows *arriving* inside `bin` into
    /// `out` (tag 0 = background), from `rng` alone. Flow packets may
    /// extend past the bin (clipped only at the day window end); the
    /// caller merges bin outputs time-sorted.
    pub fn generate_bin(
        &self,
        hosts: &HostModel,
        bin: TimeWindow,
        rng: &mut StdRng,
        out: &mut Vec<(Packet, u32)>,
    ) {
        let day_end = self.day_window.end_us;
        let mut t = bin.start_us as f64;
        let end = bin.end_us.min(day_end) as f64;
        while t < end {
            // Thinned Poisson process: candidate arrivals at the peak
            // rate, kept with probability m(t)/m_max. Exponential
            // inter-arrivals are memoryless, so restarting the clock
            // at the bin start leaves the day-level process unchanged.
            t += self.inter.sample(rng) / MOD_MAX * 1e6;
            if t >= end {
                break;
            }
            if rng.random::<f64>() > self.modulation(t) / MOD_MAX {
                continue;
            }
            // Pick an app by weight.
            let mut pick = rng.random::<f64>() * self.total_weight;
            let mut app = &self.apps[self.apps.len() - 1];
            for a in &self.apps {
                if pick < a.weight {
                    app = a;
                    break;
                }
                pick -= a.weight;
            }
            // Endpoints: clients and servers on either side of the link.
            let internal_client = rng.random::<f64>() < 0.5;
            let (client, server) = if internal_client {
                (hosts.internal(rng), hosts.external(rng))
            } else {
                (hosts.external(rng), hosts.internal(rng))
            };
            let cport: u16 = rng.random_range(1025..=65000);

            if app.server_port == 0 && !app.proto_tcp {
                // ICMP echo pair.
                emit_icmp_pair(t as u64, day_end, client, server, rng, out);
            } else if app.server_port == 0 {
                // p2p: both ports ephemeral, Pareto-tailed packet count.
                let sport: u16 = rng.random_range(1025..=65000);
                let n = (self.p2p_pkts.sample(rng) as usize).clamp(2, 3_000);
                emit_tcp_flow(
                    t as u64,
                    day_end,
                    client,
                    cport,
                    server,
                    sport,
                    n,
                    &self.data_size,
                    rng,
                    out,
                );
            } else if app.proto_tcp {
                let n = sample_flow_len(app.mean_data_pkts, rng);
                emit_tcp_flow(
                    t as u64,
                    day_end,
                    client,
                    cport,
                    server,
                    app.server_port,
                    n,
                    &self.data_size,
                    rng,
                    out,
                );
            } else {
                // UDP request/response (DNS, NTP).
                emit_udp_exchange(
                    t as u64,
                    day_end,
                    client,
                    cport,
                    server,
                    app.server_port,
                    rng,
                    out,
                );
            }
        }
    }
}

fn sample_flow_len(mean: f64, rng: &mut StdRng) -> usize {
    // Geometric-ish around the mean, at least 1 data packet.
    let u: f64 = rng.random::<f64>().max(1e-12);
    ((-u.ln() * mean) as usize).clamp(1, 500)
}

/// Emits a full TCP conversation: handshake, `n_data` data segments
/// alternating directions, FIN teardown. Packets beyond `end_us` are
/// dropped (flows truncated by the capture window, as in real MAWI
/// 15-minute snapshots).
#[allow(clippy::too_many_arguments)]
pub fn emit_tcp_flow(
    t0: u64,
    end_us: u64,
    client: Ipv4Addr,
    cport: u16,
    server: Ipv4Addr,
    sport: u16,
    n_data: usize,
    data_size: &LogNormal,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
) {
    let rtt = rng.random_range(20_000..200_000u64); // 20–200 ms
    let mut push = |ts: u64, p: Packet| {
        if ts < end_us {
            out.push((p, 0));
        }
    };
    let mut t = t0;
    push(
        t,
        Packet::tcp(t, client, cport, server, sport, TcpFlags::syn(), 48),
    );
    t += rtt / 2;
    push(
        t,
        Packet::tcp(t, server, sport, client, cport, TcpFlags::syn_ack(), 48),
    );
    t += rtt / 2;
    push(
        t,
        Packet::tcp(t, client, cport, server, sport, TcpFlags::ack(), 40),
    );
    let gap = Exponential::new(1.0 / (0.02 + rng.random::<f64>() * 0.2)); // mean 20–220 ms
    for i in 0..n_data {
        t += (gap.sample(rng) * 1e6) as u64;
        let len = (data_size.sample(rng) as u16).clamp(40, 1500);
        let (src, sp, dst, dp) = if i % 3 == 0 {
            (client, cport, server, sport) // requests
        } else {
            (server, sport, client, cport) // responses dominate
        };
        push(
            t,
            Packet::tcp(
                t,
                src,
                sp,
                dst,
                dp,
                TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                len,
            ),
        );
    }
    t += rtt / 2;
    push(
        t,
        Packet::tcp(t, client, cport, server, sport, TcpFlags::fin_ack(), 40),
    );
    t += rtt / 2;
    push(
        t,
        Packet::tcp(t, server, sport, client, cport, TcpFlags::fin_ack(), 40),
    );
}

#[allow(clippy::too_many_arguments)]
fn emit_udp_exchange(
    t0: u64,
    end_us: u64,
    client: Ipv4Addr,
    cport: u16,
    server: Ipv4Addr,
    sport: u16,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
) {
    if t0 < end_us {
        out.push((
            Packet::udp(t0, client, cport, server, sport, rng.random_range(60..120)),
            0,
        ));
    }
    let t1 = t0 + rng.random_range(10_000..150_000u64);
    if t1 < end_us {
        out.push((
            Packet::udp(t1, server, sport, client, cport, rng.random_range(80..512)),
            0,
        ));
    }
}

fn emit_icmp_pair(
    t0: u64,
    end_us: u64,
    a: Ipv4Addr,
    b: Ipv4Addr,
    rng: &mut StdRng,
    out: &mut Vec<(Packet, u32)>,
) {
    if t0 < end_us {
        out.push((Packet::icmp(t0, a, b, 8, 0, 84), 0));
    }
    let t1 = t0 + rng.random_range(20_000..200_000u64);
    if t1 < end_us {
        out.push((Packet::icmp(t1, b, a, 0, 0, 84), 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SynthConfig, HostModel, TimeWindow, StdRng) {
        let cfg = SynthConfig::default().with_anomalies(vec![]);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hosts = HostModel::new(&cfg, &mut rng);
        let window = TimeWindow::new(0, cfg.duration_s as u64 * 1_000_000);
        (cfg, hosts, window, rng)
    }

    /// Generates a whole day through the bin-native API: one model,
    /// 1-second bins, each from the shared test rng (sequencing is
    /// irrelevant to these statistical assertions).
    fn generate_background(
        cfg: &SynthConfig,
        hosts: &HostModel,
        window: TimeWindow,
        rng: &mut StdRng,
        out: &mut Vec<(Packet, u32)>,
    ) {
        let phases = (rng.random::<f64>(), rng.random::<f64>());
        let model = BackgroundModel::new(cfg, window, phases);
        let mut start = window.start_us;
        while start < window.end_us {
            let end = (start + 1_000_000).min(window.end_us);
            model.generate_bin(hosts, TimeWindow::new(start, end), rng, out);
            start = end;
        }
    }

    #[test]
    fn volume_tracks_configured_rate() {
        let (cfg, hosts, window, mut rng) = setup();
        let mut out = Vec::new();
        generate_background(&cfg, &hosts, window, &mut rng, &mut out);
        let target = cfg.background_pps * cfg.duration_s as f64;
        let got = out.len() as f64;
        assert!(
            got > target * 0.5 && got < target * 2.0,
            "got {got}, target {target}"
        );
    }

    #[test]
    fn all_background_packets_are_tag_zero_and_in_window() {
        let (cfg, hosts, window, mut rng) = setup();
        let mut out = Vec::new();
        generate_background(&cfg, &hosts, window, &mut rng, &mut out);
        assert!(out
            .iter()
            .all(|(p, tag)| *tag == 0 && window.contains(p.ts_us)));
    }

    #[test]
    fn mix_includes_wellknown_ports_and_protocols() {
        let (cfg, hosts, window, mut rng) = setup();
        let mut out = Vec::new();
        generate_background(&cfg, &hosts, window, &mut rng, &mut out);
        let has_port = |p: u16| out.iter().any(|(pkt, _)| pkt.dport == p || pkt.sport == p);
        assert!(has_port(80), "no HTTP");
        assert!(has_port(53), "no DNS");
        let has_udp = out
            .iter()
            .any(|(p, _)| p.proto == mawilab_model::Protocol::Udp);
        let has_icmp = out
            .iter()
            .any(|(p, _)| p.proto == mawilab_model::Protocol::Icmp);
        assert!(has_udp && has_icmp);
    }

    #[test]
    fn background_syn_ratio_is_low() {
        // Normal traffic must not look like an attack to the Table-1
        // heuristics (SYN ratio ≥ 50% ⇒ attack).
        let (cfg, hosts, window, mut rng) = setup();
        let mut out = Vec::new();
        generate_background(&cfg, &hosts, window, &mut rng, &mut out);
        let tcp: Vec<_> = out
            .iter()
            .filter(|(p, _)| p.proto == mawilab_model::Protocol::Tcp)
            .collect();
        let syn = tcp.iter().filter(|(p, _)| p.flags.is_syn()).count();
        let ratio = syn as f64 / tcp.len() as f64;
        assert!(ratio < 0.3, "background SYN ratio {ratio}");
    }

    #[test]
    fn popular_hosts_dominate() {
        let (cfg, hosts, _window, mut rng) = setup();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(hosts.internal(&mut rng)).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let avg = 10_000 / cfg.internal_hosts as u32;
        assert!(max > avg * 5, "no Zipf skew: max={max} avg={avg}");
    }

    #[test]
    fn spoofed_addresses_avoid_reserved_space() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let ip = HostModel::spoofed(&mut rng);
            let o = ip.octets();
            assert!(o[0] != 10 && o[0] != 127 && o[0] != 203 && o[0] <= 223);
        }
    }

    #[test]
    fn stable_host_indexing() {
        let (cfg, hosts, _, _) = setup();
        assert_eq!(hosts.internal_at(0), hosts.internal_at(0));
        assert_eq!(hosts.internal_at(cfg.internal_hosts), hosts.internal_at(0));
        // wraps
    }

    #[test]
    fn truncation_drops_packets_beyond_window() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        let data = LogNormal::new(6.0, 0.5);
        // Flow starting 1µs before the end: almost everything dropped.
        emit_tcp_flow(
            999_999,
            1_000_000,
            Ipv4Addr::new(1, 1, 1, 1),
            1025,
            Ipv4Addr::new(2, 2, 2, 2),
            80,
            50,
            &data,
            &mut rng,
            &mut out,
        );
        assert!(out.len() <= 1);
    }
}
