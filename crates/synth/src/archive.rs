//! Longitudinal archive simulation (2001–2009).
//!
//! Reproduces the *calendar dynamics* the paper's time-series figures
//! depend on:
//!
//! * link upgrades raise the background rate (18 Mbps CAR → 100 Mbps
//!   on 2006-07-01 → 150 Mbps on 2007-06-01, paper §3.1);
//! * the Blaster worm appears in August 2003 and the Sasser worm in
//!   May 2004, each with an intense outbreak phase followed by a long
//!   residual tail (§4.2.2 — these outbreaks are what destabilise the
//!   detectors in Figs. 7–8);
//! * the peer-to-peer share of background traffic grows over the
//!   years, so that by 2007+ the Table-1 heuristics increasingly
//!   mislabel elephant flows — depressing attack ratios exactly as the
//!   paper reports (§4.2.2).
//!
//! Every day derives its own seed from `base_seed` and the date, so
//! any subset of the archive regenerates identically.

use crate::anomalies::AnomalySpec;
use crate::config::SynthConfig;
use crate::truth::LabeledTrace;
use crate::TraceGenerator;
use mawilab_model::{LinkEra, TraceDate};
use mawilab_stats::Poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Archive-level knobs.
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Master seed; per-day seeds derive from it.
    pub base_seed: u64,
    /// Global intensity scale (1.0 = laptop-friendly miniature traces,
    /// ~25–60k packets each; raise toward 10+ for realistic volumes).
    pub scale: f64,
    /// Per-trace duration in seconds (60 for the miniature; the real
    /// archive uses 900).
    pub duration_s: u32,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            base_seed: 0x4D41_5749,
            scale: 1.0,
            duration_s: 60,
        }
    }
}

/// Deterministic day-by-day MAWI-archive substitute.
#[derive(Debug, Clone)]
pub struct ArchiveSimulator {
    cfg: ArchiveConfig,
}

impl ArchiveSimulator {
    /// Creates a simulator.
    pub fn new(cfg: ArchiveConfig) -> Self {
        assert!(cfg.scale > 0.0, "scale must be positive");
        assert!(cfg.duration_s > 0, "duration must be positive");
        ArchiveSimulator { cfg }
    }

    /// The synthetic-trace configuration for one archive day.
    pub fn config_for(&self, date: TraceDate) -> SynthConfig {
        let day_seed = self
            .cfg
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(date.days_since_epoch() as u64);
        let mut rng = StdRng::seed_from_u64(day_seed);
        let fy = date.fractional_year();

        // Background rate: era base × mild secular growth × day jitter.
        let era_base = match LinkEra::for_date(date) {
            LinkEra::Car18Mbps => 300.0,
            LinkEra::Full100Mbps => 650.0,
            LinkEra::Full150Mbps => 900.0,
        };
        let growth = 1.0 + 0.06 * (fy - 2001.0);
        let jitter = 0.85 + rng.random::<f64>() * 0.3;
        let background_pps = era_base * growth * jitter * self.cfg.scale;

        // p2p share: 8% (2001) → ~45% (2009); accelerates post-2006.
        let p2p_share =
            (0.08 + 0.03 * (fy - 2001.0) + if fy > 2006.5 { 0.12 } else { 0.0 }).clamp(0.05, 0.5);

        let anomalies = self.daily_anomalies(date, &mut rng);
        SynthConfig {
            seed: day_seed ^ 0xABCD_EF01,
            date,
            duration_s: self.cfg.duration_s,
            background_pps,
            internal_hosts: 300,
            external_hosts: 1500,
            p2p_share,
            anomalies,
            samplepoint: "B".to_string(),
        }
    }

    /// Generates one labeled day.
    pub fn generate(&self, date: TraceDate) -> LabeledTrace {
        TraceGenerator::new(self.config_for(date)).generate()
    }

    fn daily_anomalies(&self, date: TraceDate, rng: &mut StdRng) -> Vec<AnomalySpec> {
        let fy = date.fractional_year();
        let dur = self.cfg.duration_s as f64;
        // Anomaly intensity tracks the link era: attack volumes grew
        // with the Internet, and without this the post-2006 upgrades
        // would drown anomalies in background and (unrealistically)
        // sink every detector at once.
        let era_factor = match LinkEra::for_date(date) {
            LinkEra::Car18Mbps => 1.0,
            LinkEra::Full100Mbps => 2.2,
            LinkEra::Full150Mbps => 3.0,
        };
        let s = self.cfg.scale * era_factor;
        let mut specs = Vec::new();
        fn host(rng: &mut StdRng) -> usize {
            rng.random_range(0..200usize)
        }

        // Ever-present scanning noise.
        let n_scans = Poisson::new(1.6).sample(rng).min(4);
        for _ in 0..n_scans {
            specs.push(AnomalySpec::PortScan {
                scanner: host(rng),
                victim: host(rng),
                ports: (400.0 * s) as u16 + 100,
                rate_pps: 60.0 + rng.random::<f64>() * 60.0,
            });
        }
        // DDoS / SYN floods: occasional.
        for _ in 0..Poisson::new(0.8).sample(rng).min(3) {
            specs.push(AnomalySpec::SynFlood {
                victim: host(rng),
                dport: *[80u16, 80, 443, 53, 22][rng.random_range(0..5)..]
                    .first()
                    .unwrap(),
                rate_pps: (40.0 + rng.random::<f64>() * 80.0) * s,
                duration_s: dur * (0.15 + rng.random::<f64>() * 0.3),
                spoofed: rng.random::<f64>() < 0.7,
            });
        }
        // Ping floods.
        for _ in 0..Poisson::new(0.7).sample(rng).min(3) {
            specs.push(AnomalySpec::PingFlood {
                src: host(rng),
                dst: host(rng),
                rate_pps: (30.0 + rng.random::<f64>() * 50.0) * s,
                duration_s: dur * (0.1 + rng.random::<f64>() * 0.25),
            });
        }
        // NetBIOS background probing (constant through the 2000s).
        for _ in 0..Poisson::new(1.0).sample(rng).min(3) {
            specs.push(AnomalySpec::NetbiosProbe {
                prober: host(rng),
                probes: (250.0 * s) as usize + 50,
                rate_pps: 25.0 + rng.random::<f64>() * 30.0,
            });
        }
        // Blaster: released 2003-08-11; hot until early 2004.
        let blaster = worm_intensity(2003.6, 2004.1, fy);
        for _ in 0..Poisson::new(blaster).sample(rng).min(5) {
            specs.push(AnomalySpec::BlasterWorm {
                infected: host(rng),
                scans: (500.0 * s) as usize + 100,
                rate_pps: 40.0 + rng.random::<f64>() * 60.0,
            });
        }
        // Sasser: released 2004-04-30; hot until end of 2004.
        let sasser = worm_intensity(2004.33, 2004.95, fy);
        for _ in 0..Poisson::new(sasser).sample(rng).min(5) {
            specs.push(AnomalySpec::SasserWorm {
                infected: host(rng),
                scans: (500.0 * s) as usize + 100,
                rate_pps: 40.0 + rng.random::<f64>() * 60.0,
            });
        }
        // Flash crowds: rare, benign.
        for _ in 0..Poisson::new(0.4).sample(rng).min(2) {
            specs.push(AnomalySpec::FlashCrowd {
                server: host(rng),
                flows: (40.0 * s) as usize + 15,
                duration_s: dur * (0.3 + rng.random::<f64>() * 0.4),
            });
        }
        // Elephant flows: grow with the p2p era.
        let elephant_rate = 0.4
            + if fy > 2006.5 {
                1.6
            } else {
                0.2 * (fy - 2001.0) / 5.0
            };
        for _ in 0..Poisson::new(elephant_rate).sample(rng).min(4) {
            specs.push(AnomalySpec::ElephantFlow {
                packets: ((600.0 + rng.random::<f64>() * 1200.0) * s) as usize,
            });
        }
        specs
    }
}

/// Worm epoch intensity at fractional year `fy`: 0 before `release`,
/// a hot outbreak phase (rate 3) until `hot_until`, then a slowly
/// decaying residual floored at 0.25 — worms kept scanning the
/// Internet for years (paper Fig. 8(b)). Public so the longitudinal
/// benchmark can reason about epoch boundaries and tests can pin the
/// shape.
pub fn worm_intensity(release: f64, hot_until: f64, fy: f64) -> f64 {
    if fy < release {
        0.0
    } else if fy < hot_until {
        3.0
    } else {
        (1.2 * (-0.8 * (fy - hot_until)).exp()).max(0.25)
    }
}

/// The first `n` days of a month (the paper samples the first week of
/// every month for the similarity-estimator study).
pub fn first_days_of_month(year: u16, month: u8, n: u8) -> Vec<TraceDate> {
    (1..=n.min(28))
        .map(|d| TraceDate::new(year, month, d))
        .collect()
}

/// `days_per_month` sample days for every month in `[from_year,
/// to_year]` — the workload grid used by the figure benches.
pub fn sample_days(from_year: u16, to_year: u16, days_per_month: u8) -> Vec<TraceDate> {
    let mut out = Vec::new();
    for y in from_year..=to_year {
        for m in 1..=12u8 {
            out.extend(first_days_of_month(y, m, days_per_month));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomalies::AnomalyKind;

    fn sim() -> ArchiveSimulator {
        ArchiveSimulator::new(ArchiveConfig::default())
    }

    #[test]
    fn per_day_configs_are_deterministic() {
        let d = TraceDate::new(2005, 3, 14);
        let a = sim().config_for(d);
        let b = sim().config_for(d);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.background_pps, b.background_pps);
        assert_eq!(a.anomalies.len(), b.anomalies.len());
    }

    #[test]
    fn different_days_differ() {
        let a = sim().config_for(TraceDate::new(2005, 3, 14));
        let b = sim().config_for(TraceDate::new(2005, 3, 15));
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn link_upgrades_raise_rates() {
        let before = sim().config_for(TraceDate::new(2006, 6, 1));
        let after = sim().config_for(TraceDate::new(2006, 7, 10));
        let after2 = sim().config_for(TraceDate::new(2008, 7, 10));
        assert!(after.background_pps > before.background_pps * 1.4);
        assert!(after2.background_pps > after.background_pps);
    }

    #[test]
    fn no_worms_before_release() {
        // Sample many pre-outbreak days: no Blaster/Sasser anywhere.
        for day in sample_days(2001, 2002, 3) {
            let cfg = sim().config_for(day);
            assert!(cfg
                .anomalies
                .iter()
                .all(|a| !matches!(a.kind(), AnomalyKind::BlasterWorm | AnomalyKind::SasserWorm)));
        }
    }

    #[test]
    fn outbreaks_produce_worms() {
        let blaster_days: usize = first_days_of_month(2003, 9, 28)
            .into_iter()
            .map(|d| {
                sim()
                    .config_for(d)
                    .anomalies
                    .iter()
                    .filter(|a| a.kind() == AnomalyKind::BlasterWorm)
                    .count()
            })
            .sum();
        assert!(
            blaster_days > 20,
            "only {blaster_days} Blaster instances in Sep 2003"
        );
        let sasser_days: usize = first_days_of_month(2004, 6, 28)
            .into_iter()
            .map(|d| {
                sim()
                    .config_for(d)
                    .anomalies
                    .iter()
                    .filter(|a| a.kind() == AnomalyKind::SasserWorm)
                    .count()
            })
            .sum();
        assert!(
            sasser_days > 20,
            "only {sasser_days} Sasser instances in Jun 2004"
        );
    }

    #[test]
    fn worm_intensity_shape_is_zero_hot_then_decaying() {
        // Zero strictly before release.
        assert_eq!(worm_intensity(2003.6, 2004.1, 2001.0), 0.0);
        assert_eq!(worm_intensity(2003.6, 2004.1, 2003.599), 0.0);
        // Hot phase is flat at 3.
        assert_eq!(worm_intensity(2003.6, 2004.1, 2003.6), 3.0);
        assert_eq!(worm_intensity(2003.6, 2004.1, 2004.0), 3.0);
        // Residual: monotonically decaying below the hot rate, never
        // below the 0.25 floor.
        let tail: Vec<f64> = [2004.1, 2004.5, 2005.0, 2006.0, 2009.0]
            .iter()
            .map(|&fy| worm_intensity(2003.6, 2004.1, fy))
            .collect();
        assert!(tail[0] < 3.0);
        assert!(tail.windows(2).all(|w| w[0] >= w[1]), "{tail:?}");
        assert!(tail.iter().all(|&v| v >= 0.25), "{tail:?}");
        assert_eq!(worm_intensity(2003.6, 2004.1, 2030.0), 0.25);
    }

    #[test]
    fn subset_regeneration_equals_full_sweep() {
        // Any day regenerated alone must be bit-identical to the same
        // day produced during a multi-day sweep — per-day seeds
        // derive only from (base_seed, date), never from generation
        // order. This is what lets the longitudinal benchmark sample
        // sparse day subsets of the archive.
        let sweep_sim = ArchiveSimulator::new(ArchiveConfig {
            scale: 0.3,
            ..Default::default()
        });
        let days = [
            TraceDate::new(2003, 8, 12),
            TraceDate::new(2004, 5, 10),
            TraceDate::new(2006, 8, 1),
        ];
        let sweep: Vec<_> = days.iter().map(|&d| sweep_sim.generate(d)).collect();
        for (i, &day) in days.iter().enumerate() {
            let alone = ArchiveSimulator::new(ArchiveConfig {
                scale: 0.3,
                ..Default::default()
            })
            .generate(day);
            assert_eq!(
                alone.trace.packets, sweep[i].trace.packets,
                "packets diverged for {day}"
            );
            assert_eq!(
                alone.truth.tags(),
                sweep[i].truth.tags(),
                "truth tags diverged for {day}"
            );
            assert_eq!(
                alone.truth.anomalies().len(),
                sweep[i].truth.anomalies().len()
            );
        }
    }

    #[test]
    fn worm_tail_persists_after_outbreak() {
        // Residual scanning through 2006 (paper Fig. 8(b)).
        let residual: usize = sample_days(2006, 2006, 2)
            .into_iter()
            .map(|d| {
                sim()
                    .config_for(d)
                    .anomalies
                    .iter()
                    .filter(|a| {
                        matches!(a.kind(), AnomalyKind::SasserWorm | AnomalyKind::BlasterWorm)
                    })
                    .count()
            })
            .sum();
        assert!(residual > 3, "worm tail vanished: {residual}");
    }

    #[test]
    fn p2p_share_grows_over_years() {
        let early = sim().config_for(TraceDate::new(2001, 5, 1)).p2p_share;
        let mid = sim().config_for(TraceDate::new(2005, 5, 1)).p2p_share;
        let late = sim().config_for(TraceDate::new(2008, 5, 1)).p2p_share;
        assert!(early < mid && mid < late, "{early} {mid} {late}");
    }

    #[test]
    fn elephants_more_common_post_2007() {
        let count = |y: u16| -> usize {
            sample_days(y, y, 3)
                .into_iter()
                .map(|d| {
                    sim()
                        .config_for(d)
                        .anomalies
                        .iter()
                        .filter(|a| a.kind() == AnomalyKind::ElephantFlow)
                        .count()
                })
                .sum()
        };
        assert!(
            count(2008) > count(2002),
            "{} vs {}",
            count(2008),
            count(2002)
        );
    }

    #[test]
    fn generates_a_day_end_to_end() {
        let t = sim().generate(TraceDate::new(2004, 6, 3));
        assert!(t.trace.len() > 5_000);
        assert!(!t.truth.anomalies().is_empty());
        assert_eq!(t.trace.meta.date, TraceDate::new(2004, 6, 3));
    }

    #[test]
    fn sampling_helpers_shape() {
        assert_eq!(first_days_of_month(2004, 2, 7).len(), 7);
        assert_eq!(sample_days(2001, 2009, 2).len(), 9 * 12 * 2);
        let days = sample_days(2003, 2003, 1);
        assert_eq!(days.len(), 12);
        assert!(days.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        ArchiveSimulator::new(ArchiveConfig {
            scale: 0.0,
            ..Default::default()
        });
    }
}
