//! # mawilab-synth
//!
//! A deterministic, seeded substitute for the MAWI archive.
//!
//! The paper labels nine years of real trans-Pacific backbone traces.
//! Those traces cannot ship with this reproduction, so this crate
//! synthesises MAWI-*like* traffic with the properties the MAWILab
//! methodology actually depends on (DESIGN.md §2):
//!
//! * heavy-tailed, application-structured **background traffic**
//!   (Zipf host popularity, log-normal/Pareto flow sizes, a dated
//!   application mix whose peer-to-peer share grows over the years);
//! * a diverse, overlapping **anomaly mix** covering every class the
//!   paper's Table-1 heuristics name — Sasser/Blaster/NetBIOS worm
//!   scanning, RPC/SMB probes, ping floods, SYN floods, port scans,
//!   plus the benign-but-odd traffic (flash crowds, elephant flows)
//!   that stresses the combiner;
//! * a **longitudinal calendar** (2001–2009) with the real archive's
//!   link upgrades and worm-outbreak epochs (Blaster from Aug 2003,
//!   Sasser from May 2004), so the time-series figures reproduce their
//!   shape;
//! * per-packet **ground truth** — which the real archive famously
//!   lacks — enabling the precision/recall validation the original
//!   authors could not run.
//!
//! Everything is deterministic given a seed: the same
//! [`SynthConfig`]/[`ArchiveSimulator`] inputs always produce the same
//! bytes, which the test suite relies on.

#![forbid(unsafe_code)]

pub mod anomalies;
pub mod archive;
pub mod background;
pub mod config;
pub mod sharded;
pub mod truth;

pub use anomalies::{AnomalyKind, AnomalySpec};
pub use archive::{worm_intensity, ArchiveConfig, ArchiveSimulator};
pub use background::{BackgroundModel, HostModel};
pub use config::SynthConfig;
pub use sharded::{SynthSource, GEN_BIN_US};
pub use truth::{AnomalyRecord, GroundTruth, LabeledTrace};

use mawilab_model::TraceChunker;

/// End-to-end trace generator: background + anomalies + ground truth.
///
/// Generation is sharded (`crate::sharded`): every anomaly and every
/// [`GEN_BIN_US`]-wide background bin draws from its own
/// counter-derived RNG stream, so the units generate independently —
/// fanned out across threads by [`generate`](Self::generate), bin by
/// bin without materialising the day by [`stream`](Self::stream).
/// [`generate_sequential`](Self::generate_sequential) is the retained
/// in-order reference; all paths are byte-identical to it at any
/// `MAWILAB_THREADS` (`tests/synth_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: SynthConfig,
}

impl TraceGenerator {
    /// Creates a generator for one trace.
    pub fn new(config: SynthConfig) -> Self {
        TraceGenerator { config }
    }

    /// Generates the trace and its ground truth through the sharded
    /// engine (anomalies + background bins fanned out through
    /// `mawilab-exec`, honoring `MAWILAB_THREADS`). Deterministic in
    /// the config (seed included) and thread-count invariant.
    pub fn generate(&self) -> LabeledTrace {
        sharded::generate_sharded(&self.config, usize::MAX)
    }

    /// [`generate`](Self::generate) with an explicit worker cap on the
    /// fan-outs (`1` = fully in-line). Lets benchmarks sweep effective
    /// worker counts without mutating the process-wide
    /// `MAWILAB_THREADS`; the output is identical at every cap.
    pub fn generate_capped(&self, cap: usize) -> LabeledTrace {
        sharded::generate_sharded(&self.config, cap)
    }

    /// The sequential reference generator: every unit generated
    /// strictly in canonical order on the calling thread, merged by
    /// one global stable sort. Kept as the equivalence oracle for the
    /// sharded engine (mirroring `build_graph_sequential` in the
    /// similarity crate) and as the baseline of the generation
    /// throughput benchmark.
    pub fn generate_sequential(&self) -> LabeledTrace {
        sharded::generate_sequential(&self.config)
    }

    /// Streams the trace chunk-natively: a [`SynthSource`] generates
    /// background bins lazily and emits time-binned
    /// [`mawilab_model::PacketChunk`]s directly, so the day is never
    /// materialised. The chunk concatenation is byte-identical to
    /// [`generate`](Self::generate) at any `bin_us`. Ground-truth
    /// records are available via [`SynthSource::records`]; per-chunk
    /// tags via [`SynthSource::chunk_tags`].
    pub fn stream(&self, bin_us: u64) -> SynthSource {
        SynthSource::new(&self.config, bin_us)
    }

    /// Like [`stream`](Self::stream), but materialises the day once to
    /// return its full ground truth next to a rewindable chunk source
    /// — for consumers that need per-packet truth up front (e.g.
    /// precision/recall scoring of streamed labels).
    pub fn stream_labeled(&self, bin_us: u64) -> (TraceChunker, GroundTruth) {
        let lt = self.generate();
        (TraceChunker::new(lt.trace, bin_us), lt.truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_model::TraceDate;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default().with_seed(77);
        let a = TraceGenerator::new(cfg.clone()).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a.trace.packets, b.trace.packets);
        assert_eq!(a.truth.tags(), b.truth.tags());
    }

    #[test]
    fn sharded_engine_matches_sequential_oracle() {
        // The full sweep (seeds × bin widths × thread counts) lives in
        // tests/synth_equivalence.rs; this is the fast in-crate guard.
        let generator = TraceGenerator::new(SynthConfig::default().with_seed(41));
        let sharded = generator.generate();
        let oracle = generator.generate_sequential();
        assert_eq!(sharded.trace.packets, oracle.trace.packets);
        assert_eq!(sharded.truth.tags(), oracle.truth.tags());
        for cap in [1, 2, 5] {
            let capped = generator.generate_capped(cap);
            assert_eq!(capped.trace.packets, oracle.trace.packets, "cap {cap}");
        }
    }

    #[test]
    fn stream_concatenation_matches_generate() {
        use mawilab_model::{collect_packets, PacketSource};
        let generator = TraceGenerator::new(SynthConfig::default().with_seed(23));
        let batch = generator.generate();
        let mut source = generator.stream(2_500_000);
        assert_eq!(collect_packets(&mut source).unwrap(), batch.trace.packets);
        // Rewind replays the identical stream, and the streamed ground
        // truth equals the batch truth.
        source.rewind().unwrap();
        let truth = source.drain_truth().unwrap();
        assert_eq!(truth.tags(), batch.truth.tags());
        assert_eq!(truth.anomalies().len(), batch.truth.anomalies().len());
    }

    #[test]
    fn stream_chunks_cover_the_generated_trace() {
        use mawilab_model::PacketSource;
        let cfg = SynthConfig::default().with_seed(77);
        let total = TraceGenerator::new(cfg.clone()).generate().trace.len();
        let mut source = TraceGenerator::new(cfg).stream(5_000_000);
        let mut seen = 0usize;
        let mut peak = 0usize;
        while let Some(chunk) = source.next_chunk().unwrap() {
            seen += chunk.len();
            peak = peak.max(chunk.len());
        }
        assert_eq!(seen, total);
        assert!(peak < total, "single chunk held the whole trace");
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(SynthConfig::default().with_seed(1)).generate();
        let b = TraceGenerator::new(SynthConfig::default().with_seed(2)).generate();
        assert_ne!(a.trace.packets, b.trace.packets);
    }

    #[test]
    fn packets_are_sorted_and_inside_window() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(3)).generate();
        let w = t.trace.meta.window();
        assert!(t.trace.packets.windows(2).all(|p| p[0].ts_us <= p[1].ts_us));
        assert!(t.trace.packets.iter().all(|p| w.contains(p.ts_us)));
    }

    #[test]
    fn tags_align_with_packets() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(4)).generate();
        assert_eq!(t.truth.tags().len(), t.trace.len());
    }

    #[test]
    fn anomaly_records_cover_tagged_packets() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(5)).generate();
        let tagged = t.truth.tags().iter().filter(|x| x.is_some()).count();
        let recorded: usize = t.truth.anomalies().iter().map(|r| r.packet_count).sum();
        assert_eq!(tagged, recorded);
        assert!(!t.truth.anomalies().is_empty());
    }

    #[test]
    fn trace_has_meaningful_volume() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(6)).generate();
        assert!(t.trace.len() > 1000, "only {} packets", t.trace.len());
    }

    #[test]
    fn dates_flow_into_metadata() {
        let cfg = SynthConfig {
            date: TraceDate::new(2008, 2, 7),
            ..Default::default()
        };
        let t = TraceGenerator::new(cfg).generate();
        assert_eq!(t.trace.meta.date, TraceDate::new(2008, 2, 7));
        assert_eq!(t.trace.meta.era, mawilab_model::LinkEra::Full150Mbps);
    }
}
