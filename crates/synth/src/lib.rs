//! # mawilab-synth
//!
//! A deterministic, seeded substitute for the MAWI archive.
//!
//! The paper labels nine years of real trans-Pacific backbone traces.
//! Those traces cannot ship with this reproduction, so this crate
//! synthesises MAWI-*like* traffic with the properties the MAWILab
//! methodology actually depends on (DESIGN.md §2):
//!
//! * heavy-tailed, application-structured **background traffic**
//!   (Zipf host popularity, log-normal/Pareto flow sizes, a dated
//!   application mix whose peer-to-peer share grows over the years);
//! * a diverse, overlapping **anomaly mix** covering every class the
//!   paper's Table-1 heuristics name — Sasser/Blaster/NetBIOS worm
//!   scanning, RPC/SMB probes, ping floods, SYN floods, port scans,
//!   plus the benign-but-odd traffic (flash crowds, elephant flows)
//!   that stresses the combiner;
//! * a **longitudinal calendar** (2001–2009) with the real archive's
//!   link upgrades and worm-outbreak epochs (Blaster from Aug 2003,
//!   Sasser from May 2004), so the time-series figures reproduce their
//!   shape;
//! * per-packet **ground truth** — which the real archive famously
//!   lacks — enabling the precision/recall validation the original
//!   authors could not run.
//!
//! Everything is deterministic given a seed: the same
//! [`SynthConfig`]/[`ArchiveSimulator`] inputs always produce the same
//! bytes, which the test suite relies on.

pub mod anomalies;
pub mod archive;
pub mod background;
pub mod config;
pub mod truth;

pub use anomalies::{AnomalyKind, AnomalySpec};
pub use archive::{worm_intensity, ArchiveConfig, ArchiveSimulator};
pub use background::HostModel;
pub use config::SynthConfig;
pub use truth::{AnomalyRecord, GroundTruth, LabeledTrace};

use mawilab_model::{Trace, TraceChunker, TraceMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// End-to-end trace generator: background + anomalies + ground truth.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: SynthConfig,
}

impl TraceGenerator {
    /// Creates a generator for one trace.
    pub fn new(config: SynthConfig) -> Self {
        TraceGenerator { config }
    }

    /// Generates the trace and its ground truth. Deterministic in the
    /// config (seed included).
    pub fn generate(&self) -> LabeledTrace {
        let cfg = &self.config;
        let meta = TraceMeta {
            date: cfg.date,
            duration_s: cfg.duration_s,
            era: mawilab_model::LinkEra::for_date(cfg.date),
            samplepoint: cfg.samplepoint.clone(),
        };
        let window = meta.window();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hosts = HostModel::new(cfg, &mut rng);

        let mut tagged: Vec<(mawilab_model::Packet, u32)> = Vec::new();
        background::generate_background(cfg, &hosts, window, &mut rng, &mut tagged);

        let mut records = Vec::new();
        for (i, spec) in cfg.anomalies.iter().enumerate() {
            let id = (i + 1) as u32; // 0 = background
            let record = spec.build(id, window, &hosts, &mut rng, &mut tagged);
            records.push(record);
        }

        // Sort packets and tags together by time.
        tagged.sort_by_key(|(p, _)| p.ts_us);
        let mut packets = Vec::with_capacity(tagged.len());
        let mut tags = Vec::with_capacity(tagged.len());
        for (p, t) in tagged {
            packets.push(p);
            tags.push(if t == 0 { None } else { Some(t) });
        }
        // Recount per-anomaly packets after generation (builders report
        // their own counts; verify against tags in debug builds).
        debug_assert_eq!(
            tags.iter().filter(|t| t.is_some()).count(),
            records.iter().map(|r| r.packet_count).sum::<usize>(),
        );

        LabeledTrace {
            trace: Trace::new(meta, packets),
            truth: GroundTruth::new(tags, records),
        }
    }

    /// Generates the trace and wraps it as a chunked
    /// [`mawilab_model::PacketSource`], so benches and tests can
    /// exercise the streaming pipeline without temp files. The ground
    /// truth is dropped; use [`stream_labeled`](Self::stream_labeled)
    /// to keep it.
    pub fn stream(&self, bin_us: u64) -> TraceChunker {
        TraceChunker::new(self.generate().trace, bin_us)
    }

    /// Like [`stream`](Self::stream), but also returns the ground
    /// truth for precision/recall scoring of the streamed labels.
    pub fn stream_labeled(&self, bin_us: u64) -> (TraceChunker, GroundTruth) {
        let lt = self.generate();
        (TraceChunker::new(lt.trace, bin_us), lt.truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_model::TraceDate;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default().with_seed(77);
        let a = TraceGenerator::new(cfg.clone()).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a.trace.packets, b.trace.packets);
        assert_eq!(a.truth.tags(), b.truth.tags());
    }

    #[test]
    fn stream_chunks_cover_the_generated_trace() {
        use mawilab_model::PacketSource;
        let cfg = SynthConfig::default().with_seed(77);
        let total = TraceGenerator::new(cfg.clone()).generate().trace.len();
        let mut source = TraceGenerator::new(cfg).stream(5_000_000);
        let mut seen = 0usize;
        let mut peak = 0usize;
        while let Some(chunk) = source.next_chunk().unwrap() {
            seen += chunk.len();
            peak = peak.max(chunk.len());
        }
        assert_eq!(seen, total);
        assert!(peak < total, "single chunk held the whole trace");
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(SynthConfig::default().with_seed(1)).generate();
        let b = TraceGenerator::new(SynthConfig::default().with_seed(2)).generate();
        assert_ne!(a.trace.packets, b.trace.packets);
    }

    #[test]
    fn packets_are_sorted_and_inside_window() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(3)).generate();
        let w = t.trace.meta.window();
        assert!(t.trace.packets.windows(2).all(|p| p[0].ts_us <= p[1].ts_us));
        assert!(t.trace.packets.iter().all(|p| w.contains(p.ts_us)));
    }

    #[test]
    fn tags_align_with_packets() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(4)).generate();
        assert_eq!(t.truth.tags().len(), t.trace.len());
    }

    #[test]
    fn anomaly_records_cover_tagged_packets() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(5)).generate();
        let tagged = t.truth.tags().iter().filter(|x| x.is_some()).count();
        let recorded: usize = t.truth.anomalies().iter().map(|r| r.packet_count).sum();
        assert_eq!(tagged, recorded);
        assert!(!t.truth.anomalies().is_empty());
    }

    #[test]
    fn trace_has_meaningful_volume() {
        let t = TraceGenerator::new(SynthConfig::default().with_seed(6)).generate();
        assert!(t.trace.len() > 1000, "only {} packets", t.trace.len());
    }

    #[test]
    fn dates_flow_into_metadata() {
        let cfg = SynthConfig {
            date: TraceDate::new(2008, 2, 7),
            ..Default::default()
        };
        let t = TraceGenerator::new(cfg).generate();
        assert_eq!(t.trace.meta.date, TraceDate::new(2008, 2, 7));
        assert_eq!(t.trace.meta.era, mawilab_model::LinkEra::Full150Mbps);
    }
}
