//! Configuration of one synthetic trace.

use crate::anomalies::AnomalySpec;
use mawilab_model::TraceDate;

/// Parameters of one synthetic trace.
///
/// The default is a laptop-friendly miniature of a MAWI 15-minute
/// capture: 60 s of ~400 pps background with a representative anomaly
/// mix. The archive simulator and the benches scale these up/down via
/// [`ArchiveConfig::scale`](crate::ArchiveConfig).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Archive day (affects metadata and the link era only; the
    /// calendar-driven mix lives in the archive simulator).
    pub date: TraceDate,
    /// Capture duration in seconds.
    pub duration_s: u32,
    /// Mean background packet rate (packets/second).
    pub background_pps: f64,
    /// Number of internal hosts (servers + clients).
    pub internal_hosts: usize,
    /// Number of external hosts.
    pub external_hosts: usize,
    /// Share of background flows that are peer-to-peer style
    /// (random high ports, heavy-tailed sizes). The paper notes this
    /// share grew over the years and degraded the Table-1 heuristics
    /// after 2007.
    pub p2p_share: f64,
    /// Anomalies to inject.
    pub anomalies: Vec<AnomalySpec>,
    /// Capture point name for the metadata.
    pub samplepoint: String,
}

impl SynthConfig {
    /// Returns the config with a different seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different anomaly list.
    pub fn with_anomalies(mut self, anomalies: Vec<AnomalySpec>) -> Self {
        self.anomalies = anomalies;
        self
    }

    /// Returns the config with a different duration.
    pub fn with_duration(mut self, duration_s: u32) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Returns the config with a different background rate.
    pub fn with_background_pps(mut self, pps: f64) -> Self {
        self.background_pps = pps;
        self
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 1,
            date: TraceDate::new(2004, 6, 2),
            duration_s: 60,
            background_pps: 400.0,
            internal_hosts: 300,
            external_hosts: 1500,
            p2p_share: 0.15,
            anomalies: AnomalySpec::representative_mix(),
            samplepoint: "B".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nontrivial() {
        let c = SynthConfig::default();
        assert!(c.duration_s > 0);
        assert!(c.background_pps > 0.0);
        assert!(!c.anomalies.is_empty());
    }

    #[test]
    fn builders_modify_fields() {
        let c = SynthConfig::default()
            .with_seed(9)
            .with_duration(30)
            .with_background_pps(100.0)
            .with_anomalies(vec![]);
        assert_eq!(c.seed, 9);
        assert_eq!(c.duration_s, 30);
        assert_eq!(c.background_pps, 100.0);
        assert!(c.anomalies.is_empty());
    }
}
