//! Sharded, chunk-native trace generation.
//!
//! The archive harness used to synthesise each day single-threaded
//! and materialise it before streaming — the bottleneck that capped
//! the longitudinal evaluation at a curated 13-day sample. This
//! module rebuilds generation around **independent RNG streams**:
//!
//! * every generation unit (the host population, the day-level
//!   modulation phases, each anomaly spec, each [`GEN_BIN_US`]-wide
//!   background bin) draws from its own counter-derived stream,
//!   seeded as `seed ⊕ day ⊕ stream-counter` ([`stream_rng`]) with no
//!   sequential RNG dependence between units;
//! * background bins therefore generate in any order — fanned out
//!   through the `mawilab-exec` helpers ([`TraceGenerator::generate`])
//!   or lazily, bin by bin, for the chunk-native [`SynthSource`] that
//!   feeds the streaming pipeline without ever materialising the day;
//! * the bin-by-bin loop run strictly in order *is* the sequential
//!   reference ([`TraceGenerator::generate_sequential`], mirroring
//!   `build_graph_sequential` from the similarity engine), and the
//!   sharded paths are **byte-identical** to it at every
//!   `MAWILAB_THREADS` (`tests/synth_equivalence.rs`).
//!
//! # The canonical packet order
//!
//! All paths agree on one total order: concatenate every anomaly's
//! emission (spec order), then every background bin (bin order), and
//! stable-sort by timestamp. Ties therefore break anomalies-first,
//! then by bin, then by emission order — the *canonical sequence
//! number* of a packet. The batch engine realises this order with a
//! bucketed counting sort (one bucket per generation bin, each bucket
//! sorted independently — smaller sorts, parallelisable); the
//! streaming source realises it with a `(timestamp, sequence)` min-
//! heap over flow spills. Both reduce to the same stable sort.
//!
//! [`stream_rng`]: self::stream_rng

use crate::anomalies::AnomalySpec;
use crate::background::{BackgroundModel, HostModel};
use crate::config::SynthConfig;
use crate::truth::{AnomalyRecord, GroundTruth, LabeledTrace};
use mawilab_model::{
    chunk_index, chunk_window, LinkEra, Packet, PacketChunk, PacketSource, SourceError,
    TaggedChunk, TaggedSource, TimeWindow, Trace, TraceMeta,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Width of one generation bin: the unit of background sharding. One
/// second gives a 60-bin fan-out on the default miniature day and
/// keeps per-bin flow spill (flows crossing the boundary) small. The
/// value is part of the corpus definition — changing it reshuffles
/// every generated trace (`crates/synth/tests/golden_corpus.rs` pins
/// this).
pub const GEN_BIN_US: u64 = 1_000_000;

/// Stream counters of the per-unit RNG derivation. Each unit kind
/// lives in its own counter space so streams never collide.
const STREAM_DAY: u64 = 0;
const STREAM_HOSTS: u64 = 1;
const STREAM_ANOMALY: u64 = 2;
const STREAM_BIN: u64 = 3;

/// The counter-derived RNG stream of one generation unit:
/// `seed ⊕ day ⊕ stream ⊕ index`, each component spread by its own
/// odd multiplier and whitened through `seed_from_u64`'s SplitMix64.
/// No stream's state depends on how much another stream consumed —
/// the property that makes bins generable in any order.
fn stream_rng(cfg: &SynthConfig, stream: u64, index: u64) -> StdRng {
    let day = cfg.date.days_since_epoch() as u64;
    StdRng::seed_from_u64(
        cfg.seed
            ^ day.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ stream.wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ index.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7),
    )
}

/// Everything derivable from the config before any packet exists: the
/// metadata, the host population, the day-level background model and
/// the bin grid. Shared by the batch engines and the streaming source.
#[derive(Debug, Clone)]
pub(crate) struct DayPlan {
    cfg: SynthConfig,
    meta: TraceMeta,
    window: TimeWindow,
    hosts: HostModel,
    background: BackgroundModel,
    n_bins: u64,
}

impl DayPlan {
    pub(crate) fn new(cfg: &SynthConfig) -> DayPlan {
        let meta = TraceMeta {
            date: cfg.date,
            duration_s: cfg.duration_s,
            era: LinkEra::for_date(cfg.date),
            samplepoint: cfg.samplepoint.clone(),
        };
        let window = meta.window();
        let hosts = HostModel::new(cfg, &mut stream_rng(cfg, STREAM_HOSTS, 0));
        let mut day_rng = stream_rng(cfg, STREAM_DAY, 0);
        let phases = (day_rng.random::<f64>(), day_rng.random::<f64>());
        let background = BackgroundModel::new(cfg, window, phases);
        let n_bins = window.len_us().div_ceil(GEN_BIN_US).max(1);
        DayPlan {
            cfg: cfg.clone(),
            meta,
            window,
            hosts,
            background,
            n_bins,
        }
    }

    fn bin_start(&self, b: u64) -> u64 {
        self.window.start_us + b * GEN_BIN_US
    }

    fn bin_window(&self, b: u64) -> TimeWindow {
        let start = self.bin_start(b);
        TimeWindow::new(start, (start + GEN_BIN_US).min(self.window.end_us))
    }

    /// Generates anomaly `i` from its own stream. Independent of every
    /// other unit.
    fn anomaly(&self, i: usize, spec: &AnomalySpec) -> (Vec<(Packet, u32)>, AnomalyRecord) {
        let mut rng = stream_rng(&self.cfg, STREAM_ANOMALY, i as u64);
        let mut out = Vec::new();
        let record = spec.build((i + 1) as u32, self.window, &self.hosts, &mut rng, &mut out);
        (out, record)
    }

    /// Generates background bin `b` from its own stream into `out`.
    fn background_bin(&self, b: u64, out: &mut Vec<(Packet, u32)>) {
        let mut rng = stream_rng(&self.cfg, STREAM_BIN, b);
        self.background
            .generate_bin(&self.hosts, self.bin_window(b), &mut rng, out);
    }

    /// Splits the time-sorted tagged sequence into the final trace +
    /// ground truth.
    fn finish(self, tagged: Vec<(Packet, u32)>, records: Vec<AnomalyRecord>) -> LabeledTrace {
        let mut packets = Vec::with_capacity(tagged.len());
        let mut tags = Vec::with_capacity(tagged.len());
        for (p, t) in tagged {
            packets.push(p);
            tags.push(if t == 0 { None } else { Some(t) });
        }
        debug_assert_eq!(
            tags.iter().filter(|t| t.is_some()).count(),
            records.iter().map(|r| r.packet_count).sum::<usize>(),
        );
        LabeledTrace {
            trace: Trace::new(self.meta, packets),
            truth: GroundTruth::new(tags, records),
        }
    }
}

/// The sequential reference: anomalies in spec order, then background
/// bins strictly in order, one global stable sort. The equivalence
/// oracle the sharded paths are tested against.
pub(crate) fn generate_sequential(cfg: &SynthConfig) -> LabeledTrace {
    let plan = DayPlan::new(cfg);
    let mut tagged: Vec<(Packet, u32)> = Vec::new();
    let mut records = Vec::new();
    for (i, spec) in cfg.anomalies.iter().enumerate() {
        let (packets, record) = plan.anomaly(i, spec);
        tagged.extend(packets);
        records.push(record);
    }
    for b in 0..plan.n_bins {
        plan.background_bin(b, &mut tagged);
    }
    // Stable: equal timestamps keep the canonical (anomalies, then
    // bin-order) sequence.
    tagged.sort_by_key(|(p, _)| p.ts_us);
    plan.finish(tagged, records)
}

/// The sharded engine: anomalies and background bins fan out through
/// `mawilab-exec` (capped at `cap` workers on top of the global
/// `MAWILAB_THREADS` policy), then a bucketed counting sort merges the
/// parts in canonical order — one bucket per generation bin, each
/// bucket stable-sorted independently (and in parallel), which equals
/// the oracle's global stable sort because buckets partition the
/// timestamp axis.
pub(crate) fn generate_sharded(cfg: &SynthConfig, cap: usize) -> LabeledTrace {
    let plan = DayPlan::new(cfg);
    let spec_ids: Vec<usize> = (0..cfg.anomalies.len()).collect();
    let anomaly_parts =
        mawilab_exec::par_map_capped(&spec_ids, cap, |&i| plan.anomaly(i, &cfg.anomalies[i]));
    let bin_ids: Vec<u64> = (0..plan.n_bins).collect();
    let bin_parts = mawilab_exec::par_map_capped(&bin_ids, cap, |&b| {
        let mut out = Vec::new();
        plan.background_bin(b, &mut out);
        out
    });

    let mut records = Vec::with_capacity(anomaly_parts.len());
    // Bucket by the generation bin of each *timestamp* (not the bin
    // that generated the packet — spills land in their true bucket).
    let n_buckets = plan.n_bins as usize;
    let bucket_of =
        |p: &Packet| chunk_index(plan.window.start_us, GEN_BIN_US, p.ts_us).min(plan.n_bins - 1);
    let mut counts = vec![0usize; n_buckets];
    for (part, _) in &anomaly_parts {
        for (p, _) in part {
            counts[bucket_of(p) as usize] += 1;
        }
    }
    for part in &bin_parts {
        for (p, _) in part {
            counts[bucket_of(p) as usize] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let mut buckets: Vec<Vec<(Packet, u32)>> =
        counts.iter().map(|&n| Vec::with_capacity(n)).collect();
    // Scatter in canonical order so each bucket's insertion order is
    // the canonical tie-break order. Emission is locally time-ordered,
    // so consecutive packets usually share a bucket — copy maximal
    // same-bucket runs instead of pushing one element at a time.
    let mut scatter = |part: &[(Packet, u32)]| {
        let mut i = 0;
        while i < part.len() {
            let b = bucket_of(&part[i].0) as usize;
            let mut j = i + 1;
            while j < part.len() && bucket_of(&part[j].0) as usize == b {
                j += 1;
            }
            buckets[b].extend_from_slice(&part[i..j]);
            i = j;
        }
    };
    for (part, record) in &anomaly_parts {
        records.push(record.clone());
        scatter(part);
    }
    for part in &bin_parts {
        scatter(part);
    }
    // Per-bucket stable sorts: ~bin-sized inputs instead of the whole
    // day, independent, fanned out.
    mawilab_exec::par_for_each_mut_capped(&mut buckets, cap, |bucket| {
        bucket.sort_by_key(|(p, _)| p.ts_us);
    });
    let mut tagged = Vec::with_capacity(total);
    for bucket in buckets {
        tagged.extend(bucket);
    }
    plan.finish(tagged, records)
}

/// One spilled (or anomaly) packet waiting for its emission chunk,
/// ordered by `(timestamp, canonical sequence)`.
#[derive(Debug, Clone)]
struct Queued {
    ts: u64,
    seq: u64,
    packet: Packet,
    tag: u32,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        (self.ts, self.seq) == (other.ts, other.seq)
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

/// Chunk-native [`PacketSource`] over the sharded generator: emits a
/// synthetic day directly as time-binned [`PacketChunk`]s without ever
/// materialising the trace.
///
/// Anomalies are day-spanning, so their packets (a small fraction of
/// the day) are generated up front; background — the bulk — is
/// generated lazily, one [`GEN_BIN_US`] bin at a time, with flows
/// crossing a bin boundary parked in a spill heap until their chunk
/// comes up. Peak live packets ≈ one generation bin + active spills +
/// the anomaly buffer, not the day.
///
/// The chunk concatenation is byte-identical to
/// [`TraceGenerator::generate`](crate::TraceGenerator::generate) at
/// any chunk width (`tests/synth_equivalence.rs`). Rewinding
/// regenerates — the streams are counter-derived, so replay is exact.
#[derive(Debug, Clone)]
pub struct SynthSource {
    plan: DayPlan,
    bin_us: u64,
    /// Anomaly packets sorted by `(ts, seq)`; `seq` is the canonical
    /// emission index, which orders anomalies before all background.
    anomalies: Vec<Queued>,
    records: Vec<AnomalyRecord>,
    a_pos: usize,
    next_bin: u64,
    next_seq: u64,
    pending: BinaryHeap<Reverse<Queued>>,
    buf: PacketChunk,
    buf_tags: Vec<Option<u32>>,
}

impl SynthSource {
    pub(crate) fn new(cfg: &SynthConfig, bin_us: u64) -> SynthSource {
        assert!(bin_us > 0, "chunk bin width must be positive");
        let plan = DayPlan::new(cfg);
        let mut anomalies = Vec::new();
        let mut records = Vec::new();
        for (i, spec) in cfg.anomalies.iter().enumerate() {
            let (packets, record) = plan.anomaly(i, spec);
            anomalies.extend(packets);
            records.push(record);
        }
        let mut anomalies: Vec<Queued> = anomalies
            .into_iter()
            .enumerate()
            .map(|(seq, (packet, tag))| Queued {
                ts: packet.ts_us,
                seq: seq as u64,
                packet,
                tag,
            })
            .collect();
        anomalies.sort_by_key(|q| (q.ts, q.seq));
        let first_bin_seq = anomalies.len() as u64;
        SynthSource {
            plan,
            bin_us,
            anomalies,
            records,
            a_pos: 0,
            next_bin: 0,
            next_seq: first_bin_seq,
            pending: BinaryHeap::new(),
            buf: PacketChunk::default(),
            buf_tags: Vec::new(),
        }
    }

    /// Ground-truth records of the day's injected anomalies (known
    /// before a single chunk is emitted).
    pub fn records(&self) -> &[AnomalyRecord] {
        &self.records
    }

    /// Per-packet anomaly tags of the most recently emitted chunk,
    /// aligned with its `packets` (`None` = background). The streaming
    /// counterpart of [`GroundTruth::tags`].
    pub fn chunk_tags(&self) -> &[Option<u32>] {
        &self.buf_tags
    }

    /// Drains the rest of the stream and returns the day's ground
    /// truth (tags in emission order + anomaly records). Call on a
    /// fresh or rewound source; rewind again afterwards to replay the
    /// packets.
    pub fn drain_truth(&mut self) -> Result<GroundTruth, SourceError> {
        let mut tags = Vec::new();
        while self.next_chunk()?.is_some() {
            tags.extend_from_slice(&self.buf_tags);
        }
        Ok(GroundTruth::new(tags, self.records.clone()))
    }

    /// Generates the next background bin into the spill heap.
    fn generate_next_bin(&mut self) {
        let mut out = Vec::new();
        self.plan.background_bin(self.next_bin, &mut out);
        for (packet, tag) in out {
            self.pending.push(Reverse(Queued {
                ts: packet.ts_us,
                seq: self.next_seq,
                packet,
                tag,
            }));
            self.next_seq += 1;
        }
        self.next_bin += 1;
    }
}

impl PacketSource for SynthSource {
    fn meta(&self) -> &TraceMeta {
        &self.plan.meta
    }

    fn bin_us(&self) -> u64 {
        self.bin_us
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        let w0 = self.plan.window.start_us;
        loop {
            let a_ts = self.anomalies.get(self.a_pos).map(|q| q.ts);
            let p_ts = self.pending.peek().map(|q| q.0.ts);
            let earliest = match (a_ts, p_ts) {
                (Some(a), Some(p)) => a.min(p),
                (Some(a), None) => a,
                (None, Some(p)) => p,
                (None, None) => {
                    if self.next_bin >= self.plan.n_bins {
                        return Ok(None);
                    }
                    self.generate_next_bin();
                    continue;
                }
            };
            // An ungenerated bin can only emit timestamps at or after
            // its start; pull bins in until none could preempt the
            // current minimum.
            if self.next_bin < self.plan.n_bins && self.plan.bin_start(self.next_bin) < earliest {
                self.generate_next_bin();
                continue;
            }
            // Emit the chunk holding `earliest`. Every generation bin
            // starting before the chunk end may still contribute.
            let k = chunk_index(w0, self.bin_us, earliest);
            let window = chunk_window(w0, self.bin_us, k);
            while self.next_bin < self.plan.n_bins
                && self.plan.bin_start(self.next_bin) < window.end_us
            {
                self.generate_next_bin();
            }
            self.buf.window = window;
            self.buf.packets.clear();
            self.buf_tags.clear();
            // Two-way merge of the anomaly run and the spill heap by
            // (ts, seq) — the canonical order. Both runs are already
            // (ts, seq)-sorted; only entries inside the chunk window
            // participate.
            loop {
                let a_key = self
                    .anomalies
                    .get(self.a_pos)
                    .filter(|q| q.ts < window.end_us)
                    .map(|q| (q.ts, q.seq));
                let p_key = self
                    .pending
                    .peek()
                    .filter(|q| q.0.ts < window.end_us)
                    .map(|q| (q.0.ts, q.0.seq));
                let from_anomalies = match (a_key, p_key) {
                    (Some(a), Some(p)) => a < p,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let q = if from_anomalies {
                    let q = self.anomalies[self.a_pos].clone();
                    self.a_pos += 1;
                    q
                } else {
                    self.pending.pop().expect("peeked").0
                };
                self.buf.packets.push(q.packet);
                self.buf_tags.push((q.tag != 0).then_some(q.tag));
            }
            if self.buf.packets.is_empty() {
                // Empty time bin (possible when all of a bin's flows
                // spilled elsewhere): skip it, like `TraceChunker`.
                continue;
            }
            return Ok(Some(&self.buf));
        }
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.a_pos = 0;
        self.next_bin = 0;
        self.next_seq = self.anomalies.len() as u64;
        self.pending.clear();
        self.buf = PacketChunk::default();
        self.buf_tags.clear();
        Ok(())
    }
}

impl TaggedSource for SynthSource {
    fn next_chunk_tagged(&mut self) -> Result<Option<TaggedChunk<'_>>, SourceError> {
        if self.next_chunk()?.is_none() {
            return Ok(None);
        }
        Ok(Some((&self.buf, &self.buf_tags)))
    }
}
