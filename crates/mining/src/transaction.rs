//! Transactions and items for traffic association-rule mining.

use mawilab_model::{Packet, TrafficRule};
use std::fmt;
use std::net::Ipv4Addr;

/// The four feature positions of the paper's rule tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// Source IPv4 address.
    SrcIp,
    /// Source port.
    SrcPort,
    /// Destination IPv4 address.
    DstIp,
    /// Destination port.
    DstPort,
}

impl Field {
    /// All fields in tuple order.
    pub const ALL: [Field; 4] = [Field::SrcIp, Field::SrcPort, Field::DstIp, Field::DstPort];
}

/// One (field, value) atom. Encoded compactly so itemsets hash fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// Which tuple position this item constrains.
    pub field: Field,
    /// The concrete value (IPv4 as u32, ports zero-extended).
    pub value: u32,
}

impl Item {
    /// Item for a source address.
    pub fn src_ip(ip: Ipv4Addr) -> Self {
        Item {
            field: Field::SrcIp,
            value: u32::from(ip),
        }
    }

    /// Item for a destination address.
    pub fn dst_ip(ip: Ipv4Addr) -> Self {
        Item {
            field: Field::DstIp,
            value: u32::from(ip),
        }
    }

    /// Item for a source port.
    pub fn src_port(p: u16) -> Self {
        Item {
            field: Field::SrcPort,
            value: p as u32,
        }
    }

    /// Item for a destination port.
    pub fn dst_port(p: u16) -> Self {
        Item {
            field: Field::DstPort,
            value: p as u32,
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.field {
            Field::SrcIp => write!(f, "src={}", Ipv4Addr::from(self.value)),
            Field::DstIp => write!(f, "dst={}", Ipv4Addr::from(self.value)),
            Field::SrcPort => write!(f, "sport={}", self.value),
            Field::DstPort => write!(f, "dport={}", self.value),
        }
    }
}

/// A transaction: the four feature items of one packet or flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    items: [Item; 4],
}

impl Transaction {
    /// Builds the transaction of a packet.
    pub fn of_packet(p: &Packet) -> Self {
        Transaction {
            items: [
                Item::src_ip(p.src),
                Item::src_port(p.sport),
                Item::dst_ip(p.dst),
                Item::dst_port(p.dport),
            ],
        }
    }

    /// Builds a transaction from explicit endpoint features.
    pub fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        Transaction {
            items: [
                Item::src_ip(src),
                Item::src_port(sport),
                Item::dst_ip(dst),
                Item::dst_port(dport),
            ],
        }
    }

    /// The four items.
    pub fn items(&self) -> &[Item; 4] {
        &self.items
    }

    /// Whether this transaction contains every item of `set`.
    pub fn contains_all(&self, set: &[Item]) -> bool {
        set.iter().all(|i| self.items.contains(i))
    }
}

/// Renders an itemset as the paper's wildcard 4-tuple.
pub fn itemset_to_rule(items: &[Item]) -> TrafficRule {
    let mut rule = TrafficRule::default();
    for item in items {
        match item.field {
            Field::SrcIp => rule.src = Some(Ipv4Addr::from(item.value)),
            Field::DstIp => rule.dst = Some(Ipv4Addr::from(item.value)),
            Field::SrcPort => rule.sport = Some(item.value as u16),
            Field::DstPort => rule.dport = Some(item.value as u16),
        }
    }
    rule
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_model::TcpFlags;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    #[test]
    fn transaction_of_packet_has_four_items() {
        let p = Packet::tcp(0, ip(1), 4444, ip(2), 80, TcpFlags::syn(), 40);
        let t = Transaction::of_packet(&p);
        assert_eq!(t.items().len(), 4);
        assert!(t.contains_all(&[Item::src_ip(ip(1)), Item::dst_port(80)]));
        assert!(!t.contains_all(&[Item::dst_port(443)]));
    }

    #[test]
    fn empty_itemset_is_contained_in_everything() {
        let t = Transaction::new(ip(1), 1, ip(2), 2);
        assert!(t.contains_all(&[]));
    }

    #[test]
    fn itemset_to_rule_maps_fields() {
        let rule = itemset_to_rule(&[Item::src_ip(ip(9)), Item::dst_port(53)]);
        assert_eq!(rule.src, Some(ip(9)));
        assert_eq!(rule.dport, Some(53));
        assert_eq!(rule.sport, None);
        assert_eq!(rule.dst, None);
        assert_eq!(rule.degree(), 2);
    }

    #[test]
    fn rule_degree_matches_itemset_size() {
        for k in 0..=4usize {
            let items: Vec<Item> = [
                Item::src_ip(ip(1)),
                Item::src_port(1000),
                Item::dst_ip(ip(2)),
                Item::dst_port(80),
            ][..k]
                .to_vec();
            assert_eq!(itemset_to_rule(&items).degree() as usize, k);
        }
    }

    #[test]
    fn item_display_is_readable() {
        assert_eq!(Item::src_ip(ip(7)).to_string(), "src=192.0.2.7");
        assert_eq!(Item::dst_port(80).to_string(), "dport=80");
    }

    #[test]
    fn items_order_by_field_then_value() {
        let mut v = [Item::dst_port(2), Item::src_ip(ip(1)), Item::dst_port(1)];
        v.sort();
        assert_eq!(v[0].field, Field::SrcIp);
        assert_eq!(v[1], Item::dst_port(1));
    }
}
