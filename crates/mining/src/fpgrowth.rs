//! FP-growth frequent-itemset mining (Han, Pei & Yin 2000) — the
//! large-community engine behind [`frequent_itemsets`].
//!
//! Apriori re-scans every transaction once per candidate level; on the
//! biggest communities that candidate × transaction product dominates
//! the mining wall time. FP-growth compresses the transactions into a
//! prefix tree ordered by item frequency (shared prefixes collapse
//! into shared paths) and mines it recursively through conditional
//! subtrees — each transaction is touched exactly once.
//!
//! The output contract is byte-identical to [`apriori`]: the same
//! itemsets with the same exact support counts, sorted by level then
//! lexicographically. Apriori's same-field join prune needs no
//! counterpart here — FP-growth only counts itemsets that actually
//! co-occur, and two values of one tuple field never share a
//! transaction. `tests/kernel_equivalence.rs` pins the equivalence
//! with a property test over random transaction sets and thresholds.

use crate::apriori::{apriori, FrequentItemset};
use crate::transaction::{Item, Transaction};
use std::collections::HashMap;

/// Transaction count at which [`frequent_itemsets`] switches from
/// Apriori to FP-growth. Below this the tree build costs more than the
/// rescans it avoids; the cutover depends only on input size, so the
/// engine choice is deterministic and thread-count invariant.
pub const FPGROWTH_CUTOVER: usize = 256;

/// Finds all frequent itemsets with support ≥ `min_support`, choosing
/// the engine by transaction count: [`apriori`] for small inputs,
/// [`fp_growth`] past [`FPGROWTH_CUTOVER`]. Output is identical either
/// way — deterministic order: by level, then lexicographically.
pub fn frequent_itemsets(transactions: &[Transaction], min_support: f64) -> Vec<FrequentItemset> {
    if transactions.len() >= FPGROWTH_CUTOVER {
        fp_growth(transactions, min_support)
    } else {
        apriori(transactions, min_support)
    }
}

/// One FP-tree node. Children are kept sorted by rank for binary
/// search; `next` threads the per-rank header chain (0 = end, the
/// root slot never appears in a chain).
struct FpNode {
    rank: u32,
    count: usize,
    parent: usize,
    children: Vec<(u32, usize)>,
    next: usize,
}

/// Per-rank header: chain head plus the total count of the item across
/// the tree — which *is* the item's (conditional) support.
#[derive(Clone, Copy)]
struct Header {
    head: usize,
    count: usize,
}

/// Frequency-ordered prefix tree over ranked transactions.
struct FpTree {
    nodes: Vec<FpNode>,
    headers: Vec<Header>,
}

impl FpTree {
    fn new(ranks: usize) -> Self {
        FpTree {
            nodes: vec![FpNode {
                rank: u32::MAX,
                count: 0,
                parent: 0,
                children: Vec::new(),
                next: 0,
            }],
            headers: vec![Header { head: 0, count: 0 }; ranks],
        }
    }

    /// Inserts one ranked path (ascending ranks — most frequent item
    /// first) carrying `count` transactions.
    fn insert(&mut self, path: &[u32], count: usize) {
        let mut cur = 0;
        for &r in path {
            cur = match self.nodes[cur]
                .children
                .binary_search_by_key(&r, |&(rk, _)| rk)
            {
                Ok(pos) => self.nodes[cur].children[pos].1,
                Err(pos) => {
                    let idx = self.nodes.len();
                    self.nodes.push(FpNode {
                        rank: r,
                        count: 0,
                        parent: cur,
                        children: Vec::new(),
                        next: self.headers[r as usize].head,
                    });
                    self.headers[r as usize].head = idx;
                    self.nodes[cur].children.insert(pos, (r, idx));
                    idx
                }
            };
            self.nodes[cur].count += count;
            self.headers[r as usize].count += count;
        }
    }
}

/// Finds **all** frequent itemsets with support ≥ `min_support`
/// (a fraction in `(0, 1]`) via FP-growth. Same output as [`apriori`]:
/// by level, then lexicographically by items.
pub fn fp_growth(transactions: &[Transaction], min_support: f64) -> Vec<FrequentItemset> {
    assert!(
        min_support > 0.0 && min_support <= 1.0,
        "support must be a fraction in (0,1]"
    );
    let n = transactions.len();
    if n == 0 {
        return Vec::new();
    }
    let min_count = ((min_support * n as f64).ceil() as usize).max(1);

    let mut counts: HashMap<Item, usize> = HashMap::new();
    for t in transactions {
        for &item in t.items() {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    // Rank frequent items by descending count, ties by ascending item
    // — any total order works, this one keeps the tree shallow.
    let mut ranked: Vec<(Item, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let item_of: Vec<Item> = ranked.iter().map(|&(i, _)| i).collect();
    let rank_of: HashMap<Item, u32> = item_of
        .iter()
        .enumerate()
        .map(|(r, &i)| (i, r as u32))
        .collect();

    let mut tree = FpTree::new(item_of.len());
    let mut path = Vec::with_capacity(4);
    for t in transactions {
        path.clear();
        path.extend(t.items().iter().filter_map(|i| rank_of.get(i).copied()));
        path.sort_unstable();
        if !path.is_empty() {
            tree.insert(&path, 1);
        }
    }

    let mut out = Vec::new();
    mine(&tree, &item_of, &[], min_count, &mut out);
    out.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then(a.items.cmp(&b.items))
    });
    out
}

/// Recursively mines `tree`: emits `suffix ∪ {item}` for every
/// frequent item, then descends into the item's conditional tree.
/// Each itemset surfaces exactly once — at the recursion path that
/// processes its items in rank order — with its exact global count.
fn mine(
    tree: &FpTree,
    item_of: &[Item],
    suffix: &[Item],
    min_count: usize,
    out: &mut Vec<FrequentItemset>,
) {
    for r in 0..item_of.len() {
        let total = tree.headers[r].count;
        if total < min_count {
            continue;
        }
        let mut items = suffix.to_vec();
        items.push(item_of[r]);
        items.sort_unstable();
        out.push(FrequentItemset {
            items: items.clone(),
            count: total,
        });
        // Conditional pattern base: ancestor paths of every node of
        // rank `r`, each weighted by that node's count.
        let mut base: Vec<(Vec<u32>, usize)> = Vec::new();
        let mut freq: HashMap<u32, usize> = HashMap::new();
        let mut node = tree.headers[r].head;
        while node != 0 {
            let n = &tree.nodes[node];
            let mut up = Vec::new();
            let mut p = n.parent;
            while p != 0 {
                up.push(tree.nodes[p].rank);
                p = tree.nodes[p].parent;
            }
            if !up.is_empty() {
                up.reverse();
                for &q in &up {
                    *freq.entry(q).or_insert(0) += n.count;
                }
                base.push((up, n.count));
            }
            node = n.next;
        }
        let mut kept: Vec<u32> = freq
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .map(|(q, _)| q)
            .collect();
        if kept.is_empty() {
            continue;
        }
        // Compact the surviving ranks to 0..k, preserving their order
        // so conditional paths stay rank-ascending.
        kept.sort_unstable();
        let remap: HashMap<u32, u32> = kept
            .iter()
            .enumerate()
            .map(|(i, &q)| (q, i as u32))
            .collect();
        let cond_items: Vec<Item> = kept.iter().map(|&q| item_of[q as usize]).collect();
        let mut cond = FpTree::new(kept.len());
        let mut mapped = Vec::with_capacity(4);
        for (up, count) in &base {
            mapped.clear();
            mapped.extend(up.iter().filter_map(|q| remap.get(q).copied()));
            if !mapped.is_empty() {
                cond.insert(&mapped, *count);
            }
        }
        mine(&cond, &cond_items, &items, min_count, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, d)
    }

    /// Pseudo-random transaction mix with heavy shared patterns.
    fn mixed(n: usize, seed: u64) -> Vec<Transaction> {
        let mut state = seed | 1;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % m) as u16
        };
        (0..n)
            .map(|_| {
                Transaction::new(
                    ip(next(4) as u8),
                    [80, 443, 53, 22, 1000 + next(50)][next(5) as usize],
                    ip(100 + next(3) as u8),
                    [80, 445, 2000 + next(40)][next(3) as usize],
                )
            })
            .collect()
    }

    #[test]
    fn matches_apriori_exactly() {
        for (n, seed) in [(10, 1), (60, 2), (300, 3), (800, 4)] {
            let txs = mixed(n, seed);
            for s in [0.05, 0.2, 0.5, 0.9] {
                assert_eq!(
                    fp_growth(&txs, s),
                    apriori(&txs, s),
                    "n={n} seed={seed} s={s}"
                );
            }
        }
    }

    #[test]
    fn identical_transactions_mine_all_subsets() {
        let txs: Vec<Transaction> = (0..5)
            .map(|_| Transaction::new(ip(1), 1234, ip(2), 80))
            .collect();
        let got = fp_growth(&txs, 0.2);
        // 4 singles + 6 pairs + 4 triples + 1 quad, all with count 5.
        assert_eq!(got.len(), 15);
        assert!(got.iter().all(|f| f.count == 5));
        assert_eq!(got, apriori(&txs, 0.2));
    }

    #[test]
    fn empty_transactions_mine_nothing() {
        assert!(fp_growth(&[], 0.2).is_empty());
    }

    #[test]
    fn dispatcher_switches_on_transaction_count() {
        // Both engines agree, so the dispatcher is observationally
        // identical on either side of the cutover.
        for n in [FPGROWTH_CUTOVER - 1, FPGROWTH_CUTOVER] {
            let txs = mixed(n, 9);
            assert_eq!(frequent_itemsets(&txs, 0.1), apriori(&txs, 0.1));
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_support_panics() {
        fp_growth(&[], 0.0);
    }
}
