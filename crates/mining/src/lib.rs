//! # mawilab-mining
//!
//! Association-rule mining over traffic feature tuples — the paper's
//! modified Apriori (§4.1.1).
//!
//! The paper summarises the traffic of each alarm community by mining
//! frequent feature combinations from its packets or flows. Each
//! packet/flow becomes a *transaction* of four items — source IP,
//! source port, destination IP, destination port — and Apriori
//! (Agrawal & Srikant 1994) finds all itemsets whose support exceeds a
//! threshold. Two modifications match the paper exactly:
//!
//! 1. the support threshold `s` is a **percentage** of the transaction
//!    count rather than an absolute count (the paper runs `s = 20%`),
//! 2. the reported *rules* are the **maximal** frequent itemsets,
//!    rendered as `<srcIP, sport, dstIP, dport>` patterns with
//!    wildcards for absent fields.
//!
//! Two community-quality metrics are derived from the rules
//! (paper §4.1.1):
//! * **rule degree** — mean number of concrete items per rule
//!   (range 0–4; 4 = highly specific traffic),
//! * **rule support** — fraction of the community's traffic covered by
//!   at least one rule.
//!
//! Two interchangeable engines mine the itemsets: the modified Apriori
//! (the retained seed algorithm and equivalence oracle) and FP-growth
//! ([`fpgrowth`]), which [`frequent_itemsets`] selects for large
//! communities. Both produce identical output — itemsets, counts, and
//! order — so everything downstream is engine-oblivious.

#![forbid(unsafe_code)]

pub mod apriori;
pub mod fpgrowth;
pub mod transaction;

pub use apriori::{apriori, mine_rules, FrequentItemset, MinedRules};
pub use fpgrowth::{fp_growth, frequent_itemsets, FPGROWTH_CUTOVER};
pub use transaction::{itemset_to_rule, Field, Item, Transaction};
