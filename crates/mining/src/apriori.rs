//! The modified Apriori algorithm (paper §4.1.1).
//!
//! Level-wise breadth-first search for frequent itemsets: level-1
//! counts single items, level-k candidates are joins of level-(k−1)
//! itemsets sharing a (k−2)-prefix, pruned by the Apriori property
//! (every subset of a frequent itemset is frequent). The support
//! threshold is expressed as a **fraction of transactions** — the
//! paper's modification — and the returned *rules* are the maximal
//! frequent itemsets.
//!
//! Transactions here always hold exactly four items (one per tuple
//! field), so the search depth is bounded by 4 and same-field item
//! pairs can be pruned immediately (a transaction never carries two
//! values of one field).

use crate::transaction::{itemset_to_rule, Item, Transaction};
use mawilab_model::TrafficRule;
use std::collections::HashMap;

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Items, sorted.
    pub items: Vec<Item>,
    /// Number of transactions containing all items.
    pub count: usize,
}

impl FrequentItemset {
    /// Support as a fraction of `n` transactions.
    pub fn support(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.count as f64 / n as f64
        }
    }
}

/// Finds **all** frequent itemsets with support ≥ `min_support`
/// (a fraction in `(0, 1]`). Deterministic output order: by level,
/// then lexicographically by items.
pub fn apriori(transactions: &[Transaction], min_support: f64) -> Vec<FrequentItemset> {
    assert!(
        min_support > 0.0 && min_support <= 1.0,
        "support must be a fraction in (0,1]"
    );
    let n = transactions.len();
    if n == 0 {
        return Vec::new();
    }
    // ceil(min_support * n), at least 1.
    let min_count = ((min_support * n as f64).ceil() as usize).max(1);

    // Level 1.
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for t in transactions {
        for &item in t.items() {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut level: Vec<FrequentItemset> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(item, count)| FrequentItemset {
            items: vec![item],
            count,
        })
        .collect();
    level.sort_by(|a, b| a.items.cmp(&b.items));

    let mut all = level.clone();
    // Levels 2..=4.
    while !level.is_empty() && level[0].items.len() < 4 {
        let prev: Vec<&Vec<Item>> = level.iter().map(|f| &f.items).collect();
        let prev_set: std::collections::HashSet<&[Item]> =
            prev.iter().map(|v| v.as_slice()).collect();
        let mut candidates: Vec<Vec<Item>> = Vec::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let a = &level[i].items;
                let b = &level[j].items;
                // Join on common (k-2)-prefix.
                if a[..a.len() - 1] != b[..b.len() - 1] {
                    continue;
                }
                let (last_a, last_b) = (a[a.len() - 1], b[b.len() - 1]);
                if last_a.field == last_b.field {
                    continue; // same-field values never co-occur
                }
                let mut cand = a.clone();
                cand.push(last_b);
                cand.sort();
                // Apriori prune: all (k-1)-subsets frequent.
                let all_subsets_frequent = (0..cand.len()).all(|skip| {
                    let sub: Vec<Item> = cand
                        .iter()
                        .enumerate()
                        .filter(|&(idx, _)| idx != skip)
                        .map(|(_, &it)| it)
                        .collect();
                    prev_set.contains(sub.as_slice())
                });
                if all_subsets_frequent {
                    candidates.push(cand);
                }
            }
        }
        candidates.sort();
        candidates.dedup();
        if candidates.is_empty() {
            break;
        }
        // Count candidates in one scan.
        let mut cand_counts = vec![0usize; candidates.len()];
        for t in transactions {
            for (ci, cand) in candidates.iter().enumerate() {
                if t.contains_all(cand) {
                    cand_counts[ci] += 1;
                }
            }
        }
        level = candidates
            .into_iter()
            .zip(cand_counts)
            .filter(|&(_, c)| c >= min_count)
            .map(|(items, count)| FrequentItemset { items, count })
            .collect();
        all.extend(level.iter().cloned());
    }
    all
}

/// The paper's community summary: maximal frequent itemsets rendered
/// as wildcard 4-tuples, plus the two efficiency metrics.
#[derive(Debug, Clone)]
pub struct MinedRules {
    /// Maximal frequent itemsets as `(rule, support count)`, ordered
    /// by descending support.
    pub rules: Vec<(TrafficRule, usize)>,
    /// Number of transactions mined.
    pub transaction_count: usize,
    /// Mean number of concrete items per rule (paper's *rule degree*,
    /// range 0–4; 0 when no rule was found).
    pub rule_degree: f64,
    /// Fraction of transactions matching at least one rule (paper's
    /// *rule support*, range 0–1).
    pub rule_support: f64,
}

/// Mines frequent itemsets and reduces the result to maximal itemsets
/// and metrics. `min_support` is the paper's `s` (fraction; the paper
/// uses 0.2). Mining goes through
/// [`frequent_itemsets`](crate::frequent_itemsets), which picks
/// Apriori or FP-growth by community size — the output is identical
/// either way.
pub fn mine_rules(transactions: &[Transaction], min_support: f64) -> MinedRules {
    let frequent = crate::fpgrowth::frequent_itemsets(transactions, min_support);
    // Maximal = not a strict subset of another frequent itemset.
    let mut maximal: Vec<&FrequentItemset> = Vec::new();
    for f in &frequent {
        let is_subset = frequent
            .iter()
            .any(|g| g.items.len() > f.items.len() && f.items.iter().all(|i| g.items.contains(i)));
        if !is_subset {
            maximal.push(f);
        }
    }
    let mut rules: Vec<(TrafficRule, usize, Vec<Item>)> = maximal
        .iter()
        .map(|f| (itemset_to_rule(&f.items), f.count, f.items.clone()))
        .collect();
    rules.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));

    let rule_degree = if rules.is_empty() {
        0.0
    } else {
        rules.iter().map(|(r, _, _)| r.degree() as f64).sum::<f64>() / rules.len() as f64
    };
    let covered = if rules.is_empty() {
        0
    } else {
        transactions
            .iter()
            .filter(|t| rules.iter().any(|(_, _, items)| t.contains_all(items)))
            .count()
    };
    let rule_support = if transactions.is_empty() {
        0.0
    } else {
        covered as f64 / transactions.len() as f64
    };

    MinedRules {
        rules: rules.into_iter().map(|(r, c, _)| (r, c)).collect(),
        transaction_count: transactions.len(),
        rule_degree,
        rule_support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, d)
    }

    /// 10 transactions: 6 from the same HTTP server flow pattern,
    /// 4 unrelated scans.
    fn http_heavy() -> Vec<Transaction> {
        let mut t = Vec::new();
        for i in 0..6u8 {
            // Same server, same dst port, varying clients/ports.
            t.push(Transaction::new(ip(1), 80, ip(100 + i), 1000 + i as u16));
        }
        for i in 0..4u8 {
            t.push(Transaction::new(
                ip(200 + i),
                4000 + i as u16,
                ip(50 + i),
                22,
            ));
        }
        t
    }

    #[test]
    fn finds_the_dominant_pattern() {
        let rules = mine_rules(&http_heavy(), 0.5);
        // <ip1, 80, *, *> describes 6/10 = 60% ≥ 50%.
        assert!(rules
            .rules
            .iter()
            .any(|(r, c)| r.src == Some(ip(1)) && r.sport == Some(80) && *c == 6));
    }

    #[test]
    fn support_threshold_is_respected() {
        let txs = http_heavy();
        for s in [0.1, 0.2, 0.5, 0.9] {
            let min_count = ((s * txs.len() as f64).ceil() as usize).max(1);
            for f in apriori(&txs, s) {
                assert!(f.count >= min_count, "itemset below threshold at s={s}");
                // Verify the count is truthful.
                let real = txs.iter().filter(|t| t.contains_all(&f.items)).count();
                assert_eq!(real, f.count);
            }
        }
    }

    #[test]
    fn all_subsets_of_frequent_are_frequent() {
        let txs = http_heavy();
        let frequent = apriori(&txs, 0.3);
        let as_set: std::collections::HashSet<Vec<Item>> =
            frequent.iter().map(|f| f.items.clone()).collect();
        for f in &frequent {
            if f.items.len() < 2 {
                continue;
            }
            for skip in 0..f.items.len() {
                let sub: Vec<Item> = f
                    .items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &x)| x)
                    .collect();
                assert!(as_set.contains(&sub), "missing subset of {:?}", f.items);
            }
        }
    }

    #[test]
    fn identical_transactions_mine_full_tuple() {
        let txs: Vec<Transaction> = (0..5)
            .map(|_| Transaction::new(ip(1), 1234, ip(2), 80))
            .collect();
        let rules = mine_rules(&txs, 0.2);
        assert_eq!(rules.rules.len(), 1);
        assert_eq!(rules.rule_degree, 4.0);
        assert_eq!(rules.rule_support, 1.0);
        assert_eq!(rules.rules[0].1, 5);
    }

    #[test]
    fn paper_rule_degree_example() {
        // Paper §4.1.1: rules <IPA,*,IPB,*> and <IPA,80,IPC,12345>
        // give degree (2+4)/2 = 3. Construct data producing exactly
        // those two maximal rules.
        let mut txs = Vec::new();
        // 10 transactions: IPA → IPB with varying ports (degree-2 rule).
        for i in 0..10u16 {
            txs.push(Transaction::new(ip(1), 100 + i, ip(2), 200 + i));
        }
        // 10 identical transactions IPA:80 → IPC:12345 (degree-4 rule).
        for _ in 0..10 {
            txs.push(Transaction::new(ip(1), 80, ip(3), 12345));
        }
        let rules = mine_rules(&txs, 0.4);
        assert_eq!(rules.rules.len(), 2, "rules: {:?}", rules.rules);
        assert!((rules.rule_degree - 3.0).abs() < 1e-12);
        assert_eq!(rules.rule_support, 1.0);
    }

    #[test]
    fn rule_support_counts_union_coverage() {
        // 4 covered by rule A, 4 by rule B, 2 by neither.
        let mut txs = Vec::new();
        for i in 0..4u8 {
            txs.push(Transaction::new(ip(1), 80, ip(10 + i), 1000 + i as u16));
        }
        for i in 0..4u8 {
            txs.push(Transaction::new(ip(2), 443, ip(20 + i), 2000 + i as u16));
        }
        txs.push(Transaction::new(ip(30), 1, ip(31), 2));
        txs.push(Transaction::new(ip(32), 3, ip(33), 4));
        let rules = mine_rules(&txs, 0.4);
        assert!(
            (rules.rule_support - 0.8).abs() < 1e-12,
            "{}",
            rules.rule_support
        );
    }

    #[test]
    fn maximal_rules_do_not_shadow_each_other() {
        let rules = mine_rules(&http_heavy(), 0.2);
        for (i, (a, _)) in rules.rules.iter().enumerate() {
            for (j, (b, _)) in rules.rules.iter().enumerate() {
                if i != j {
                    assert!(
                        !(a.generalizes(b) && a != b),
                        "rule {a} strictly generalizes {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_transactions_mine_nothing() {
        let rules = mine_rules(&[], 0.2);
        assert!(rules.rules.is_empty());
        assert_eq!(rules.rule_degree, 0.0);
        assert_eq!(rules.rule_support, 0.0);
    }

    #[test]
    fn support_one_requires_universal_items() {
        let txs = http_heavy();
        let frequent = apriori(&txs, 1.0);
        // No single feature appears in all 10 transactions.
        assert!(frequent.is_empty());
    }

    #[test]
    fn deterministic_ordering() {
        let a = mine_rules(&http_heavy(), 0.2);
        let b = mine_rules(&http_heavy(), 0.2);
        assert_eq!(a.rules, b.rules);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_support_panics() {
        apriori(&[], 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn above_one_support_panics() {
        apriori(&[], 1.5);
    }
}
