//! Minimal command-line flags shared by the experiment binaries.

/// Parsed experiment flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// First archive year (default 2001).
    pub year_from: u16,
    /// Last archive year inclusive (default 2009).
    pub year_to: u16,
    /// Sample days per month (default 2).
    pub days_per_month: u8,
    /// Traffic scale multiplier (default 1.0 = miniature traces).
    pub scale: f64,
    /// Output directory for CSV series (default `results`).
    pub out_dir: String,
    /// Figure panel selector (`a`, `b`, `c`, `d`; empty = all).
    pub panel: String,
    /// Extra mode flag (binary-specific, e.g. `--exclusive`).
    pub exclusive: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            year_from: 2001,
            year_to: 2009,
            days_per_month: 2,
            scale: 1.0,
            out_dir: "results".to_string(),
            panel: String::new(),
            exclusive: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, accepting:
    /// `--years FROM:TO`, `--days N`, `--scale X`, `--out DIR`,
    /// `--panel P`, `--exclusive`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut take = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--years" => {
                    let v = take();
                    let (a, b) = v.split_once(':').unwrap_or((v.as_str(), v.as_str()));
                    args.year_from = a.parse().expect("bad --years");
                    args.year_to = b.parse().expect("bad --years");
                }
                "--days" => args.days_per_month = take().parse().expect("bad --days"),
                "--scale" => args.scale = take().parse().expect("bad --scale"),
                "--out" => args.out_dir = take(),
                "--panel" => args.panel = take(),
                "--exclusive" => args.exclusive = true,
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        assert!(args.year_from <= args.year_to, "--years range inverted");
        args
    }

    /// The sample days this run covers.
    pub fn days(&self) -> Vec<mawilab_model::TraceDate> {
        mawilab_synth::archive::sample_days(self.year_from, self.year_to, self.days_per_month)
    }

    /// Whether a panel is selected (empty selector = all panels).
    pub fn wants_panel(&self, p: &str) -> bool {
        self.panel.is_empty() || self.panel == p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_cover_the_archive() {
        let a = Args::default();
        assert_eq!(a.days().len(), 9 * 12 * 2);
    }

    #[test]
    fn flags_parse() {
        let a = parse("--years 2003:2005 --days 1 --scale 0.5 --out /tmp/x --panel b --exclusive");
        assert_eq!((a.year_from, a.year_to), (2003, 2005));
        assert_eq!(a.days_per_month, 1);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.out_dir, "/tmp/x");
        assert!(a.wants_panel("b"));
        assert!(!a.wants_panel("a"));
        assert!(a.exclusive);
        assert_eq!(a.days().len(), 36);
    }

    #[test]
    fn single_year_shorthand() {
        let a = parse("--years 2004");
        assert_eq!((a.year_from, a.year_to), (2004, 2004));
    }

    #[test]
    fn empty_panel_wants_everything() {
        let a = parse("");
        assert!(a.wants_panel("a") && a.wants_panel("d"));
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_years_panic() {
        parse("--years 2009:2001");
    }
}
