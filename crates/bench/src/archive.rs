//! The archive-scale longitudinal benchmark behind the `archive` bin.
//!
//! Streams a day sample of the simulated 2001–2009 archive — the
//! curated 13-day default, or a **month-scale consecutive sweep**
//! (`--days N` / `--months`) spanning a link-era boundary — through
//! [`run_days_streaming`], reduces every day to a [`DaySummary`] plus
//! a throughput record, and writes `results/BENCH_archive.json` with
//! the longitudinal stability metrics ([`mawilab_eval::longitudinal`]:
//! churn, drift, monthly trajectory, era transitions, outbreak
//! response) next to the per-day performance trajectory and a
//! generation-throughput comparison of the sharded synth engine
//! against its sequential oracle. This is the repo's month-scale
//! answer to the operational question the paper's Figs. 7–8 raise: do
//! the labels stay put while the archive changes under the pipeline?
//!
//! The logic lives in the library (not the bin) so the smoke tests,
//! the thread-determinism suite and CI can run tiny-scale passes
//! in-process and assert the schema.

use crate::harness::{
    peak_rss_kb, run_days_streaming, run_days_streaming_two_pass, run_days_streaming_warm,
    run_days_streaming_wrapped, DayFailure, SourceWrap, StreamingDayContext,
};
use mawilab_combiner::{strategy_agreement, ConfidenceThresholds};
use mawilab_core::{PipelineConfig, StrategyKind, WarmState};
use mawilab_eval::ground_truth::DEFAULT_MIN_COVERAGE;
use mawilab_eval::{stability_report, DaySummary, GroundTruthMatcher, StabilityReport, WormStatus};
use mawilab_label::MawilabLabel;
use mawilab_model::{LinkEra, TraceDate, DEFAULT_CHUNK_US};
use mawilab_synth::{AnomalyKind, ArchiveConfig, ArchiveSimulator, TraceGenerator};
use std::collections::HashSet;

/// The pipeline configuration every archive sweep runs with: the
/// default pipeline plus the default dual confidence thresholds, so
/// labels carry a real abstention tier and the stability report's
/// `churn_confident` measures something. All four collectors (cold,
/// wrapped, two-pass oracle, warm) share this one function — the
/// oracle and determinism comparisons only hold if every path labels
/// under the same thresholds.
pub fn archive_config() -> PipelineConfig {
    PipelineConfig {
        confidence_thresholds: Some(ConfidenceThresholds::default()),
        ..PipelineConfig::default()
    }
}

/// Consecutive sampled days farther apart than this are epoch jumps
/// (era/outbreak boundaries), not day-over-day stability pairs, and
/// stay out of the churn/drift aggregates.
pub const MAX_STABILITY_GAP_DAYS: i64 = 7;

/// Worm epochs the benchmark tracks: name, anomaly kind, and real
/// release date (the epoch onset used for sampling context).
const WORMS: [(&str, AnomalyKind); 2] = [
    ("blaster", AnomalyKind::BlasterWorm),
    ("sasser", AnomalyKind::SasserWorm),
];

/// Default exponential decay of the warm sweep's carried baselines —
/// yesterday enters today's thresholds at this weight, the day before
/// at its square, and so on. 0.15 is the measured sweet spot on the
/// 61-day sweep: heavier coupling (0.35) makes day *k+1*'s thresholds
/// track day *k* closely enough that marginal alarms flicker and
/// pooled churn exceeds the cold sweep by ~0.08, while a near-zero
/// prior (0.05) perturbs thresholds without stabilising them
/// (excess ~0.036). At 0.15 the warm sweep's excess churn stays
/// under 0.02 with the estimate-stage speedup intact.
pub const DEFAULT_WARM_DECAY: f64 = 0.15;

/// Commit whose `results/BENCH_archive.json` the warm block's
/// `speedup_vs_committed` is measured against (the last cold-only
/// baseline, 61-day default sweep at scale 1).
pub const BASELINE_COMMIT: &str = "295383b (PR 7)";
/// Committed per-day median of `graph_s` at [`BASELINE_COMMIT`].
pub const BASELINE_GRAPH_S: f64 = 0.008897;
/// Committed per-day median of `louvain_s` at [`BASELINE_COMMIT`].
pub const BASELINE_LOUVAIN_S: f64 = 0.000725;
/// Committed pooled day-over-day label churn at [`BASELINE_COMMIT`].
pub const BASELINE_CHURN: f64 = 0.329502;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ArchiveBenchArgs {
    /// Traffic scale multiplier.
    pub scale: f64,
    /// Ingest chunk width, µs.
    pub chunk_us: u64,
    /// Output directory for `BENCH_archive.json`.
    pub out_dir: String,
    /// The sampled days, date-ordered.
    pub days: Vec<TraceDate>,
    /// Additionally run the sweep **warm** at this decay and report
    /// the cold/warm comparison in the JSON's `warm` block.
    pub warm_decay: Option<f64>,
    /// With a warm sweep: also rerun it at `decay = 0` and assert its
    /// deterministic reductions are byte-identical to the cold
    /// sweep's (the warm path's cold-start oracle).
    pub verify_cold: bool,
}

impl Default for ArchiveBenchArgs {
    fn default() -> Self {
        ArchiveBenchArgs {
            scale: 1.0,
            chunk_us: DEFAULT_CHUNK_US,
            out_dir: "results".to_string(),
            days: default_archive_days(),
            warm_decay: None,
            verify_cold: false,
        }
    }
}

/// The curated archive sample: adjacent-day pairs in every regime the
/// simulator models — quiet 18 Mbps CAR baseline, the Blaster onset
/// (released 2003-08-11), the inter-epoch residual, the Sasser onset
/// (released 2004-04-30), the long residual tail, and both post-
/// upgrade eras (100 Mbps from 2006-07, 150 Mbps from 2007-06).
pub fn default_archive_days() -> Vec<TraceDate> {
    vec![
        // 18 Mbps era, pre-Blaster baseline.
        TraceDate::new(2003, 8, 1),
        TraceDate::new(2003, 8, 2),
        // Blaster outbreak onset.
        TraceDate::new(2003, 8, 12),
        TraceDate::new(2003, 8, 13),
        // Blaster residual, pre-Sasser.
        TraceDate::new(2004, 4, 25),
        // Sasser outbreak onset.
        TraceDate::new(2004, 5, 10),
        TraceDate::new(2004, 5, 11),
        // Residual tail of both epochs.
        TraceDate::new(2005, 6, 1),
        TraceDate::new(2005, 6, 2),
        // 100 Mbps era.
        TraceDate::new(2006, 8, 1),
        TraceDate::new(2006, 8, 2),
        // 150 Mbps era.
        TraceDate::new(2008, 3, 1),
        TraceDate::new(2008, 3, 2),
    ]
}

/// The tiny CI/smoke sample: three adjacent Sasser-onset days (worm
/// path exercised) at whatever scale the caller picks.
pub fn smoke_archive_days() -> Vec<TraceDate> {
    vec![
        TraceDate::new(2004, 5, 10),
        TraceDate::new(2004, 5, 11),
        TraceDate::new(2004, 5, 12),
    ]
}

/// Default start of a consecutive (`--days N`) sweep, chosen so even a
/// short smoke sweep crosses the 2006-07-01 CAR→100 Mbps era
/// boundary.
pub fn default_sweep_start() -> TraceDate {
    TraceDate::new(2006, 6, 28)
}

/// `n` consecutive calendar days from `start` — the month-scale sweep
/// grid ([`default_month_days`] spans June and July 2006, crossing
/// the link-era boundary mid-sweep).
pub fn month_sweep_days(start: TraceDate, n: usize) -> Vec<TraceDate> {
    start.consecutive(n)
}

/// The default `--months` sweep: 61 consecutive days over June–July
/// 2006 — two full months through the 18 Mbps → 100 Mbps upgrade.
pub fn default_month_days() -> Vec<TraceDate> {
    month_sweep_days(TraceDate::new(2006, 6, 1), 61)
}

/// One day's reduction: the stability summary plus the throughput
/// record.
#[derive(Debug, Clone)]
pub struct ArchiveDayRecord {
    /// The stability-relevant reduction of the day.
    pub summary: DaySummary,
    /// Packets of the stream (first drain's view).
    pub packets: u64,
    /// Chunks of the stream (first drain's view).
    pub chunks: usize,
    /// Times the source was drained: 1 on the single-pass path, 2 on
    /// the two-pass oracle.
    pub passes: usize,
    /// Largest single chunk.
    pub peak_chunk_packets: usize,
    /// Traffic units seen.
    pub items: usize,
    /// Alarms raised.
    pub alarms: usize,
    /// Communities found.
    pub communities: usize,
    /// Communities labeled anomalous.
    pub anomalous: usize,
    /// Communities per confidence tier, indexed by
    /// [`mawilab_combiner::ConfidenceTier::index`]:
    /// `[anomalous, uncertain, benign]`. Sums to `communities`.
    pub tier_counts: [u64; 3],
    /// Histogram of per-community strategy agreement: slot `k` counts
    /// communities where exactly `k` of the four paper strategies
    /// agree with the day's decision.
    pub agreement_hist: [u64; 5],
    /// Wall-clock of the streaming pipeline run, seconds.
    pub wall_s: f64,
    /// Pipeline throughput, packets/second.
    pub pps: f64,
    /// Wall-clock of producing the day ahead of the pipeline's drain,
    /// seconds (single-pass: the generator's day plan only — packets
    /// generate lazily inside the drain; two-pass oracle: the whole
    /// truth pre-pass). For the generation-only engine comparison see
    /// [`GenThroughput`].
    pub gen_s: f64,
    /// Day-production throughput over `gen_s`, packets/second.
    pub gen_pps: f64,
    /// Per-stage pipeline seconds: detect, extract, graph, louvain,
    /// combine, label.
    pub stage_s: [f64; 6],
}

fn reduce_day(ctx: &StreamingDayContext<'_>) -> ArchiveDayRecord {
    let report = ctx.report;

    // Every strategy's verdict on the day's vote table — the flips
    // between them day over day are a headline stability metric.
    let strategies: Vec<(&'static str, Vec<mawilab_combiner::Decision>)> = StrategyKind::ALL
        .iter()
        .map(|&k| (k.name(), k.build().classify(&report.votes)))
        .collect();

    // Worm detection status against ground truth: which injected worm
    // epochs are covered by a community labeled anomalous today.
    let matcher = GroundTruthMatcher::from_item_ids(ctx.item_ids, ctx.truth, DEFAULT_MIN_COVERAGE);
    let caught: HashSet<u32> = report
        .labeled
        .communities
        .iter()
        .filter(|lc| lc.label == MawilabLabel::Anomalous)
        .flat_map(|lc| matcher.detected_by(&report.communities.community_traffic(lc.community)))
        .collect();
    let worms = WORMS
        .iter()
        .filter_map(|&(name, kind)| {
            let ids: Vec<u32> = ctx
                .truth
                .anomalies()
                .iter()
                .filter(|a| a.kind == kind)
                .map(|a| a.id)
                .collect();
            (!ids.is_empty()).then(|| WormStatus {
                worm: name,
                labeled_anomalous: ids.iter().any(|id| caught.contains(id)),
            })
        })
        .collect();

    // Confidence-tier populations and the strategy-agreement
    // histogram of the day — the per-day inputs of the JSON's
    // `confidence` block.
    let mut tier_counts = [0u64; 3];
    for lc in &report.labeled.communities {
        tier_counts[lc.confidence.tier.index()] += 1;
    }
    let mut agreement_hist = [0u64; 5];
    for agree in strategy_agreement(&report.votes, &report.decisions) {
        agreement_hist[agree] += 1;
    }

    let summary = DaySummary::new(ctx.date, &report.labeled.communities, &strategies, worms);
    let t = &report.timings;
    let wall_s = ctx.wall.as_secs_f64();
    let gen_s = ctx.gen_wall.as_secs_f64();
    ArchiveDayRecord {
        packets: report.stats.packets(),
        chunks: report.stats.chunks(),
        passes: report.stats.passes(),
        peak_chunk_packets: report.stats.peak_chunk_packets,
        items: report.stats.items,
        alarms: report.alarm_count(),
        communities: report.community_count(),
        anomalous: report.labeled.count(MawilabLabel::Anomalous),
        tier_counts,
        agreement_hist,
        wall_s,
        pps: report.stats.packets() as f64 / wall_s.max(1e-9),
        gen_s,
        gen_pps: report.stats.packets() as f64 / gen_s.max(1e-9),
        stage_s: [
            t.detect.as_secs_f64(),
            t.extract.as_secs_f64(),
            t.graph.as_secs_f64(),
            t.louvain.as_secs_f64(),
            t.combine.as_secs_f64(),
            t.label.as_secs_f64(),
        ],
        summary,
    }
}

/// Everything a benchmark run measured, before JSON formatting — the
/// deterministic part the thread-determinism suite compares across
/// `MAWILAB_THREADS` settings (wall-clock fields aside, every field
/// here is thread-count invariant).
#[derive(Debug, Clone)]
pub struct ArchiveOutcome {
    /// Per-day records, in day order, failed days skipped.
    pub records: Vec<ArchiveDayRecord>,
    /// Days the streaming harness could not complete, with the error.
    pub failed: Vec<(TraceDate, String)>,
    /// The longitudinal stability report over the surviving days.
    pub stability: StabilityReport,
}

/// Reduces per-day outcomes (successes + skipped failures) to an
/// [`ArchiveOutcome`] with the stability report over the survivors.
fn assemble_outcome(outcomes: Vec<Result<ArchiveDayRecord, DayFailure>>) -> ArchiveOutcome {
    let mut records: Vec<ArchiveDayRecord> = Vec::new();
    let mut failed: Vec<(TraceDate, String)> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(r) => records.push(r),
            Err(DayFailure { date, error }) => {
                eprintln!("  skipping failed day {date}: {error}");
                failed.push((date, error.to_string()));
            }
        }
    }
    let summaries: Vec<DaySummary> = records.iter().map(|r| r.summary.clone()).collect();
    let stability = stability_report(&summaries, MAX_STABILITY_GAP_DAYS);
    ArchiveOutcome {
        records,
        failed,
        stability,
    }
}

/// Runs the sweep chunk-natively and single-pass — each day's
/// `SynthSource` emits `PacketChunk`s straight out of the sharded
/// generator into the online pipeline's one drain, no day ever
/// materialised or replayed — and reduces it to an
/// [`ArchiveOutcome`].
pub fn collect_archive(args: &ArchiveBenchArgs) -> ArchiveOutcome {
    assemble_outcome(run_days_streaming(
        &args.days,
        args.scale,
        args.chunk_us,
        archive_config(),
        reduce_day,
    ))
}

/// [`collect_archive`] with a [`SourceWrap`] applied to each day's
/// sealed source — the failure-injection seam
/// (`crates/bench/tests/day_failure.rs` wraps one day's source in one
/// that errors mid-drain and asserts the month survives it) and the
/// hook CI uses to seal the whole sweep behind rewind-refusing
/// wrappers.
pub fn collect_archive_wrapped(args: &ArchiveBenchArgs, wrap: &dyn SourceWrap) -> ArchiveOutcome {
    assemble_outcome(run_days_streaming_wrapped(
        &args.days,
        args.scale,
        args.chunk_us,
        archive_config(),
        wrap,
        reduce_day,
    ))
}

/// [`collect_archive`] through the legacy two-pass oracle
/// ([`run_days_streaming_two_pass`]): same sweep, same reductions,
/// but the source is drained twice through the rewind-based pipeline.
/// Oracle-verification runs byte-compare its [`deterministic_view`]
/// against the single-pass sweep's.
pub fn collect_archive_two_pass(args: &ArchiveBenchArgs) -> ArchiveOutcome {
    assemble_outcome(run_days_streaming_two_pass(
        &args.days,
        args.scale,
        args.chunk_us,
        archive_config(),
        reduce_day,
    ))
}

/// Warm-state bookkeeping of one warm sweep.
#[derive(Debug, Clone, Copy)]
pub struct WarmSweepStats {
    /// The decay the sweep ran at.
    pub decay: f64,
    /// Era-boundary resets performed (the 61-day default sweep
    /// crosses 2006-07-01 and must reset exactly once).
    pub era_resets: u64,
    /// Days whose Louvain stage ran from a carried community seed.
    pub seeded_days: u64,
    /// Alarm signatures still carried when the sweep ended.
    pub carried_signatures: usize,
}

/// A finished warm sweep next to the cold sweep it is compared with.
#[derive(Debug, Clone)]
pub struct WarmReport {
    /// Warm-state bookkeeping.
    pub stats: WarmSweepStats,
    /// The warm sweep's outcome (same reductions as the cold sweep).
    pub outcome: ArchiveOutcome,
    /// `Some(true)` when the `decay = 0` rerun was byte-identical to
    /// the cold sweep; `None` when verification was not requested.
    pub verified_cold: Option<bool>,
}

/// [`collect_archive`] **warm**: the same sweep run sequentially
/// through [`run_days_streaming_warm`], one
/// [`WarmState`] threaded across all days. At `decay = 0.0` the
/// outcome's [`deterministic_view`] is byte-identical to
/// [`collect_archive`]'s.
pub fn collect_archive_warm(
    args: &ArchiveBenchArgs,
    decay: f64,
) -> (ArchiveOutcome, WarmSweepStats) {
    let mut warm = WarmState::new(decay);
    let outcome = assemble_outcome(run_days_streaming_warm(
        &args.days,
        args.scale,
        args.chunk_us,
        archive_config(),
        &mut warm,
        reduce_day,
    ));
    let stats = WarmSweepStats {
        decay,
        era_resets: warm.resets(),
        seeded_days: warm.seeded_days(),
        carried_signatures: warm.carried_signatures(),
    };
    (outcome, stats)
}

/// Everything thread-count- and ingest-mode-invariant in an
/// [`ArchiveOutcome`]: the per-day reductions minus their wall-clock
/// and drain-count fields, plus the whole stability report (which
/// holds no timing data). Two sweeps over the same days must render
/// identical views whatever `MAWILAB_THREADS` was and whichever
/// ingest path (single-pass or two-pass oracle) ran them — the
/// comparison key of the thread-determinism suite and the
/// `--verify-oracle` mode.
pub fn deterministic_view(outcome: &ArchiveOutcome) -> String {
    let days: Vec<String> = outcome
        .records
        .iter()
        .map(|r| {
            format!(
                "{} packets={} chunks={} peak={} items={} alarms={} communities={} \
                 anomalous={} tiers={:?} agreement={:?} summary={:?}",
                r.summary.date,
                r.packets,
                r.chunks,
                r.peak_chunk_packets,
                r.items,
                r.alarms,
                r.communities,
                r.anomalous,
                r.tier_counts,
                r.agreement_hist,
                r.summary,
            )
        })
        .collect();
    format!(
        "days:{}\nfailed:{:?}\nstability:{:?}",
        days.join("\n"),
        outcome.failed,
        outcome.stability
    )
}

/// Generation-throughput comparison of one archive day: the sequential
/// oracle against the sharded engine at increasing worker caps
/// (`generate_capped` sweeps effective workers without touching the
/// process-wide `MAWILAB_THREADS`; the global policy still applies on
/// top, so a `MAWILAB_THREADS=1` run reports ≈1.0× speedups by
/// design). Wall times are best-of-`reps`.
#[derive(Debug, Clone)]
pub struct GenThroughput {
    /// The measured day.
    pub date: TraceDate,
    /// Packets the day generates.
    pub packets: usize,
    /// Sequential-oracle wall, seconds.
    pub sequential_s: f64,
    /// `(worker cap, wall seconds)` of the sharded engine.
    pub sharded: Vec<(usize, f64)>,
}

impl GenThroughput {
    /// Speedup of the sharded engine at `cap` workers over the
    /// sequential oracle.
    pub fn speedup(&self, cap: usize) -> Option<f64> {
        self.sharded
            .iter()
            .find(|&&(c, _)| c == cap)
            .map(|&(_, s)| self.sequential_s / s.max(1e-12))
    }
}

/// Measures [`GenThroughput`] for one representative day of the sweep
/// at the benchmark scale.
pub fn generation_throughput(date: TraceDate, scale: f64, reps: usize) -> GenThroughput {
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale,
        ..Default::default()
    });
    let generator = TraceGenerator::new(sim.config_for(date));
    let reps = reps.max(1);
    const CAPS: [usize; 3] = [1, 2, 4];
    // Interleaved rounds (sequential, then each cap, per round) with
    // one untimed warmup: allocator/cache drift between measurements
    // then biases every engine equally instead of whichever ran last.
    let mut packets = generator.generate_sequential().trace.len();
    let mut sequential_s = f64::INFINITY;
    let mut sharded_s = [f64::INFINITY; CAPS.len()];
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        packets = generator.generate_sequential().trace.len();
        sequential_s = sequential_s.min(t0.elapsed().as_secs_f64());
        for (i, &cap) in CAPS.iter().enumerate() {
            let t0 = std::time::Instant::now();
            generator.generate_capped(cap);
            sharded_s[i] = sharded_s[i].min(t0.elapsed().as_secs_f64());
        }
    }
    GenThroughput {
        date,
        packets,
        sequential_s,
        sharded: CAPS.iter().copied().zip(sharded_s).collect(),
    }
}

fn median_of(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Per-day medians of a sweep, in the order the `warm` block reports:
/// wall, detect, estimate (graph+louvain — the pipeline's
/// `EstimateTimings` stages), louvain, alarms, communities.
fn sweep_medians(outcome: &ArchiveOutcome) -> [f64; 6] {
    let of = |pick: &dyn Fn(&ArchiveDayRecord) -> f64| {
        median_of(outcome.records.iter().map(pick).collect())
    };
    [
        of(&|r| r.wall_s),
        of(&|r| r.stage_s[0]),
        of(&|r| r.stage_s[2] + r.stage_s[3]),
        of(&|r| r.stage_s[3]),
        of(&|r| r.alarms as f64),
        of(&|r| r.communities as f64),
    ]
}

/// Formats the `warm` block: warm-state bookkeeping, cold/warm
/// per-day medians, the estimate-stage/louvain/wall speedups — both
/// against the same-run cold sweep and against the committed
/// [`BASELINE_COMMIT`] medians — and the label-stability comparison
/// (any churn the warm sweep adds over the cold sweep is reported as
/// `excess_drift`, never hidden).
fn format_warm_json(cold: &ArchiveOutcome, warm: &WarmReport) -> String {
    let c = sweep_medians(cold);
    let w = sweep_medians(&warm.outcome);
    let speedup = |cold_s: f64, warm_s: f64| f(cold_s / warm_s.max(1e-9));
    let median_obj = |m: &[f64; 6]| {
        format!(
            "{{\"wall_s\": {}, \"detect_s\": {}, \"estimate_s\": {}, \
             \"louvain_s\": {}, \"alarms\": {}, \"communities\": {}}}",
            f(m[0]),
            f(m[1]),
            f(m[2]),
            f(m[3]),
            f(m[4]),
            f(m[5]),
        )
    };
    let baseline_estimate = BASELINE_GRAPH_S + BASELINE_LOUVAIN_S;
    let churn_cold = cold.stability.label_churn;
    let churn_warm = warm.outcome.stability.label_churn;
    format!(
        "{{\n    \"decay\": {},\n    \"days\": {},\n    \"era_resets\": {},\n    \
         \"seeded_days\": {},\n    \"carried_signatures\": {},\n    \
         \"verified_cold\": {},\n    \
         \"median_cold\": {},\n    \"median_warm\": {},\n    \
         \"speedup\": {{\"estimate\": {}, \"louvain\": {}, \"wall\": {}}},\n    \
         \"committed_baseline\": {{\"commit\": \"{}\", \"graph_s\": {}, \
         \"louvain_s\": {}, \"estimate_s\": {}, \"label_churn\": {}}},\n    \
         \"speedup_vs_committed\": {{\"estimate\": {}, \"louvain\": {}}},\n    \
         \"churn\": {{\"cold\": {}, \"warm\": {}, \"excess_drift\": {}}}\n  }}",
        f(warm.stats.decay),
        warm.outcome.records.len(),
        warm.stats.era_resets,
        warm.stats.seeded_days,
        warm.stats.carried_signatures,
        warm.verified_cold
            .map_or("null".to_string(), |v| v.to_string()),
        median_obj(&c),
        median_obj(&w),
        speedup(c[2], w[2]),
        speedup(c[3], w[3]),
        speedup(c[0], w[0]),
        BASELINE_COMMIT,
        f(BASELINE_GRAPH_S),
        f(BASELINE_LOUVAIN_S),
        f(baseline_estimate),
        f(BASELINE_CHURN),
        speedup(baseline_estimate, w[2]),
        speedup(BASELINE_LOUVAIN_S, w[3]),
        f(churn_cold),
        f(churn_warm),
        f((churn_warm - churn_cold).max(0.0)),
    )
}

fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        // Belt and braces: the metrics are built to be finite; a
        // non-finite value must not silently corrupt the JSON.
        "null".to_string()
    }
}

/// Escapes free-form text (error messages carry OS-supplied strings)
/// for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Link-era boundaries crossed by consecutive days of a sample.
pub fn era_boundaries_crossed(days: &[TraceDate]) -> usize {
    days.windows(2)
        .filter(|w| LinkEra::for_date(w[0]) != LinkEra::for_date(w[1]))
        .count()
}

/// Era boundaries actually *evaluated* by an outcome: computed over
/// the surviving day records, not the requested sample — if the
/// boundary-straddling day itself failed, the crossing was not
/// measured and must not be reported (the CI month-smoke asserts on
/// this field).
fn era_boundaries_evaluated(outcome: &ArchiveOutcome) -> usize {
    let dates: Vec<TraceDate> = outcome.records.iter().map(|r| r.summary.date).collect();
    era_boundaries_crossed(&dates)
}

/// Formats the top-level `confidence` block: the thresholds the sweep
/// labeled under, pooled tier populations (summing to the pooled
/// community count), the pooled strategy-agreement histogram, and the
/// headline churn comparison — all matches versus the
/// confidently-labeled subset. The abstention tier earns its place
/// when `churn_confident` sits below `churn_all`.
fn format_confidence_json(outcome: &ArchiveOutcome) -> String {
    let thresholds = archive_config()
        .confidence_thresholds
        .expect("archive sweeps always label with thresholds");
    let mut tiers = [0u64; 3];
    let mut agreement = [0u64; 5];
    let mut communities = 0u64;
    for r in &outcome.records {
        for (t, n) in tiers.iter_mut().zip(&r.tier_counts) {
            *t += n;
        }
        for (a, n) in agreement.iter_mut().zip(&r.agreement_hist) {
            *a += n;
        }
        communities += r.communities as u64;
    }
    let hist: Vec<String> = agreement.iter().map(|n| n.to_string()).collect();
    format!(
        "{{\n    \"thresholds\": {{\"low\": {}, \"high\": {}}},\n    \
         \"communities\": {},\n    \
         \"tiers\": {{\"anomalous\": {}, \"uncertain\": {}, \"benign\": {}}},\n    \
         \"agreement_hist\": [{}],\n    \
         \"churn_all\": {},\n    \"churn_confident\": {}\n  }}",
        f(thresholds.low),
        f(thresholds.high),
        communities,
        tiers[0],
        tiers[1],
        tiers[2],
        hist.join(", "),
        f(outcome.stability.label_churn),
        f(outcome.stability.label_churn_confident),
    )
}

/// Formats the benchmark JSON document.
fn format_archive_json(
    args: &ArchiveBenchArgs,
    outcome: &ArchiveOutcome,
    gen: &GenThroughput,
    warm: Option<&WarmReport>,
) -> String {
    let ArchiveOutcome {
        records,
        failed,
        stability,
    } = outcome;
    let day_rows: Vec<String> = records
        .iter()
        .map(|r| {
            let worms: Vec<String> = r
                .summary
                .worms
                .iter()
                .map(|w| {
                    format!(
                        "{{\"worm\": \"{}\", \"labeled_anomalous\": {}}}",
                        w.worm, w.labeled_anomalous
                    )
                })
                .collect();
            format!(
                "    {{\"date\": \"{}\", \"packets\": {}, \"chunks\": {}, \
                 \"ingest_passes\": {}, \
                 \"peak_chunk_packets\": {}, \"items\": {}, \"alarms\": {}, \
                 \"communities\": {}, \"anomalous\": {}, \"identities\": {}, \
                 \"tiers\": [{}, {}, {}], \"strategy_agreement\": [{}], \
                 \"wall_s\": {}, \"packets_per_s\": {}, \"gen_s\": {}, \
                 \"gen_packets_per_s\": {}, \"detect_s\": {}, \
                 \"extract_s\": {}, \"graph_s\": {}, \"louvain_s\": {}, \
                 \"combine_s\": {}, \"label_s\": {}, \"worms\": [{}]}}",
                r.summary.date,
                r.packets,
                r.chunks,
                r.passes,
                r.peak_chunk_packets,
                r.items,
                r.alarms,
                r.communities,
                r.anomalous,
                r.summary.labels.len(),
                r.tier_counts[0],
                r.tier_counts[1],
                r.tier_counts[2],
                r.agreement_hist
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                f(r.wall_s),
                f(r.pps),
                f(r.gen_s),
                f(r.gen_pps),
                f(r.stage_s[0]),
                f(r.stage_s[1]),
                f(r.stage_s[2]),
                f(r.stage_s[3]),
                f(r.stage_s[4]),
                f(r.stage_s[5]),
                worms.join(", "),
            )
        })
        .collect();

    let failed_rows: Vec<String> = failed
        .iter()
        .map(|(date, error)| {
            format!(
                "    {{\"date\": \"{}\", \"error\": \"{}\"}}",
                date,
                json_escape(error)
            )
        })
        .collect();

    let pair_rows: Vec<String> = stability
        .pairs
        .iter()
        .map(|p| {
            let strategies: Vec<String> = p
                .strategies
                .iter()
                .map(|s| {
                    format!(
                        "{{\"strategy\": \"{}\", \"matched\": {}, \"flips\": {}, \
                         \"flip_rate\": {}}}",
                        s.strategy,
                        s.matched,
                        s.flips,
                        f(s.flip_rate())
                    )
                })
                .collect();
            format!(
                "      {{\"from\": \"{}\", \"to\": \"{}\", \"gap_days\": {}, \
                 \"matched\": {}, \"label_flips\": {}, \"churn\": {}, \
                 \"matched_confident\": {}, \"label_flips_confident\": {}, \
                 \"churn_confident\": {}, \
                 \"jaccard_anomalous\": {}, \"jaccard_drift\": {}, \
                 \"strategies\": [{}]}}",
                p.from,
                p.to,
                p.gap_days,
                p.matched,
                p.label_flips,
                f(p.churn()),
                p.matched_confident,
                p.label_flips_confident,
                f(p.churn_confident()),
                f(p.jaccard_anomalous),
                f(p.jaccard_drift()),
                strategies.join(", "),
            )
        })
        .collect();

    let flip_rows: Vec<String> = stability
        .strategy_flip_rates
        .iter()
        .map(|(name, rate)| format!("{{\"strategy\": \"{name}\", \"flip_rate\": {}}}", f(*rate)))
        .collect();

    let monthly_rows: Vec<String> = stability
        .monthly
        .iter()
        .map(|m| {
            format!(
                "      {{\"year\": {}, \"month\": {}, \"pairs\": {}, \"matched\": {}, \
                 \"flips\": {}, \"churn\": {}, \"jaccard_drift\": {}}}",
                m.year,
                m.month,
                m.pairs,
                m.matched,
                m.flips,
                f(m.churn()),
                f(m.jaccard_drift()),
            )
        })
        .collect();

    let transition_rows: Vec<String> = stability
        .era_transitions
        .iter()
        .map(|t| {
            format!(
                "      {{\"from\": \"{}\", \"to\": \"{}\", \"from_era\": \"{:?}\", \
                 \"to_era\": \"{:?}\", \"matched\": {}, \"label_flips\": {}, \
                 \"churn\": {}, \"jaccard_drift\": {}}}",
                t.from,
                t.to,
                t.from_era,
                t.to_era,
                t.matched,
                t.label_flips,
                f(t.churn()),
                f(t.jaccard_drift),
            )
        })
        .collect();

    let opt_date = |d: Option<TraceDate>| d.map_or("null".to_string(), |d| format!("\"{d}\""));
    let outbreak_rows: Vec<String> = stability
        .outbreaks
        .iter()
        .map(|o| {
            format!(
                "    {{\"worm\": \"{}\", \"onset\": {}, \"first_labeled\": {}, \
                 \"response_days\": {}, \"residual_days\": {}, \
                 \"residual_stable_days\": {}, \"residual_stability\": {}}}",
                o.worm,
                opt_date(o.onset),
                opt_date(o.first_labeled),
                o.response_days
                    .map_or("null".to_string(), |d| d.to_string()),
                o.residual_days,
                o.residual_stable_days,
                f(o.residual_stability()),
            )
        })
        .collect();

    let gen_rows: Vec<String> = gen
        .sharded
        .iter()
        .map(|&(cap, wall_s)| {
            format!(
                "      {{\"workers_cap\": {}, \"wall_s\": {}, \"speedup\": {}}}",
                cap,
                f(wall_s),
                f(gen.sequential_s / wall_s.max(1e-12)),
            )
        })
        .collect();

    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin archive\",\n  \
         \"hardware_threads\": {},\n  \
         \"note\": \"wall times measured on a host with {} hardware thread(s){}; speedups over the committed baseline are algorithmic — counting co-occurrence graph build (cold and warm alike) plus warm-carried Louvain seeds and detector baselines — not parallel\",\n  \
         \"scale\": {},\n  \"chunk_us\": {},\n  \"sampled_days\": {},\n  \
         \"first_day\": {},\n  \"last_day\": {},\n  \
         \"era_boundaries_crossed\": {},\n  \
         \"max_stability_gap_days\": {},\n  \
         \"days\": [\n{}\n  ],\n  \
         \"failed_days\": [{}],\n  \
         \"stability\": {{\n    \"label_churn\": {},\n    \
         \"label_churn_confident\": {},\n    \"jaccard_drift\": {},\n    \
         \"strategy_flip_rates\": [{}],\n    \
         \"monthly\": [\n{}\n    ],\n    \
         \"era_transitions\": [\n{}\n    ],\n    \
         \"adjacent_pairs\": [\n{}\n    ]\n  }},\n  \
         \"confidence\": {},\n  \
         \"outbreaks\": [\n{}\n  ],\n  \
         \"generation\": {{\n    \"date\": \"{}\", \"packets\": {}, \
         \"sequential_s\": {},\n    \"sharded\": [\n{}\n    ]\n  }},\n  \
         \"warm\": {},\n  \
         \"peak_rss_kb\": {}\n}}\n",
        hardware,
        hardware,
        if hardware == 1 {
            " — the day-level fan-out runs effectively sequentially here"
        } else {
            ""
        },
        args.scale,
        args.chunk_us,
        outcome.records.len(),
        opt_date(outcome.records.first().map(|r| r.summary.date)),
        opt_date(outcome.records.last().map(|r| r.summary.date)),
        era_boundaries_evaluated(outcome),
        MAX_STABILITY_GAP_DAYS,
        day_rows.join(",\n"),
        if failed_rows.is_empty() {
            String::new()
        } else {
            format!("\n{}\n  ", failed_rows.join(",\n"))
        },
        f(stability.label_churn),
        f(stability.label_churn_confident),
        f(stability.jaccard_drift),
        flip_rows.join(", "),
        monthly_rows.join(",\n"),
        transition_rows.join(",\n"),
        pair_rows.join(",\n"),
        format_confidence_json(outcome),
        outbreak_rows.join(",\n"),
        gen.date,
        gen.packets,
        f(gen.sequential_s),
        gen_rows.join(",\n"),
        warm.map_or("null".to_string(), |w| format_warm_json(outcome, w)),
        peak_rss_kb().unwrap_or(0),
    )
}

/// Runs the benchmark and returns the JSON document it wrote to
/// `<out_dir>/BENCH_archive.json`.
pub fn run_archive_bench(args: &ArchiveBenchArgs) -> String {
    eprintln!(
        "archive longitudinal benchmark: {} days, scale {} …",
        args.days.len(),
        args.scale
    );
    let outcome = collect_archive(args);
    let warm = args.warm_decay.map(|decay| {
        eprintln!("warm sweep: decay {decay}, {} days …", args.days.len());
        let (warm_outcome, stats) = collect_archive_warm(args, decay);
        let verified_cold = args.verify_cold.then(|| {
            // The cold-start oracle: a decay-0 warm sweep must be
            // byte-identical to the cold sweep. Reuse the warm sweep
            // itself when it already ran at zero decay.
            let zero = if decay == 0.0 {
                warm_outcome.clone()
            } else {
                eprintln!("verify-cold: decay-0 warm sweep …");
                collect_archive_warm(args, 0.0).0
            };
            assert_eq!(
                deterministic_view(&zero),
                deterministic_view(&outcome),
                "decay-0 warm sweep diverged from the cold sweep"
            );
            eprintln!(
                "verify-cold: warm(decay=0) == cold over {} days ✓",
                zero.records.len()
            );
            true
        });
        WarmReport {
            stats,
            outcome: warm_outcome,
            verified_cold,
        }
    });
    // Generation throughput on the sweep's last day — the
    // highest-volume regime of a chronological sweep (eras only ever
    // upgrade), which is what month-scale generation cost is
    // dominated by.
    let gen_day = args
        .days
        .last()
        .copied()
        .unwrap_or_else(default_sweep_start);
    let gen = generation_throughput(gen_day, args.scale, 9);
    let json = format_archive_json(args, &outcome, &gen, warm.as_ref());

    std::fs::create_dir_all(&args.out_dir).expect("creating out dir");
    let path = format!("{}/BENCH_archive.json", args.out_dir);
    std::fs::write(&path, &json).expect("writing BENCH_archive.json");
    eprintln!("wrote {path}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sample_spans_eras_and_epochs() {
        let days = default_archive_days();
        assert!(days.len() >= 12);
        assert!(days.windows(2).all(|w| w[0] < w[1]), "date-ordered");
        for era in [
            LinkEra::Car18Mbps,
            LinkEra::Full100Mbps,
            LinkEra::Full150Mbps,
        ] {
            assert!(
                days.iter().any(|&d| LinkEra::for_date(d) == era),
                "era {era:?} not sampled"
            );
        }
        // Both outbreak onsets have an adjacent pair.
        assert!(days.contains(&TraceDate::new(2003, 8, 12)));
        assert!(days.contains(&TraceDate::new(2004, 5, 10)));
    }

    #[test]
    fn month_sweep_is_consecutive_and_crosses_the_upgrade() {
        let days = default_month_days();
        assert!(days.len() >= 60, "month sweep must span 60+ days");
        assert!(days
            .windows(2)
            .all(|w| w[1].days_since_epoch() - w[0].days_since_epoch() == 1));
        assert_eq!(era_boundaries_crossed(&days), 1);
        // Short smoke sweeps from the default start cross it too.
        let smoke = month_sweep_days(default_sweep_start(), 6);
        assert_eq!(era_boundaries_crossed(&smoke), 1);
        assert_eq!(era_boundaries_crossed(&smoke_archive_days()), 0);
    }

    #[test]
    fn json_escape_handles_hostile_error_text() {
        assert_eq!(
            json_escape("a \"quoted\" \\path\nline2\ttab\u{1}"),
            "a \\\"quoted\\\" \\\\path\\nline2\\ttab\\u0001"
        );
        assert_eq!(json_escape("plain message"), "plain message");
    }

    #[test]
    fn failed_days_render_into_the_json() {
        let outcome = ArchiveOutcome {
            records: Vec::new(),
            failed: vec![(
                TraceDate::new(2006, 7, 1),
                "day 2006-07-01: source \"x\" broke\nbadly".to_string(),
            )],
            stability: stability_report(&[], MAX_STABILITY_GAP_DAYS),
        };
        let gen = GenThroughput {
            date: TraceDate::new(2006, 7, 1),
            packets: 0,
            sequential_s: 1.0,
            sharded: vec![(1, 1.0)],
        };
        let json = format_archive_json(&ArchiveBenchArgs::default(), &outcome, &gen, None);
        assert!(json.contains("\"failed_days\": [\n"));
        assert!(json.contains("\"warm\": null"));
        assert!(json.contains("{\"date\": \"2006-07-01\", \"error\": \"day 2006-07-01: source \\\"x\\\" broke\\nbadly\"}"));
        assert!(json.contains("\"sampled_days\": 0"));
        assert!(json.contains("\"first_day\": null"));
    }

    #[test]
    fn generation_throughput_measures_both_engines() {
        let gen = generation_throughput(TraceDate::new(2004, 5, 10), 0.2, 1);
        assert!(gen.packets > 1_000);
        assert!(gen.sequential_s > 0.0);
        assert_eq!(gen.sharded.len(), 3);
        assert!(gen.sharded.iter().all(|&(_, s)| s > 0.0));
        assert!(gen.speedup(2).unwrap() > 0.0);
        assert!(gen.speedup(3).is_none());
    }

    /// The tiny-scale end-to-end smoke: runs the real benchmark on
    /// three Sasser-onset days and asserts the JSON schema and that
    /// every stability metric is a finite number.
    #[test]
    fn smoke_run_produces_schema_with_finite_metrics() {
        let dir = std::env::temp_dir().join("mawilab-archive-smoke");
        let args = ArchiveBenchArgs {
            scale: 0.25,
            days: smoke_archive_days(),
            out_dir: dir.to_str().unwrap().to_string(),
            ..Default::default()
        };
        let json = run_archive_bench(&args);
        assert_eq!(
            json,
            std::fs::read_to_string(dir.join("BENCH_archive.json")).unwrap()
        );
        for key in [
            "\"days\"",
            "\"stability\"",
            "\"label_churn\"",
            "\"jaccard_drift\"",
            "\"strategy_flip_rates\"",
            "\"monthly\"",
            "\"era_transitions\"",
            "\"era_boundaries_crossed\"",
            "\"adjacent_pairs\"",
            "\"outbreaks\"",
            "\"generation\"",
            "\"sequential_s\"",
            "\"workers_cap\"",
            "\"gen_s\"",
            "\"peak_rss_kb\"",
            "\"ingest_passes\"",
            "\"packets_per_s\"",
            "\"detect_s\"",
            "\"worms\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        // The default sweep runs single-pass: every day drains once.
        assert!(json.contains("\"ingest_passes\": 1"));
        assert!(!json.contains("\"ingest_passes\": 2"));
        // All five strategies appear in the flip table.
        for name in ["average", "minimum", "maximum", "SCANN", "majority"] {
            assert!(
                json.contains(&format!("\"strategy\": \"{name}\"")),
                "strategy {name} missing"
            );
        }
        // Three adjacent days → two stability pairs.
        assert_eq!(json.matches("\"gap_days\"").count(), 2);
        // The confidence block: present, tier populations summing to
        // the pooled community count, churn comparison well-ordered.
        for key in [
            "\"confidence\": {",
            "\"thresholds\"",
            "\"tiers\"",
            "\"agreement_hist\"",
            "\"churn_all\"",
            "\"churn_confident\"",
            "\"label_churn_confident\"",
            "\"matched_confident\"",
            "\"strategy_agreement\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        let conf = json.split("\"confidence\": {").nth(1).unwrap();
        let grab = |key: &str| -> f64 {
            conf.split(&format!("\"{key}\": "))
                .nth(1)
                .unwrap()
                .split(&[',', '}', '\n'][..])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let total = grab("communities");
        assert!(total > 0.0, "smoke sweep labeled no communities");
        assert_eq!(
            grab("anomalous") + grab("uncertain") + grab("benign"),
            total,
            "tier populations must sum to the community count"
        );
        assert!(
            grab("churn_confident") <= grab("churn_all"),
            "abstention can only remove flips"
        );
        // The Sasser epoch is present in the outbreak table.
        assert!(json.contains("\"worm\": \"sasser\""));
        // Extract the headline churn value and check it parses.
        let churn = json
            .split("\"label_churn\": ")
            .nth(1)
            .and_then(|s| s.split(&[',', '\n'][..]).next())
            .unwrap()
            .parse::<f64>()
            .expect("label_churn is a number");
        assert!((0.0..=1.0).contains(&churn));
    }

    /// The in-process twin of the CI `warm-smoke` job: a tiny warm
    /// sweep with cold-oracle verification. The `verify_cold` path
    /// asserts label identity internally; here we additionally pin
    /// the `warm` block's schema and that its metrics are finite.
    #[test]
    fn warm_smoke_verifies_cold_oracle_and_renders_block() {
        let dir = std::env::temp_dir().join("mawilab-warm-smoke");
        let args = ArchiveBenchArgs {
            scale: 0.25,
            days: smoke_archive_days(),
            out_dir: dir.to_str().unwrap().to_string(),
            warm_decay: Some(DEFAULT_WARM_DECAY),
            verify_cold: true,
            ..Default::default()
        };
        let json = run_archive_bench(&args);
        for key in [
            "\"warm\": {",
            "\"decay\"",
            "\"era_resets\"",
            "\"seeded_days\"",
            "\"verified_cold\": true",
            "\"median_cold\"",
            "\"median_warm\"",
            "\"estimate_s\"",
            "\"speedup\"",
            "\"committed_baseline\"",
            "\"speedup_vs_committed\"",
            "\"excess_drift\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        // The smoke days sit inside one era: no reset may fire.
        assert!(json.contains("\"era_resets\": 0"));
    }

    /// A seconds-scale consecutive sweep through the era boundary —
    /// the in-process twin of the CI `month-smoke` job.
    #[test]
    fn month_smoke_crosses_an_era_boundary() {
        let dir = std::env::temp_dir().join("mawilab-month-smoke");
        let args = ArchiveBenchArgs {
            scale: 0.25,
            days: month_sweep_days(default_sweep_start(), 6),
            out_dir: dir.to_str().unwrap().to_string(),
            ..Default::default()
        };
        let json = run_archive_bench(&args);
        assert!(json.contains("\"era_boundaries_crossed\": 1"));
        // Six consecutive days → five 1-day pairs, of which the
        // era-boundary crossing is itemised as a transition and the
        // other four enter the day-over-day aggregates.
        assert_eq!(json.matches("\"gap_days\": 1").count(), 4);
        // The era transition is itemised.
        assert!(json.contains("\"from_era\": \"Car18Mbps\""));
        assert!(json.contains("\"to_era\": \"Full100Mbps\""));
        // Monthly trajectory spans June and July 2006.
        assert!(json.contains("\"year\": 2006, \"month\": 6"));
        assert!(json.contains("\"year\": 2006, \"month\": 7"));
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }
}
