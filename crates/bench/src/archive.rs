//! The archive-scale longitudinal benchmark behind the `archive` bin.
//!
//! Streams a curated day sample spanning the whole simulated
//! 2001–2009 archive — all three link eras and both worm epochs —
//! through [`run_days_streaming`], reduces every day to a
//! [`DaySummary`] plus a throughput record, and writes
//! `results/BENCH_archive.json` with the longitudinal stability
//! metrics ([`mawilab_eval::longitudinal`]) next to the per-day
//! performance trajectory. This is the repo's month-scale answer to
//! the operational question the paper's Figs. 7–8 raise: do the
//! labels stay put while the archive changes under the pipeline?
//!
//! The logic lives in the library (not the bin) so the smoke test and
//! CI can run a tiny-scale pass in-process and assert the schema.

use crate::harness::{peak_rss_kb, run_days_streaming, StreamingDayContext};
use mawilab_core::{PipelineConfig, StrategyKind};
use mawilab_eval::ground_truth::DEFAULT_MIN_COVERAGE;
use mawilab_eval::{stability_report, DaySummary, GroundTruthMatcher, WormStatus};
use mawilab_label::MawilabLabel;
use mawilab_model::{TraceDate, DEFAULT_CHUNK_US};
use mawilab_synth::AnomalyKind;
use std::collections::HashSet;

/// Consecutive sampled days farther apart than this are epoch jumps
/// (era/outbreak boundaries), not day-over-day stability pairs, and
/// stay out of the churn/drift aggregates.
pub const MAX_STABILITY_GAP_DAYS: i64 = 7;

/// Worm epochs the benchmark tracks: name, anomaly kind, and real
/// release date (the epoch onset used for sampling context).
const WORMS: [(&str, AnomalyKind); 2] = [
    ("blaster", AnomalyKind::BlasterWorm),
    ("sasser", AnomalyKind::SasserWorm),
];

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ArchiveBenchArgs {
    /// Traffic scale multiplier.
    pub scale: f64,
    /// Ingest chunk width, µs.
    pub chunk_us: u64,
    /// Output directory for `BENCH_archive.json`.
    pub out_dir: String,
    /// The sampled days, date-ordered.
    pub days: Vec<TraceDate>,
}

impl Default for ArchiveBenchArgs {
    fn default() -> Self {
        ArchiveBenchArgs {
            scale: 1.0,
            chunk_us: DEFAULT_CHUNK_US,
            out_dir: "results".to_string(),
            days: default_archive_days(),
        }
    }
}

/// The curated archive sample: adjacent-day pairs in every regime the
/// simulator models — quiet 18 Mbps CAR baseline, the Blaster onset
/// (released 2003-08-11), the inter-epoch residual, the Sasser onset
/// (released 2004-04-30), the long residual tail, and both post-
/// upgrade eras (100 Mbps from 2006-07, 150 Mbps from 2007-06).
pub fn default_archive_days() -> Vec<TraceDate> {
    vec![
        // 18 Mbps era, pre-Blaster baseline.
        TraceDate::new(2003, 8, 1),
        TraceDate::new(2003, 8, 2),
        // Blaster outbreak onset.
        TraceDate::new(2003, 8, 12),
        TraceDate::new(2003, 8, 13),
        // Blaster residual, pre-Sasser.
        TraceDate::new(2004, 4, 25),
        // Sasser outbreak onset.
        TraceDate::new(2004, 5, 10),
        TraceDate::new(2004, 5, 11),
        // Residual tail of both epochs.
        TraceDate::new(2005, 6, 1),
        TraceDate::new(2005, 6, 2),
        // 100 Mbps era.
        TraceDate::new(2006, 8, 1),
        TraceDate::new(2006, 8, 2),
        // 150 Mbps era.
        TraceDate::new(2008, 3, 1),
        TraceDate::new(2008, 3, 2),
    ]
}

/// The tiny CI/smoke sample: three adjacent Sasser-onset days (worm
/// path exercised) at whatever scale the caller picks.
pub fn smoke_archive_days() -> Vec<TraceDate> {
    vec![
        TraceDate::new(2004, 5, 10),
        TraceDate::new(2004, 5, 11),
        TraceDate::new(2004, 5, 12),
    ]
}

/// One day's reduction: the stability summary plus the throughput
/// record.
struct DayRecord {
    summary: DaySummary,
    packets: u64,
    chunks: usize,
    peak_chunk_packets: usize,
    items: usize,
    alarms: usize,
    communities: usize,
    anomalous: usize,
    wall_s: f64,
    pps: f64,
    stage_s: [f64; 6],
}

fn reduce_day(ctx: &StreamingDayContext<'_>) -> DayRecord {
    let report = ctx.report;

    // Every strategy's verdict on the day's vote table — the flips
    // between them day over day are a headline stability metric.
    let strategies: Vec<(&'static str, Vec<mawilab_combiner::Decision>)> = StrategyKind::ALL
        .iter()
        .map(|&k| (k.name(), k.build().classify(&report.votes)))
        .collect();

    // Worm detection status against ground truth: which injected worm
    // epochs are covered by a community labeled anomalous today.
    let matcher = GroundTruthMatcher::from_item_ids(ctx.item_ids, ctx.truth, DEFAULT_MIN_COVERAGE);
    let caught: HashSet<u32> = report
        .labeled
        .communities
        .iter()
        .filter(|lc| lc.label == MawilabLabel::Anomalous)
        .flat_map(|lc| matcher.detected_by(&report.communities.community_traffic(lc.community)))
        .collect();
    let worms = WORMS
        .iter()
        .filter_map(|&(name, kind)| {
            let ids: Vec<u32> = ctx
                .truth
                .anomalies()
                .iter()
                .filter(|a| a.kind == kind)
                .map(|a| a.id)
                .collect();
            (!ids.is_empty()).then(|| WormStatus {
                worm: name,
                labeled_anomalous: ids.iter().any(|id| caught.contains(id)),
            })
        })
        .collect();

    let summary = DaySummary::new(ctx.date, &report.labeled.communities, &strategies, worms);
    let t = &report.timings;
    let wall_s = ctx.wall.as_secs_f64();
    DayRecord {
        packets: report.stats.packets,
        chunks: report.stats.chunks,
        peak_chunk_packets: report.stats.peak_chunk_packets,
        items: report.stats.items,
        alarms: report.alarm_count(),
        communities: report.community_count(),
        anomalous: report.labeled.count(MawilabLabel::Anomalous),
        wall_s,
        pps: report.stats.packets as f64 / wall_s.max(1e-9),
        stage_s: [
            t.detect.as_secs_f64(),
            t.extract.as_secs_f64(),
            t.graph.as_secs_f64(),
            t.louvain.as_secs_f64(),
            t.combine.as_secs_f64(),
            t.label.as_secs_f64(),
        ],
        summary,
    }
}

fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        // Belt and braces: the metrics are built to be finite; a
        // non-finite value must not silently corrupt the JSON.
        "null".to_string()
    }
}

/// Escapes free-form text (error messages carry OS-supplied strings)
/// for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the benchmark and returns the JSON document it wrote to
/// `<out_dir>/BENCH_archive.json`.
pub fn run_archive_bench(args: &ArchiveBenchArgs) -> String {
    eprintln!(
        "archive longitudinal benchmark: {} days, scale {} …",
        args.days.len(),
        args.scale
    );
    let outcomes = run_days_streaming(
        &args.days,
        args.scale,
        args.chunk_us,
        PipelineConfig::default(),
        reduce_day,
    );
    let mut records: Vec<DayRecord> = Vec::new();
    let mut failed: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(r) => records.push(r),
            Err(failure) => {
                eprintln!("  skipping failed day: {failure}");
                failed.push(format!(
                    "    {{\"date\": \"{}\", \"error\": \"{}\"}}",
                    failure.date,
                    json_escape(&failure.error.to_string())
                ));
            }
        }
    }

    let summaries: Vec<DaySummary> = records.iter().map(|r| r.summary.clone()).collect();
    let stability = stability_report(&summaries, MAX_STABILITY_GAP_DAYS);

    let day_rows: Vec<String> = records
        .iter()
        .map(|r| {
            let worms: Vec<String> = r
                .summary
                .worms
                .iter()
                .map(|w| {
                    format!(
                        "{{\"worm\": \"{}\", \"labeled_anomalous\": {}}}",
                        w.worm, w.labeled_anomalous
                    )
                })
                .collect();
            format!(
                "    {{\"date\": \"{}\", \"packets\": {}, \"chunks\": {}, \
                 \"peak_chunk_packets\": {}, \"items\": {}, \"alarms\": {}, \
                 \"communities\": {}, \"anomalous\": {}, \"identities\": {}, \
                 \"wall_s\": {}, \"packets_per_s\": {}, \"detect_s\": {}, \
                 \"extract_s\": {}, \"graph_s\": {}, \"louvain_s\": {}, \
                 \"combine_s\": {}, \"label_s\": {}, \"worms\": [{}]}}",
                r.summary.date,
                r.packets,
                r.chunks,
                r.peak_chunk_packets,
                r.items,
                r.alarms,
                r.communities,
                r.anomalous,
                r.summary.labels.len(),
                f(r.wall_s),
                f(r.pps),
                f(r.stage_s[0]),
                f(r.stage_s[1]),
                f(r.stage_s[2]),
                f(r.stage_s[3]),
                f(r.stage_s[4]),
                f(r.stage_s[5]),
                worms.join(", "),
            )
        })
        .collect();

    let pair_rows: Vec<String> = stability
        .pairs
        .iter()
        .map(|p| {
            let strategies: Vec<String> = p
                .strategies
                .iter()
                .map(|s| {
                    format!(
                        "{{\"strategy\": \"{}\", \"matched\": {}, \"flips\": {}, \
                         \"flip_rate\": {}}}",
                        s.strategy,
                        s.matched,
                        s.flips,
                        f(s.flip_rate())
                    )
                })
                .collect();
            format!(
                "      {{\"from\": \"{}\", \"to\": \"{}\", \"gap_days\": {}, \
                 \"matched\": {}, \"label_flips\": {}, \"churn\": {}, \
                 \"jaccard_anomalous\": {}, \"jaccard_drift\": {}, \
                 \"strategies\": [{}]}}",
                p.from,
                p.to,
                p.gap_days,
                p.matched,
                p.label_flips,
                f(p.churn()),
                f(p.jaccard_anomalous),
                f(p.jaccard_drift()),
                strategies.join(", "),
            )
        })
        .collect();

    let flip_rows: Vec<String> = stability
        .strategy_flip_rates
        .iter()
        .map(|(name, rate)| format!("{{\"strategy\": \"{name}\", \"flip_rate\": {}}}", f(*rate)))
        .collect();

    let opt_date = |d: Option<TraceDate>| d.map_or("null".to_string(), |d| format!("\"{d}\""));
    let outbreak_rows: Vec<String> = stability
        .outbreaks
        .iter()
        .map(|o| {
            format!(
                "    {{\"worm\": \"{}\", \"onset\": {}, \"first_labeled\": {}, \
                 \"response_days\": {}, \"residual_days\": {}, \
                 \"residual_stable_days\": {}, \"residual_stability\": {}}}",
                o.worm,
                opt_date(o.onset),
                opt_date(o.first_labeled),
                o.response_days
                    .map_or("null".to_string(), |d| d.to_string()),
                o.residual_days,
                o.residual_stable_days,
                f(o.residual_stability()),
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin archive\",\n  \
         \"scale\": {},\n  \"chunk_us\": {},\n  \"sampled_days\": {},\n  \
         \"max_stability_gap_days\": {},\n  \
         \"days\": [\n{}\n  ],\n  \
         \"failed_days\": [{}],\n  \
         \"stability\": {{\n    \"label_churn\": {},\n    \"jaccard_drift\": {},\n    \
         \"strategy_flip_rates\": [{}],\n    \"adjacent_pairs\": [\n{}\n    ]\n  }},\n  \
         \"outbreaks\": [\n{}\n  ],\n  \
         \"peak_rss_kb\": {}\n}}\n",
        args.scale,
        args.chunk_us,
        records.len(),
        MAX_STABILITY_GAP_DAYS,
        day_rows.join(",\n"),
        if failed.is_empty() {
            String::new()
        } else {
            format!("\n{}\n  ", failed.join(",\n"))
        },
        f(stability.label_churn),
        f(stability.jaccard_drift),
        flip_rows.join(", "),
        pair_rows.join(",\n"),
        outbreak_rows.join(",\n"),
        peak_rss_kb().unwrap_or(0),
    );

    std::fs::create_dir_all(&args.out_dir).expect("creating out dir");
    let path = format!("{}/BENCH_archive.json", args.out_dir);
    std::fs::write(&path, &json).expect("writing BENCH_archive.json");
    eprintln!("wrote {path}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_model::LinkEra;

    #[test]
    fn default_sample_spans_eras_and_epochs() {
        let days = default_archive_days();
        assert!(days.len() >= 12);
        assert!(days.windows(2).all(|w| w[0] < w[1]), "date-ordered");
        for era in [
            LinkEra::Car18Mbps,
            LinkEra::Full100Mbps,
            LinkEra::Full150Mbps,
        ] {
            assert!(
                days.iter().any(|&d| LinkEra::for_date(d) == era),
                "era {era:?} not sampled"
            );
        }
        // Both outbreak onsets have an adjacent pair.
        assert!(days.contains(&TraceDate::new(2003, 8, 12)));
        assert!(days.contains(&TraceDate::new(2004, 5, 10)));
    }

    #[test]
    fn json_escape_handles_hostile_error_text() {
        assert_eq!(
            json_escape("a \"quoted\" \\path\nline2\ttab\u{1}"),
            "a \\\"quoted\\\" \\\\path\\nline2\\ttab\\u0001"
        );
        assert_eq!(json_escape("plain message"), "plain message");
    }

    /// The tiny-scale end-to-end smoke: runs the real benchmark on
    /// three Sasser-onset days and asserts the JSON schema and that
    /// every stability metric is a finite number.
    #[test]
    fn smoke_run_produces_schema_with_finite_metrics() {
        let dir = std::env::temp_dir().join("mawilab-archive-smoke");
        let args = ArchiveBenchArgs {
            scale: 0.25,
            days: smoke_archive_days(),
            out_dir: dir.to_str().unwrap().to_string(),
            ..Default::default()
        };
        let json = run_archive_bench(&args);
        assert_eq!(
            json,
            std::fs::read_to_string(dir.join("BENCH_archive.json")).unwrap()
        );
        for key in [
            "\"days\"",
            "\"stability\"",
            "\"label_churn\"",
            "\"jaccard_drift\"",
            "\"strategy_flip_rates\"",
            "\"adjacent_pairs\"",
            "\"outbreaks\"",
            "\"peak_rss_kb\"",
            "\"packets_per_s\"",
            "\"detect_s\"",
            "\"worms\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        // All five strategies appear in the flip table.
        for name in ["average", "minimum", "maximum", "SCANN", "majority"] {
            assert!(
                json.contains(&format!("\"strategy\": \"{name}\"")),
                "strategy {name} missing"
            );
        }
        // Three adjacent days → two stability pairs.
        assert_eq!(json.matches("\"gap_days\"").count(), 2);
        // The Sasser epoch is present in the outbreak table.
        assert!(json.contains("\"worm\": \"sasser\""));
        // Extract the headline churn value and check it parses.
        let churn = json
            .split("\"label_churn\": ")
            .nth(1)
            .and_then(|s| s.split(&[',', '\n'][..]).next())
            .unwrap()
            .parse::<f64>()
            .expect("label_churn is a number");
        assert!((0.0..=1.0).contains(&churn));
    }
}
