//! Figure 5: number of communities as a function of community size
//! and the number of detectors reporting alarms in them, coloured by
//! the Table-1 category of their traffic.
//!
//! Also prints the §4.1.2 side results: the per-detector single-
//! community counts and attack ratios (paper: PCA 6%, Hough 33%,
//! Gamma 22%, KL 56%), and the share of non-single one-detector
//! communities owned by PCA (paper: 58%).
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig5
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_detectors::DetectorKind;
use mawilab_label::HeuristicCategory;
use std::collections::HashMap;

fn size_bucket(size: usize) -> &'static str {
    match size {
        1 => "1alarm",
        2 => "2alarms",
        3..=4 => "3-4alarms",
        5..=20 => "5-20alarms",
        _ => "21+alarms",
    }
}

const BUCKETS: [&str; 5] = ["1alarm", "2alarms", "3-4alarms", "5-20alarms", "21+alarms"];

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig5: {} days at scale {}", days.len(), args.scale);

    type Key = (&'static str, usize); // (size bucket, #detectors)
    type Cell = [usize; 3]; // attack, special, unknown

    // Also: per-detector singles (count, attack) and one-detector
    // non-single ownership.
    #[derive(Default)]
    struct Acc {
        grid: HashMap<Key, Cell>,
        singles: HashMap<DetectorKind, (usize, usize)>,
        nonsingle_one_detector: HashMap<DetectorKind, usize>,
    }

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let mut acc = Acc::default();
        let communities = &ctx.report.communities;
        let sizes = communities.sizes();
        for lc in &ctx.report.labeled.communities {
            let c = lc.community;
            let detectors = communities.detectors_in(c);
            let key = (size_bucket(sizes[c]), detectors.len());
            let cell = acc.grid.entry(key).or_default();
            match lc.heuristic.category() {
                HeuristicCategory::Attack => cell[0] += 1,
                HeuristicCategory::Special => cell[1] += 1,
                HeuristicCategory::Unknown => cell[2] += 1,
            }
            if sizes[c] == 1 {
                let d = detectors[0];
                let slot = acc.singles.entry(d).or_default();
                slot.0 += 1;
                if lc.heuristic.category() == HeuristicCategory::Attack {
                    slot.1 += 1;
                }
            } else if detectors.len() == 1 {
                *acc.nonsingle_one_detector.entry(detectors[0]).or_default() += 1;
            }
        }
        acc
    });

    // Merge days.
    let mut grid: HashMap<Key, Cell> = HashMap::new();
    let mut singles: HashMap<DetectorKind, (usize, usize)> = HashMap::new();
    let mut nonsingle: HashMap<DetectorKind, usize> = HashMap::new();
    for day in per_day {
        for (k, v) in day.grid {
            let cell = grid.entry(k).or_default();
            for i in 0..3 {
                cell[i] += v[i];
            }
        }
        for (d, (n, a)) in day.singles {
            let slot = singles.entry(d).or_default();
            slot.0 += n;
            slot.1 += a;
        }
        for (d, n) in day.nonsingle_one_detector {
            *nonsingle.entry(d).or_default() += n;
        }
    }

    println!("\n== Fig 5: communities by size × #detectors (counts by category) ==");
    let mut table = Vec::new();
    let mut rows = Vec::new();
    for bucket in BUCKETS {
        for ndet in 1..=4usize {
            if let Some(cell) = grid.get(&(bucket, ndet)) {
                let total = cell[0] + cell[1] + cell[2];
                let ratio = cell[0] as f64 / total.max(1) as f64;
                table.push(vec![
                    format!("{bucket} {ndet}detec."),
                    total.to_string(),
                    cell[0].to_string(),
                    cell[1].to_string(),
                    cell[2].to_string(),
                    format!("{:.2}", ratio),
                ]);
                rows.push(vec![
                    bucket.to_string(),
                    ndet.to_string(),
                    cell[0].to_string(),
                    cell[1].to_string(),
                    cell[2].to_string(),
                ]);
            }
        }
    }
    out::print_table(
        &[
            "class",
            "total",
            "attack",
            "special",
            "unknown",
            "attack ratio",
        ],
        &table,
    );
    let path = out::write_csv_series(
        &args.out_dir,
        "fig5",
        &["size_bucket", "n_detectors", "attack", "special", "unknown"],
        &rows,
    )
    .unwrap();
    println!("series → {path}");

    println!("\n== §4.1.2: single communities per detector ==");
    let mut t2 = Vec::new();
    for d in DetectorKind::ALL {
        let (n, a) = singles.get(&d).copied().unwrap_or((0, 0));
        t2.push(vec![
            d.to_string(),
            n.to_string(),
            format!("{:.0}%", a as f64 / n.max(1) as f64 * 100.0),
        ]);
    }
    out::print_table(&["detector", "single communities", "attack ratio"], &t2);
    println!("(paper: PCA has by far the most singles; attack ratios PCA 6%,");
    println!(" Hough 33%, Gamma 22%, KL 56%)");

    let total_nonsingle: usize = nonsingle.values().sum();
    if total_nonsingle > 0 {
        let pca = nonsingle.get(&DetectorKind::Pca).copied().unwrap_or(0);
        println!(
            "\nnon-single one-detector communities owned by PCA: {:.0}% (paper: 58%)",
            pca as f64 / total_nonsingle as f64 * 100.0
        );
    }
    println!("\npaper shape check: attack ratio rises with the number of detectors");
    println!("reporting a community; the 4-detector intersection is small.");
}
