//! Table 2: the four quantities measuring SCANN's benefits and
//! losses, aggregated over the archive run.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin table2
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_eval::{gain_cost, GainCost};

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("table2: {} days at scale {}", days.len(), args.scale);

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        gain_cost(
            &ctx.report.communities,
            &ctx.report.labeled.communities,
            &ctx.report.decisions,
            None,
        )
    });
    let total = per_day
        .iter()
        .fold(GainCost::default(), |acc, gc| GainCost {
            gain_acc: acc.gain_acc + gc.gain_acc,
            cost_acc: acc.cost_acc + gc.cost_acc,
            gain_rej: acc.gain_rej + gc.gain_rej,
            cost_rej: acc.cost_rej + gc.cost_rej,
        });

    println!("\n== Table 2: SCANN gains and losses (community counts) ==\n");
    out::print_table(
        &["label \\ SCANN", "accepted", "rejected"],
        &[
            vec![
                "Attack".into(),
                format!("gain_acc = {}", total.gain_acc),
                format!("cost_rej = {}", total.cost_rej),
            ],
            vec![
                "Special, Unknown".into(),
                format!("cost_acc = {}", total.cost_acc),
                format!("gain_rej = {}", total.gain_rej),
            ],
        ],
    );
    let accepted = total.gain_acc + total.cost_acc;
    let rejected = total.gain_rej + total.cost_rej;
    println!(
        "\naccepted communities: {accepted}  (attack ratio {:.2})",
        total.gain_acc as f64 / accepted.max(1) as f64
    );
    println!(
        "rejected communities: {rejected}  (attack ratio {:.2})",
        total.cost_rej as f64 / rejected.max(1) as f64
    );
    let _ = out::write_csv_series(
        &args.out_dir,
        "table2",
        &["gain_acc", "cost_acc", "gain_rej", "cost_rej"],
        &[vec![
            total.gain_acc.to_string(),
            total.cost_acc.to_string(),
            total.gain_rej.to_string(),
            total.cost_rej.to_string(),
        ]],
    )
    .unwrap();
    println!("\npaper shape check: rejected communities outnumber accepted ones");
    println!("(PCA noise is filtered), and the accepted attack ratio exceeds the");
    println!("rejected one.");
}
