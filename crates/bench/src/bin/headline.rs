//! The headline claim (§1, §7): combining the detectors "permits to
//! detect twice as many anomalies as the most accurate detector".
//!
//! The paper argues this through SCANN's accepted communities vs the
//! KL detector. Our synthetic archive has ground truth, so we can
//! measure it directly: distinct injected anomalies covered by each
//! strategy's accepted communities vs those covered by each single
//! detector's own alarms, summed over the run.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin headline
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::{PipelineConfig, StrategyKind};
use mawilab_detectors::DetectorKind;
use mawilab_eval::ground_truth::{score_detector, score_strategy, GroundTruthMatcher};
use mawilab_model::Granularity;

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("headline: {} days at scale {}", days.len(), args.scale);

    struct Day {
        total: usize,
        per_strategy: Vec<(StrategyKind, usize, usize, f64)>, // detected, accepted, precision
        per_detector: Vec<(DetectorKind, usize)>,
    }

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let matcher =
            GroundTruthMatcher::new(ctx.view, &ctx.labeled_trace.truth, Granularity::Uniflow);
        let per_strategy = ctx
            .per_strategy
            .iter()
            .map(|(kind, decisions)| {
                let s = score_strategy(&matcher, &ctx.report.communities, decisions);
                (*kind, s.detected.len(), s.accepted, s.precision())
            })
            .collect();
        let per_detector = DetectorKind::ALL
            .iter()
            .map(|&d| {
                (
                    d,
                    score_detector(&matcher, &ctx.report.communities, d).len(),
                )
            })
            .collect();
        Day {
            total: matcher.anomaly_ids().len(),
            per_strategy,
            per_detector,
        }
    });

    let total: usize = per_day.iter().map(|d| d.total).sum();
    println!(
        "\n== headline: true anomalies detected over {} days ({} injected) ==",
        days.len(),
        total
    );

    let mut table = Vec::new();
    for d in DetectorKind::ALL {
        let sum: usize = per_day
            .iter()
            .map(|day| {
                day.per_detector
                    .iter()
                    .find(|(k, _)| *k == d)
                    .map(|(_, n)| *n)
                    .unwrap_or(0)
            })
            .sum();
        table.push(vec![
            format!("detector {d}"),
            sum.to_string(),
            format!("{:.2}", sum as f64 / total.max(1) as f64),
            String::new(),
        ]);
    }
    let mut best_single = 0usize;
    for row in &table {
        best_single = best_single.max(row[1].parse().unwrap_or(0));
    }
    let mut scann_detected = 0usize;
    for kind in StrategyKind::ALL {
        let (sum, accepted, prec_sum, n): (usize, usize, f64, usize) =
            per_day.iter().fold((0, 0, 0.0, 0), |(s, a, p, n), day| {
                let (_, det, acc, prec) = day
                    .per_strategy
                    .iter()
                    .find(|(k, _, _, _)| *k == kind)
                    .copied()
                    .unwrap();
                (s + det, a + acc, p + prec, n + 1)
            });
        if kind == StrategyKind::Scann {
            scann_detected = sum;
        }
        table.push(vec![
            format!("strategy {}", kind.name()),
            sum.to_string(),
            format!("{:.2}", sum as f64 / total.max(1) as f64),
            format!(
                "{} accepted, precision {:.2}",
                accepted,
                prec_sum / n.max(1) as f64
            ),
        ]);
    }
    out::print_table(&["who", "anomalies detected", "recall", "notes"], &table);

    // The paper's phrasing is "twice as many anomalies as the most
    // *accurate* detector" — KL in its experiments (Fig. 6(c)) — not
    // the detector with the widest net.
    let kl_detected: usize = per_day
        .iter()
        .map(|day| {
            day.per_detector
                .iter()
                .find(|(k, _)| *k == DetectorKind::Kl)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        })
        .sum();
    let ratio_accurate = scann_detected as f64 / kl_detected.max(1) as f64;
    let ratio_coverage = scann_detected as f64 / best_single.max(1) as f64;
    println!(
        "\nSCANN vs most accurate detector (KL): {scann_detected} vs {kl_detected} → {ratio_accurate:.2}×"
    );
    println!(
        "SCANN vs widest-coverage detector:    {scann_detected} vs {best_single} → {ratio_coverage:.2}×"
    );
    println!("paper claim: ≈2× the most accurate detector — check the first ratio");
    println!("(the exact factor depends on the anomaly mix).");
    let _ = out::write_csv_series(
        &args.out_dir,
        "headline",
        &[
            "scann_detected",
            "kl_detected",
            "best_single",
            "ratio_vs_accurate",
            "total",
        ],
        &[vec![
            scann_detected.to_string(),
            kl_detected.to_string(),
            best_single.to_string(),
            format!("{ratio_accurate:.3}"),
            total.to_string(),
        ]],
    )
    .unwrap();
}
