//! Figure 7: attack-ratio time series of the four combination
//! strategies over the archive years.
//!
//! Panels: (a) accepted communities (higher is better), (b) rejected
//! (lower is better). Printed as monthly means; the full per-day
//! series lands in the CSV.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig7 [-- --panel a]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::{PipelineConfig, StrategyKind};
use mawilab_eval::attack_ratio_by_class;
use std::collections::BTreeMap;

const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Average,
    StrategyKind::Maximum,
    StrategyKind::Minimum,
    StrategyKind::Scann,
];

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig7: {} days at scale {}", days.len(), args.scale);

    // (date, strategy) → (accepted ratio, rejected ratio).
    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let mut v = Vec::new();
        for (kind, decisions) in ctx.per_strategy {
            if !STRATEGIES.contains(kind) {
                continue;
            }
            let r = attack_ratio_by_class(&ctx.report.labeled.communities, decisions);
            v.push((*kind, r.accepted, r.rejected));
        }
        (ctx.date, v)
    });

    for (panel, accepted) in [("a", true), ("b", false)] {
        if !args.wants_panel(panel) {
            continue;
        }
        let better = if accepted { "higher" } else { "lower" };
        println!(
            "\n== Fig 7({panel}): attack ratio over time, {} ({better} is better) ==",
            if accepted { "accepted" } else { "rejected" }
        );

        let mut rows = Vec::new();
        // monthly means per strategy: (year, month) → strategy → (sum, n)
        type MonthlySums = BTreeMap<(u16, u8), BTreeMap<&'static str, (f64, usize)>>;
        let mut monthly: MonthlySums = BTreeMap::new();
        for (date, per_strategy) in &per_day {
            for &(kind, acc, rej) in per_strategy {
                let val = if accepted { acc } else { rej };
                if let Some(v) = val {
                    rows.push(vec![
                        format!("{:.4}", date.fractional_year()),
                        kind.name().to_string(),
                        out::fmt(v),
                    ]);
                    let slot = monthly
                        .entry((date.year, date.month))
                        .or_default()
                        .entry(kind.name())
                        .or_insert((0.0, 0));
                    slot.0 += v;
                    slot.1 += 1;
                }
            }
        }
        // Print yearly means for compactness.
        let mut yearly: BTreeMap<u16, BTreeMap<&'static str, (f64, usize)>> = BTreeMap::new();
        for ((y, _m), per) in &monthly {
            for (name, (s, n)) in per {
                let slot = yearly
                    .entry(*y)
                    .or_default()
                    .entry(name)
                    .or_insert((0.0, 0));
                slot.0 += s;
                slot.1 += n;
            }
        }
        let mut table = Vec::new();
        for (y, per) in &yearly {
            let mut row = vec![y.to_string()];
            for kind in STRATEGIES {
                let (s, n) = per.get(kind.name()).copied().unwrap_or((0.0, 0));
                row.push(if n > 0 {
                    format!("{:.3}", s / n as f64)
                } else {
                    "-".into()
                });
            }
            table.push(row);
        }
        out::print_table(&["year", "average", "maximum", "minimum", "SCANN"], &table);
        let path = out::write_csv_series(
            &args.out_dir,
            &format!("fig7{panel}"),
            &["fractional_year", "strategy", "attack_ratio"],
            &rows,
        )
        .unwrap();
        println!("series → {path}");
    }

    println!("\npaper shape check: SCANN never has the worst ratio; both classes'");
    println!("ratios sag from 2007 on (elephant-flow mislabeling); rejected ratios");
    println!("bump during the 2003-2005 worm years.");
}
