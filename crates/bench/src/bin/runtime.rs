//! §6 runtime claim: "the current implementation requires only a few
//! minutes to combine alarms with a 15-minute traffic trace".
//!
//! Runs the full pipeline on a real-size 900-second trace and breaks
//! the wall-clock down by stage. Use `--scale` to push the packet
//! rate toward MAWI levels.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin runtime [-- --scale 1.0]
//! ```

use mawilab_bench::{out, Args};
use mawilab_core::{MawilabPipeline, PipelineConfig};
use mawilab_model::TraceDate;
use mawilab_synth::{ArchiveConfig, ArchiveSimulator};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale: args.scale,
        duration_s: 900, // the real 15-minute capture length
        ..Default::default()
    });
    let day = TraceDate::new(2004, 6, 2);
    eprintln!("generating a 900-second trace at scale {} …", args.scale);
    let t0 = Instant::now();
    let lt = sim.generate(day);
    let synth_time = t0.elapsed();
    println!(
        "trace: {} packets over {}s ({:.2} Mbps mean)",
        lt.trace.len(),
        lt.trace.meta.duration_s,
        lt.trace.mean_rate_mbps()
    );

    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    let t1 = Instant::now();
    let report = pipeline.run(&lt.trace);
    let total = t1.elapsed();

    println!(
        "\n{} alarms → {} communities → {} anomalous",
        report.alarm_count(),
        report.community_count(),
        report.labeled.count(mawilab_label::MawilabLabel::Anomalous)
    );
    out::print_table(
        &["stage", "wall-clock"],
        &[
            vec!["trace synthesis".into(), format!("{synth_time:?}")],
            vec![
                "detectors (12 configs)".into(),
                format!("{:?}", report.timings.detect),
            ],
            vec![
                "traffic extraction".into(),
                format!("{:?}", report.timings.extract),
            ],
            vec![
                "similarity graph (sharded)".into(),
                format!("{:?}", report.timings.graph),
            ],
            vec!["Louvain".into(), format!("{:?}", report.timings.louvain)],
            vec!["combiner".into(), format!("{:?}", report.timings.combine)],
            vec!["labeling".into(), format!("{:?}", report.timings.label)],
            vec!["pipeline total".into(), format!("{total:?}")],
        ],
    );
    let claim_ok = total.as_secs() < 300;
    println!(
        "\n§6 claim (few minutes per 15-minute trace): measured {:.1}s → {}",
        total.as_secs_f64(),
        if claim_ok { "HOLDS" } else { "EXCEEDED" }
    );
}
