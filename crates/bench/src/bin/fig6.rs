//! Figure 6: probability density of the attack ratio over all
//! analyzed days.
//!
//! Panels (select with `--panel a|b|c`):
//! * (a) accepted communities, four combination strategies — more
//!   mass at high attack ratio is better,
//! * (b) rejected communities — more mass at low ratio is better,
//! * (c) the four detectors alone.
//!
//! Paper workload: every day 2001–2009; default here `--days 2`/mo.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig6 [-- --panel a]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::{PipelineConfig, StrategyKind};
use mawilab_detectors::DetectorKind;
use mawilab_eval::{attack_ratio_by_class, detector_attack_ratio, pdf_histogram};

const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Average,
    StrategyKind::Maximum,
    StrategyKind::Minimum,
    StrategyKind::Scann,
];

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig6: {} days at scale {}", days.len(), args.scale);

    struct Day {
        accepted: Vec<(StrategyKind, f64)>,
        rejected: Vec<(StrategyKind, f64)>,
        detectors: Vec<(DetectorKind, f64)>,
    }

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let mut d = Day {
            accepted: vec![],
            rejected: vec![],
            detectors: vec![],
        };
        for (kind, decisions) in ctx.per_strategy {
            if !STRATEGIES.contains(kind) {
                continue;
            }
            let r = attack_ratio_by_class(&ctx.report.labeled.communities, decisions);
            if let Some(a) = r.accepted {
                d.accepted.push((*kind, a));
            }
            if let Some(b) = r.rejected {
                d.rejected.push((*kind, b));
            }
        }
        for det in DetectorKind::ALL {
            if let Some(r) = detector_attack_ratio(
                &ctx.report.communities,
                &ctx.report.labeled.communities,
                det,
            ) {
                d.detectors.push((det, r));
            }
        }
        d
    });

    let pdf_of = |values: &[f64]| pdf_histogram(values, 20, 0.0, 1.0);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    if args.wants_panel("a") || args.wants_panel("b") {
        for (panel, accepted) in [("a", true), ("b", false)] {
            if !args.wants_panel(panel) {
                continue;
            }
            let title = if accepted {
                "accepted (higher is better)"
            } else {
                "rejected (lower is better)"
            };
            println!("\n== Fig 6({panel}): PDF of attack ratio, {title} ==");
            let mut rows = Vec::new();
            let mut table = Vec::new();
            for kind in STRATEGIES {
                let values: Vec<f64> = per_day
                    .iter()
                    .flat_map(|d| if accepted { &d.accepted } else { &d.rejected })
                    .filter(|(k, _)| *k == kind)
                    .map(|&(_, v)| v)
                    .collect();
                table.push(vec![
                    kind.name().to_string(),
                    values.len().to_string(),
                    format!("{:.3}", mean(&values)),
                ]);
                for (x, dens) in pdf_of(&values) {
                    rows.push(vec![kind.name().to_string(), out::fmt(x), out::fmt(dens)]);
                }
            }
            out::print_table(&["strategy", "days", "mean attack ratio"], &table);
            let path = out::write_csv_series(
                &args.out_dir,
                &format!("fig6{panel}"),
                &["strategy", "attack_ratio", "density"],
                &rows,
            )
            .unwrap();
            println!("series → {path}");
        }
    }

    if args.wants_panel("c") {
        println!("\n== Fig 6(c): PDF of attack ratio per detector ==");
        let mut rows = Vec::new();
        let mut table = Vec::new();
        for det in DetectorKind::ALL {
            let values: Vec<f64> = per_day
                .iter()
                .flat_map(|d| &d.detectors)
                .filter(|(k, _)| *k == det)
                .map(|&(_, v)| v)
                .collect();
            table.push(vec![
                det.to_string(),
                values.len().to_string(),
                format!("{:.3}", mean(&values)),
            ]);
            for (x, dens) in pdf_of(&values) {
                rows.push(vec![det.to_string(), out::fmt(x), out::fmt(dens)]);
            }
        }
        out::print_table(&["detector", "days", "mean attack ratio"], &table);
        let path = out::write_csv_series(
            &args.out_dir,
            "fig6c",
            &["detector", "attack_ratio", "density"],
            &rows,
        )
        .unwrap();
        println!("series → {path}");
    }

    println!("\npaper shape check: SCANN has the strongest high-ratio mass among");
    println!("accepted classes (a); maximum has the strongest low-ratio mass among");
    println!("rejected (b); KL is the best single detector, below SCANN (c).");
}
