//! Table 1: the heuristics used to referee combination strategies.
//!
//! Prints the rule table and demonstrates each row on a synthetic
//! traffic snippet, verifying the implementation's semantics live.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin table1
//! ```

use mawilab_bench::out;
use mawilab_label::{classify_packets, HeuristicLabel};
use mawilab_model::{Packet, TcpFlags};
use std::net::Ipv4Addr;

fn ip(d: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 51, 100, d)
}

fn syns(port: u16, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::tcp(
                i as u64,
                ip((i % 200) as u8),
                1025 + i as u16,
                ip(250),
                port,
                TcpFlags::syn(),
                48,
            )
        })
        .collect()
}

fn main() {
    println!("== Table 1: heuristics labeling community traffic ==\n");
    let rows = vec![
        vec![
            "Attack".into(),
            "Sasser".into(),
            "ports 1023/tcp, 5554/tcp or 9898/tcp".into(),
        ],
        vec!["Attack".into(), "RPC".into(), "port 135/tcp".into()],
        vec!["Attack".into(), "SMB".into(), "port 445/tcp".into()],
        vec!["Attack".into(), "Ping".into(), "high ICMP traffic".into()],
        vec![
            "Attack".into(),
            "Other attacks".into(),
            ">7 packets and SYN/RST/FIN >= 50%; or http/ftp/ssh/dns with SYN >= 30%".into(),
        ],
        vec![
            "Attack".into(),
            "NetBIOS".into(),
            "ports 137/udp or 139/tcp".into(),
        ],
        vec![
            "Special".into(),
            "Http".into(),
            "ports 80/tcp, 8080/tcp with < 30% SYN".into(),
        ],
        vec![
            "Special".into(),
            "dns,ftp,ssh".into(),
            "ports 20, 21, 22/tcp or 53/tcp&udp with < 30% SYN".into(),
        ],
        vec![
            "Unknown".into(),
            "Unknown".into(),
            "traffic matching no other heuristic".into(),
        ],
    ];
    out::print_table(&["category", "label", "details"], &rows);

    println!("\n== live demonstration on synthetic snippets ==\n");
    let demos: Vec<(&str, Vec<Packet>, HeuristicLabel)> = vec![
        (
            "5554/tcp backdoor flows",
            syns(5554, 20),
            HeuristicLabel::Sasser,
        ),
        ("135/tcp sweep", syns(135, 20), HeuristicLabel::Rpc),
        ("445/tcp sweep", syns(445, 20), HeuristicLabel::Smb),
        (
            "ICMP echo flood",
            (0..40)
                .map(|i| Packet::icmp(i, ip(1), ip(2), 8, 0, 1064))
                .collect(),
            HeuristicLabel::Ping,
        ),
        (
            "SYN scan on 6667/tcp",
            syns(6667, 30),
            HeuristicLabel::OtherAttack,
        ),
        (
            "137/udp name queries",
            (0..30)
                .map(|i| Packet::udp(i, ip(1), 137, ip((i % 99) as u8), 137, 78))
                .collect(),
            HeuristicLabel::NetBios,
        ),
        (
            "HTTP download",
            (0..30)
                .map(|i| {
                    Packet::tcp(
                        i,
                        ip(2),
                        80,
                        ip(1),
                        2000,
                        TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                        512,
                    )
                })
                .collect(),
            HeuristicLabel::Http,
        ),
        (
            "DNS exchange",
            (0..20)
                .map(|i| Packet::udp(i, ip(1), 1025, ip(2), 53, 80))
                .collect(),
            HeuristicLabel::MultiServices,
        ),
        (
            "p2p transfer on high ports",
            (0..30)
                .map(|i| {
                    Packet::tcp(
                        i,
                        ip(1),
                        40000,
                        ip(2),
                        50000,
                        TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                        1500,
                    )
                })
                .collect(),
            HeuristicLabel::Unknown,
        ),
    ];
    let mut table = Vec::new();
    let mut all_ok = true;
    for (name, packets, expected) in &demos {
        let got = classify_packets(packets.iter());
        let ok = got == *expected;
        all_ok &= ok;
        table.push(vec![
            name.to_string(),
            expected.to_string(),
            got.to_string(),
            if ok { "ok".into() } else { "MISMATCH".into() },
        ]);
    }
    out::print_table(&["snippet", "expected", "classified", "check"], &table);
    assert!(all_ok, "heuristic semantics drifted from Table 1");
    println!("\nall demonstration snippets classified as the table prescribes.");
}
