//! Hot-path trajectory benchmark: every optimized kernel measured
//! against its retained seed implementation.
//!
//! Writes `results/BENCH_hotpaths.json` with six sections:
//!
//! * `similarity_graph` — the criterion bench workload, built with
//!   the retained sequential reference (`build_graph_sequential`,
//!   byte-for-byte the seed algorithm) and with the sharded engine at
//!   a sweep of `MAWILAB_THREADS` settings;
//! * `louvain` — the criterion bench graphs under the CSR engine at a
//!   thread sweep, alongside the seed-commit criterion medians;
//! * `extract` — traffic extraction through the inverted `AlarmIndex`
//!   vs the seed per-alarm scan (`extract_traffic_sequential`);
//! * `svd` — the randomized subspace sketch vs the exact Gram engine
//!   (`Svd::exact_gram`) on above-the-gate low-rank matrices;
//! * `mining` — FP-growth vs modified Apriori on large transaction
//!   sets;
//! * `pipeline` — the end-to-end criterion trace, alongside the seed
//!   median.
//!
//! Seed numbers marked `seed_criterion_us` were measured by running
//! the criterion benches at the pre-refactor commit (recorded in the
//! JSON) on the same container; the `*_reference_us` numbers are the
//! retained seed algorithms measured live in the same process.
//!
//! `--scaling` runs the worker-scaling study instead: the parallel
//! stages (sharded graph build, CSR Louvain, the inverted extraction
//! index, the single-pass online pipeline end to end) at worker
//! counts 1→N, reporting per-stage speedup and parallel efficiency
//! (`t1 / (k · tk)`) into `results/BENCH_scaling.json`.
//!
//! `--smoke` shrinks every workload to CI size: same sections, same
//! JSON shape, seconds instead of minutes.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin hotpaths [-- --out results] [--smoke]
//! cargo run --release -p mawilab-bench --bin hotpaths -- --scaling [--max-workers 8]
//! ```

use mawilab_core::{MawilabPipeline, OnlinePipeline, PipelineConfig};
use mawilab_detectors::{Alarm, AlarmScope, DetectorKind, TraceView, Tuning};
use mawilab_graph::{louvain, Graph};
use mawilab_linalg::{Matrix, Svd};
use mawilab_mining::{apriori, fp_growth, Transaction};
use mawilab_model::{
    FlowKey, FlowTable, Granularity, Packet, Protocol, TcpFlags, TimeWindow, Trace, TraceChunker,
    TraceDate, TraceMeta, TrafficRule, DEFAULT_CHUNK_US,
};
use mawilab_similarity::{extract_traffic, extract_traffic_sequential, SimilarityEstimator};
use mawilab_synth::{SynthConfig, TraceGenerator};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// Commit the `seed_*` medians below were measured at (criterion
/// benches, same container).
const SEED_COMMIT: &str = "8d22ca9 (PR 2)";

/// Criterion medians at the seed commit, microseconds.
const SEED_SIMILARITY_GRAPH_US: [(usize, f64); 2] = [(200, 1_630.0), (1000, 9_700.0)];
const SEED_LOUVAIN_US: [(usize, f64); 2] = [(500, 71.2), (2000, 372.9)];
const SEED_PIPELINE_US: f64 = 129_260.0;

/// Same workload as the `similarity_graph` criterion bench: groups of
/// ~6 alarms sharing most of their items.
fn alarm_sets(n: usize) -> Vec<Vec<u32>> {
    let mut state = 11u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let group = (i / 6) as u32;
            let base = group * 400;
            let mut set: Vec<u32> = (0..80).map(|_| base + rnd() % 300).collect();
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect()
}

/// Same graph shape as the `louvain` criterion bench: clique-ish
/// communities of ~8 over 60% of the nodes, the rest isolated.
fn similarity_like(n: usize) -> Graph {
    let mut g = Graph::new(n);
    let clustered = n * 6 / 10;
    let mut state = 7u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    let comm_size = 8;
    for start in (0..clustered).step_by(comm_size) {
        let end = (start + comm_size).min(clustered);
        for i in start..end {
            for j in (i + 1)..end {
                if rnd() % 10 < 7 {
                    g.add_edge(i, j, ((rnd() % 90) + 10) as f64 / 100.0);
                }
            }
        }
    }
    g
}

/// Pool-driven trace + mixed-scope alarms for the extraction kernels:
/// packets drawn from a pool of `n_flows` flows (archive traffic runs
/// ~5 packets per item) over small endpoint pools, so the alarms
/// genuinely claim a sizeable share of the traffic; scope kinds cover
/// every `AlarmIndex` bucket (host hashes, selective rules, flow
/// sets). `n_flows == n_packets` is the index's worst case — every
/// packet pays a full per-flow candidate resolution.
fn extraction_workload(n_packets: usize, n_flows: usize, n_alarms: usize) -> (Trace, Vec<Alarm>) {
    let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
    let w = meta.window();
    let span = w.end_us - w.start_us;
    let mut state = 3u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    let flow_pool: Vec<(Ipv4Addr, Ipv4Addr, u16, u16, Protocol)> = (0..n_flows)
        .map(|_| {
            (
                Ipv4Addr::new(10, 1, rnd(4) as u8, rnd(16) as u8),
                Ipv4Addr::new(10, 2, rnd(2) as u8, rnd(16) as u8),
                1024 + rnd(512) as u16,
                [80, 445, 53, 8080, 123, 22, 25, 443][rnd(8) as usize],
                if rnd(10) < 8 {
                    Protocol::Tcp
                } else {
                    Protocol::Udp
                },
            )
        })
        .collect();
    let packets: Vec<Packet> = (0..n_packets)
        .map(|i| {
            // Mild skew: a few heavy flows, a long tail.
            let f = flow_pool[(rnd(n_flows as u64).min(rnd(n_flows as u64))) as usize];
            Packet {
                ts_us: w.start_us + i as u64 * (span / n_packets as u64),
                src: f.0,
                dst: f.1,
                sport: f.2,
                dport: f.3,
                len: 40 + rnd(1400) as u16,
                proto: f.4,
                flags: if f.4 == Protocol::Tcp {
                    TcpFlags::syn()
                } else {
                    TcpFlags::empty()
                },
            }
        })
        .collect();
    let alarms: Vec<Alarm> = (0..n_alarms)
        .map(|_| {
            let start = w.start_us + rnd(span * 3 / 4);
            let window = TimeWindow::new(start, (start + span / 8 + rnd(span / 8)).min(w.end_us));
            let scope = match rnd(20) {
                0..=7 => AlarmScope::SrcHost(Ipv4Addr::new(10, 1, rnd(4) as u8, rnd(16) as u8)),
                8..=12 => AlarmScope::DstHost(Ipv4Addr::new(10, 2, rnd(2) as u8, rnd(16) as u8)),
                13..=16 => AlarmScope::Rule(TrafficRule {
                    dport: Some([80, 445, 53, 8080][rnd(4) as usize]),
                    ..Default::default()
                }),
                17 | 18 => AlarmScope::Rule(TrafficRule {
                    src: Some(Ipv4Addr::new(10, 1, rnd(4) as u8, rnd(16) as u8)),
                    sport: Some(1024 + rnd(512) as u16),
                    ..Default::default()
                }),
                _ => AlarmScope::FlowSet(
                    (0..3)
                        .map(|_| FlowKey::of(&packets[rnd(n_packets as u64) as usize]))
                        .collect(),
                ),
            };
            Alarm {
                detector: DetectorKind::Pca,
                tuning: Tuning::Optimal,
                window,
                scope,
                score: 1.0,
            }
        })
        .collect();
    (Trace::new(meta, packets), alarms)
}

/// Deterministic pseudo-random matrix of rank ≤ `rank`, for the SVD
/// kernels (above the exact gate, where the sketch engages).
fn low_rank_matrix(n: usize, m: usize, rank: usize) -> Matrix {
    let mut state = 17u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut left = Matrix::zeros(n, rank);
    let mut right = Matrix::zeros(rank, m);
    for i in 0..n {
        for j in 0..rank {
            left[(i, j)] = next();
        }
    }
    for i in 0..rank {
        for j in 0..m {
            right[(i, j)] = next();
        }
    }
    left.matmul(&right)
}

/// Community-like transaction mix for the mining kernels: every field
/// drawn from a ~12-value pool, so at low support thresholds dozens of
/// items stay frequent and Apriori's candidate × transaction rescans
/// dominate — the regime the FP-growth cutover exists for.
fn mining_workload(n: usize) -> Vec<Transaction> {
    let mut state = 29u64;
    let mut rnd = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) % m
    };
    (0..n)
        .map(|_| {
            Transaction::new(
                Ipv4Addr::new(10, 1, 0, rnd(12) as u8),
                1024 + rnd(12) as u16,
                Ipv4Addr::new(10, 2, 0, rnd(12) as u8),
                [80, 445, 53, 8080, 123, 22, 25, 443, 8443, 3306, 6667, 179][rnd(12) as usize],
            )
        })
        .collect()
}

/// Median wall-clock of `iters` runs of `f`, in microseconds.
fn median_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    // One warm-up.
    f();
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e6
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("MAWILAB_THREADS", threads.to_string());
    let r = f();
    std::env::remove_var("MAWILAB_THREADS");
    r
}

/// One stage of the `--scaling` study: a name and a closure timed at
/// each worker count.
struct ScalingStage<'a> {
    name: &'static str,
    iters: usize,
    run: Box<dyn FnMut() + 'a>,
}

/// Worker-scaling study: every parallel stage at 1→`max_workers`
/// workers, with per-stage speedup (`t1/tk`) and parallel efficiency
/// (`t1 / (k · tk)`). Efficiency is the honest number — a stage whose
/// speedup plateaus shows efficiency collapsing as k grows.
fn run_scaling(out_dir: &str, max_workers: usize) {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers: Vec<usize> = (0..)
        .map(|i| 1usize << i)
        .take_while(|&k| k <= max_workers)
        .collect();
    let est = SimilarityEstimator::default();
    let sets = alarm_sets(1000);
    let g = similarity_like(2000);
    let (ex_trace, ex_alarms) = extraction_workload(20_000, 4_000, 150);
    let ex_flows = FlowTable::build(&ex_trace.packets);
    let ex_view = TraceView::new(&ex_trace, &ex_flows);
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let online = OnlinePipeline::new(PipelineConfig::default());

    let stages: Vec<ScalingStage> = vec![
        ScalingStage {
            name: "similarity_graph",
            iters: 30,
            run: Box::new(|| drop(black_box(est.build_graph(black_box(&sets))))),
        },
        ScalingStage {
            name: "louvain",
            iters: 30,
            run: Box::new(|| drop(black_box(louvain(black_box(&g), 1.0)))),
        },
        ScalingStage {
            name: "extraction_index",
            iters: 20,
            run: Box::new(|| {
                drop(black_box(extract_traffic(
                    black_box(&ex_view),
                    black_box(&ex_alarms),
                    Granularity::Uniflow,
                )))
            }),
        },
        ScalingStage {
            name: "online_pipeline",
            iters: 3,
            run: Box::new(|| {
                let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
                drop(black_box(online.run(&mut source).expect("online run")));
            }),
        },
    ];

    let mut rows: Vec<String> = Vec::new();
    for mut stage in stages {
        let mut t1_us = 0.0f64;
        let cells: Vec<String> = workers
            .iter()
            .map(|&k| {
                let us = with_threads(k, || median_us(stage.iters, &mut stage.run));
                if k == 1 {
                    t1_us = us;
                }
                let speedup = t1_us / us.max(1e-9);
                let efficiency = speedup / k as f64;
                eprintln!(
                    "{}/{k}: {us:.0}us speedup {speedup:.2} efficiency {efficiency:.2}",
                    stage.name
                );
                format!(
                    "      {{\"workers\": {k}, \"median_us\": {us:.1}, \
                     \"speedup\": {speedup:.3}, \"efficiency\": {efficiency:.3}}}"
                )
            })
            .collect();
        rows.push(format!(
            "    {{\"stage\": \"{}\", \"points\": [\n{}\n    ]}}",
            stage.name,
            cells.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin hotpaths -- --scaling\",\n  \
         \"hardware_threads\": {hardware},\n  \
         \"note\": \"workers sweep via MAWILAB_THREADS; efficiency = t1/(k*tk); counts above \
         hardware_threads only add fan-out overhead\",\n  \
         \"stages\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::create_dir_all(out_dir).expect("creating out dir");
    let path = format!("{out_dir}/BENCH_scaling.json");
    std::fs::write(&path, &json).expect("writing BENCH_scaling.json");
    println!("{json}");
    eprintln!("wrote {path}");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = argv
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "results".into());
    if argv.iter().any(|a| a == "--scaling") {
        let max_workers = argv
            .windows(2)
            .find(|w| w[0] == "--max-workers")
            .and_then(|w| w[1].parse().ok())
            .unwrap_or(8);
        run_scaling(&out_dir, max_workers);
        return;
    }
    let smoke = argv.iter().any(|a| a == "--smoke");
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads_sweep = [1usize, 2, 4, 8];
    let est = SimilarityEstimator::default();

    // Sharded graph build vs the sequential reference.
    let mut sim_rows: Vec<String> = Vec::new();
    for (n, seed_us) in SEED_SIMILARITY_GRAPH_US {
        if smoke && n > 200 {
            continue;
        }
        let sets = alarm_sets(n);
        let iters = if smoke {
            5
        } else if n >= 1000 {
            30
        } else {
            100
        };
        let sequential = median_us(iters, || {
            drop(black_box(est.build_graph_sequential(black_box(&sets))))
        });
        let sharded: Vec<String> = threads_sweep
            .iter()
            .map(|&t| {
                let us = with_threads(t, || {
                    median_us(iters, || drop(black_box(est.build_graph(black_box(&sets)))))
                });
                format!("\"{t}\": {us:.1}")
            })
            .collect();
        eprintln!(
            "similarity_graph/{n}: seq {sequential:.0}us, sharded {}",
            sharded.join(" ")
        );
        sim_rows.push(format!(
            "    {{\"n\": {n}, \"seed_criterion_us\": {seed_us}, \"sequential_reference_us\": {sequential:.1}, \
             \"sharded_us_by_threads\": {{{}}}}}",
            sharded.join(", ")
        ));
    }

    // CSR Louvain.
    let mut louvain_rows: Vec<String> = Vec::new();
    for (n, seed_us) in SEED_LOUVAIN_US {
        if smoke && n > 500 {
            continue;
        }
        let g = similarity_like(n);
        let iters = if smoke {
            5
        } else if n >= 2000 {
            30
        } else {
            100
        };
        let csr: Vec<String> = [1usize, 4]
            .iter()
            .map(|&t| {
                let us = with_threads(t, || {
                    median_us(iters, || drop(black_box(louvain(black_box(&g), 1.0))))
                });
                format!("\"{t}\": {us:.1}")
            })
            .collect();
        eprintln!("louvain/{n}: csr {}", csr.join(" "));
        louvain_rows.push(format!(
            "    {{\"n\": {n}, \"seed_criterion_us\": {seed_us}, \"csr_us_by_threads\": {{{}}}}}",
            csr.join(", ")
        ));
    }

    // Traffic extraction: inverted AlarmIndex vs the seed per-alarm
    // scan, on pool-driven traces with mixed-scope alarm sets. The
    // last case is the index's worst regime — one packet per flow, so
    // candidate resolution amortizes over nothing.
    let extract_cases: &[(usize, usize, usize)] = if smoke {
        &[(2_000, 400, 40)]
    } else {
        &[
            (20_000, 4_000, 150),
            (60_000, 12_000, 300),
            (60_000, 60_000, 300),
        ]
    };
    let mut extract_rows: Vec<String> = Vec::new();
    for &(n_packets, n_flows, n_alarms) in extract_cases {
        let (trace, alarms) = extraction_workload(n_packets, n_flows, n_alarms);
        let flows = FlowTable::build(&trace.packets);
        let view = TraceView::new(&trace, &flows);
        let iters = if smoke { 3 } else { 5 };
        let sequential = median_us(iters, || {
            drop(black_box(extract_traffic_sequential(
                black_box(&view),
                black_box(&alarms),
                Granularity::Uniflow,
            )))
        });
        let indexed: Vec<String> = threads_sweep
            .iter()
            .map(|&t| {
                let us = with_threads(t, || {
                    median_us(iters, || {
                        drop(black_box(extract_traffic(
                            black_box(&view),
                            black_box(&alarms),
                            Granularity::Uniflow,
                        )))
                    })
                });
                format!("\"{t}\": {us:.1}")
            })
            .collect();
        let distinct_flows = flows.uniflow_count();
        eprintln!(
            "extract/{n_packets}p/{distinct_flows}f/{n_alarms}a: seq {sequential:.0}us, indexed {}",
            indexed.join(" ")
        );
        extract_rows.push(format!(
            "    {{\"packets\": {n_packets}, \"flows\": {distinct_flows}, \"alarms\": {n_alarms}, \
             \"sequential_reference_us\": {sequential:.1}, \"indexed_us_by_threads\": {{{}}}}}",
            indexed.join(", ")
        ));
    }

    // SVD: randomized sketch vs the exact Gram engine, above the gate.
    let svd_cases: &[(usize, usize, usize)] = if smoke {
        &[(120, 90, 8)]
    } else {
        &[(300, 120, 12), (500, 200, 24)]
    };
    let mut svd_rows: Vec<String> = Vec::new();
    for &(n, m, rank) in svd_cases {
        let a = low_rank_matrix(n, m, rank);
        let iters = if smoke { 3 } else { 5 };
        let exact = median_us(iters, || {
            drop(black_box(Svd::exact_gram(black_box(&a), 1e-12)))
        });
        let randomized = median_us(iters, || {
            drop(black_box(Svd::with_tolerance(black_box(&a), 1e-12)))
        });
        eprintln!("svd/{n}x{m}r{rank}: exact {exact:.0}us, randomized {randomized:.0}us");
        svd_rows.push(format!(
            "    {{\"rows\": {n}, \"cols\": {m}, \"rank\": {rank}, \
             \"exact_gram_us\": {exact:.1}, \"randomized_us\": {randomized:.1}}}"
        ));
    }

    // Mining: FP-growth vs modified Apriori on large transaction
    // sets, at the paper's threshold and at a low one where Apriori's
    // candidate space explodes.
    let mining_cases: &[(usize, f64)] = if smoke {
        &[(500, 0.05)]
    } else {
        &[(2_000, 0.2), (10_000, 0.2), (10_000, 0.05)]
    };
    let mut mining_rows: Vec<String> = Vec::new();
    for &(n, support) in mining_cases {
        let txs = mining_workload(n);
        let iters = if smoke { 3 } else { 5 };
        let apriori_us = median_us(iters, || drop(black_box(apriori(black_box(&txs), support))));
        let fp_us = median_us(iters, || {
            drop(black_box(fp_growth(black_box(&txs), support)))
        });
        eprintln!("mining/{n}@{support}: apriori {apriori_us:.0}us, fp_growth {fp_us:.0}us");
        mining_rows.push(format!(
            "    {{\"transactions\": {n}, \"support\": {support}, \
             \"apriori_reference_us\": {apriori_us:.1}, \"fp_growth_us\": {fp_us:.1}}}"
        ));
    }

    // End-to-end pipeline (criterion trace, seed 77).
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    let pipe_rows: Vec<String> = [1usize, 4]
        .iter()
        .map(|&t| {
            let us = with_threads(t, || {
                median_us(if smoke { 2 } else { 5 }, || {
                    drop(black_box(pipeline.run(black_box(&lt.trace))))
                })
            });
            format!("\"{t}\": {us:.1}")
        })
        .collect();
    eprintln!("pipeline: {}", pipe_rows.join(" "));

    // The caveat is derived from the runtime-detected core count, not
    // hand-written for any particular host.
    let note = if hardware == 1 {
        format!(
            "medians in microseconds; *_reference engines are the retained seed algorithms \
             measured live in-process; this host reports {hardware} hardware thread, so every \
             speedup shown is algorithmic and thread counts above 1 only add fan-out overhead — \
             re-run on a multicore host to measure parallel scaling"
        )
    } else {
        format!(
            "medians in microseconds; *_reference engines are the retained seed algorithms \
             measured live in-process; this host reports {hardware} hardware threads — \
             per-thread columns up to that count reflect real parallel scaling, higher counts \
             only add fan-out overhead"
        )
    };

    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin hotpaths\",\n  \
         \"seed_commit\": \"{SEED_COMMIT}\",\n  \"hardware_threads\": {hardware},\n  \
         \"smoke\": {smoke},\n  \"note\": \"{note}\",\n  \"similarity_graph\": [\n{}\n  ],\n  \"louvain\": [\n{}\n  ],\n  \
         \"extract\": [\n{}\n  ],\n  \"svd\": [\n{}\n  ],\n  \"mining\": [\n{}\n  ],\n  \
         \"pipeline\": {{\"seed_criterion_us\": {SEED_PIPELINE_US}, \"end_to_end_us_by_threads\": {{{}}}}}\n}}\n",
        sim_rows.join(",\n"),
        louvain_rows.join(",\n"),
        extract_rows.join(",\n"),
        svd_rows.join(",\n"),
        mining_rows.join(",\n"),
        pipe_rows.join(", "),
    );
    std::fs::create_dir_all(&out_dir).expect("creating out dir");
    let path = format!("{out_dir}/BENCH_hotpaths.json");
    std::fs::write(&path, &json).expect("writing BENCH_hotpaths.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
