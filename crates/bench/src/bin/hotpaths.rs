//! Hot-path trajectory benchmark: the sharded similarity engine and
//! the CSR Louvain rewrite, measured against the seed baselines.
//!
//! Writes `results/BENCH_hotpaths.json` with three sections:
//!
//! * `similarity_graph` — the criterion bench workload, built with
//!   the retained sequential reference (`build_graph_sequential`,
//!   byte-for-byte the seed algorithm) and with the sharded engine at
//!   a sweep of `MAWILAB_THREADS` settings;
//! * `louvain` — the criterion bench graphs under the CSR engine at a
//!   thread sweep, alongside the seed-commit criterion medians;
//! * `pipeline` — the end-to-end criterion trace, alongside the seed
//!   median.
//!
//! Seed numbers were measured by running the criterion benches at the
//! pre-refactor commit (recorded in the JSON) on the same container;
//! re-measure by checking that commit out.
//!
//! `--scaling` runs the worker-scaling study instead: the parallel
//! stages (sharded graph build, CSR Louvain, the single-pass online
//! pipeline end to end) at worker counts 1→N, reporting per-stage
//! speedup and parallel efficiency (`t1 / (k · tk)`) into
//! `results/BENCH_scaling.json`.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin hotpaths [-- --out results]
//! cargo run --release -p mawilab-bench --bin hotpaths -- --scaling [--max-workers 8]
//! ```

use mawilab_core::{MawilabPipeline, OnlinePipeline, PipelineConfig};
use mawilab_graph::{louvain, Graph};
use mawilab_model::{TraceChunker, DEFAULT_CHUNK_US};
use mawilab_similarity::SimilarityEstimator;
use mawilab_synth::{SynthConfig, TraceGenerator};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Commit the `seed_*` medians below were measured at (criterion
/// benches, same container).
const SEED_COMMIT: &str = "8d22ca9 (PR 2)";

/// Criterion medians at the seed commit, microseconds.
const SEED_SIMILARITY_GRAPH_US: [(usize, f64); 2] = [(200, 1_630.0), (1000, 9_700.0)];
const SEED_LOUVAIN_US: [(usize, f64); 2] = [(500, 71.2), (2000, 372.9)];
const SEED_PIPELINE_US: f64 = 129_260.0;

/// Same workload as the `similarity_graph` criterion bench: groups of
/// ~6 alarms sharing most of their items.
fn alarm_sets(n: usize) -> Vec<Vec<u32>> {
    let mut state = 11u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let group = (i / 6) as u32;
            let base = group * 400;
            let mut set: Vec<u32> = (0..80).map(|_| base + rnd() % 300).collect();
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect()
}

/// Same graph shape as the `louvain` criterion bench: clique-ish
/// communities of ~8 over 60% of the nodes, the rest isolated.
fn similarity_like(n: usize) -> Graph {
    let mut g = Graph::new(n);
    let clustered = n * 6 / 10;
    let mut state = 7u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    let comm_size = 8;
    for start in (0..clustered).step_by(comm_size) {
        let end = (start + comm_size).min(clustered);
        for i in start..end {
            for j in (i + 1)..end {
                if rnd() % 10 < 7 {
                    g.add_edge(i, j, ((rnd() % 90) + 10) as f64 / 100.0);
                }
            }
        }
    }
    g
}

/// Median wall-clock of `iters` runs of `f`, in microseconds.
fn median_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    // One warm-up.
    f();
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e6
}

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("MAWILAB_THREADS", threads.to_string());
    let r = f();
    std::env::remove_var("MAWILAB_THREADS");
    r
}

/// One stage of the `--scaling` study: a name and a closure timed at
/// each worker count.
struct ScalingStage<'a> {
    name: &'static str,
    iters: usize,
    run: Box<dyn FnMut() + 'a>,
}

/// Worker-scaling study: every parallel stage at 1→`max_workers`
/// workers, with per-stage speedup (`t1/tk`) and parallel efficiency
/// (`t1 / (k · tk)`). Efficiency is the honest number — a stage whose
/// speedup plateaus shows efficiency collapsing as k grows.
fn run_scaling(out_dir: &str, max_workers: usize) {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers: Vec<usize> = (0..)
        .map(|i| 1usize << i)
        .take_while(|&k| k <= max_workers)
        .collect();
    let est = SimilarityEstimator::default();
    let sets = alarm_sets(1000);
    let g = similarity_like(2000);
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let online = OnlinePipeline::new(PipelineConfig::default());

    let stages: Vec<ScalingStage> = vec![
        ScalingStage {
            name: "similarity_graph",
            iters: 30,
            run: Box::new(|| drop(black_box(est.build_graph(black_box(&sets))))),
        },
        ScalingStage {
            name: "louvain",
            iters: 30,
            run: Box::new(|| drop(black_box(louvain(black_box(&g), 1.0)))),
        },
        ScalingStage {
            name: "online_pipeline",
            iters: 3,
            run: Box::new(|| {
                let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
                drop(black_box(online.run(&mut source).expect("online run")));
            }),
        },
    ];

    let mut rows: Vec<String> = Vec::new();
    for mut stage in stages {
        let mut t1_us = 0.0f64;
        let cells: Vec<String> = workers
            .iter()
            .map(|&k| {
                let us = with_threads(k, || median_us(stage.iters, &mut stage.run));
                if k == 1 {
                    t1_us = us;
                }
                let speedup = t1_us / us.max(1e-9);
                let efficiency = speedup / k as f64;
                eprintln!(
                    "{}/{k}: {us:.0}us speedup {speedup:.2} efficiency {efficiency:.2}",
                    stage.name
                );
                format!(
                    "      {{\"workers\": {k}, \"median_us\": {us:.1}, \
                     \"speedup\": {speedup:.3}, \"efficiency\": {efficiency:.3}}}"
                )
            })
            .collect();
        rows.push(format!(
            "    {{\"stage\": \"{}\", \"points\": [\n{}\n    ]}}",
            stage.name,
            cells.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin hotpaths -- --scaling\",\n  \
         \"hardware_threads\": {hardware},\n  \
         \"note\": \"workers sweep via MAWILAB_THREADS; efficiency = t1/(k*tk); counts above \
         hardware_threads only add fan-out overhead\",\n  \
         \"stages\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::create_dir_all(out_dir).expect("creating out dir");
    let path = format!("{out_dir}/BENCH_scaling.json");
    std::fs::write(&path, &json).expect("writing BENCH_scaling.json");
    println!("{json}");
    eprintln!("wrote {path}");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = argv
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "results".into());
    if argv.iter().any(|a| a == "--scaling") {
        let max_workers = argv
            .windows(2)
            .find(|w| w[0] == "--max-workers")
            .and_then(|w| w[1].parse().ok())
            .unwrap_or(8);
        run_scaling(&out_dir, max_workers);
        return;
    }
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads_sweep = [1usize, 2, 4, 8];
    let est = SimilarityEstimator::default();

    // Sharded graph build vs the sequential reference.
    let mut sim_rows: Vec<String> = Vec::new();
    for (n, seed_us) in SEED_SIMILARITY_GRAPH_US {
        let sets = alarm_sets(n);
        let iters = if n >= 1000 { 30 } else { 100 };
        let sequential = median_us(iters, || {
            drop(black_box(est.build_graph_sequential(black_box(&sets))))
        });
        let sharded: Vec<String> = threads_sweep
            .iter()
            .map(|&t| {
                let us = with_threads(t, || {
                    median_us(iters, || drop(black_box(est.build_graph(black_box(&sets)))))
                });
                format!("\"{t}\": {us:.1}")
            })
            .collect();
        eprintln!(
            "similarity_graph/{n}: seq {sequential:.0}us, sharded {}",
            sharded.join(" ")
        );
        sim_rows.push(format!(
            "    {{\"n\": {n}, \"seed_criterion_us\": {seed_us}, \"sequential_reference_us\": {sequential:.1}, \
             \"sharded_us_by_threads\": {{{}}}}}",
            sharded.join(", ")
        ));
    }

    // CSR Louvain.
    let mut louvain_rows: Vec<String> = Vec::new();
    for (n, seed_us) in SEED_LOUVAIN_US {
        let g = similarity_like(n);
        let iters = if n >= 2000 { 30 } else { 100 };
        let csr: Vec<String> = [1usize, 4]
            .iter()
            .map(|&t| {
                let us = with_threads(t, || {
                    median_us(iters, || drop(black_box(louvain(black_box(&g), 1.0))))
                });
                format!("\"{t}\": {us:.1}")
            })
            .collect();
        eprintln!("louvain/{n}: csr {}", csr.join(" "));
        louvain_rows.push(format!(
            "    {{\"n\": {n}, \"seed_criterion_us\": {seed_us}, \"csr_us_by_threads\": {{{}}}}}",
            csr.join(", ")
        ));
    }

    // End-to-end pipeline (criterion trace, seed 77).
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    let pipe_rows: Vec<String> = [1usize, 4]
        .iter()
        .map(|&t| {
            let us = with_threads(t, || {
                median_us(5, || drop(black_box(pipeline.run(black_box(&lt.trace)))))
            });
            format!("\"{t}\": {us:.1}")
        })
        .collect();
    eprintln!("pipeline: {}", pipe_rows.join(" "));

    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin hotpaths\",\n  \
         \"seed_commit\": \"{SEED_COMMIT}\",\n  \"hardware_threads\": {hardware},\n  \
         \"note\": \"medians in microseconds; sequential_reference is the retained seed algorithm \
         (build_graph_sequential); on this host every speedup is algorithmic (hardware_threads caps \
         real parallelism, so thread counts above it only add fan-out overhead) — re-run this bin on \
         a multicore host to measure parallel scaling\",\n  \"similarity_graph\": [\n{}\n  ],\n  \"louvain\": [\n{}\n  ],\n  \
         \"pipeline\": {{\"seed_criterion_us\": {SEED_PIPELINE_US}, \"end_to_end_us_by_threads\": {{{}}}}}\n}}\n",
        sim_rows.join(",\n"),
        louvain_rows.join(",\n"),
        pipe_rows.join(", "),
    );
    std::fs::create_dir_all(&out_dir).expect("creating out dir");
    let path = format!("{out_dir}/BENCH_hotpaths.json");
    std::fs::write(&path, &json).expect("writing BENCH_hotpaths.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
