//! Archive-scale longitudinal benchmark: month-scale label stability
//! over the streaming pipeline.
//!
//! Streams a curated 2001–2009 day sample (all three link eras, both
//! worm epochs) through `run_days_streaming` and writes
//! `results/BENCH_archive.json` with label churn, per-strategy
//! decision flip rates, anomalous-set Jaccard drift, worm outbreak
//! response, and the per-day throughput trajectory.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin archive [-- --scale 1.0 --out results]
//! cargo run --release -p mawilab-bench --bin archive -- --smoke   # tiny CI pass
//! ```

use mawilab_bench::archive::{run_archive_bench, smoke_archive_days, ArchiveBenchArgs};

fn main() {
    let mut args = ArchiveBenchArgs::default();
    let mut smoke = false;
    let mut scale_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                args.scale = it.next().and_then(|v| v.parse().ok()).expect("bad --scale");
                scale_set = true;
            }
            "--chunk-us" => {
                args.chunk_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("bad --chunk-us")
            }
            "--out" => args.out_dir = it.next().expect("bad --out"),
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if smoke {
        // Seconds-scale CI pass: three onset days, at low volume
        // unless the caller picked a scale explicitly (flag order is
        // irrelevant).
        args.days = smoke_archive_days();
        if !scale_set {
            args.scale = 0.25;
        }
    }
    let json = run_archive_bench(&args);
    println!("{json}");
}
