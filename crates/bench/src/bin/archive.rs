//! Archive-scale longitudinal benchmark: month-scale label stability
//! over the streaming pipeline.
//!
//! Streams an archive day sample — the curated 2001–2009 default (all
//! three link eras, both worm epochs), or a consecutive month-scale
//! sweep — through `run_days_streaming` and writes
//! `results/BENCH_archive.json` with label churn, per-strategy
//! decision flip rates, anomalous-set Jaccard drift, the monthly
//! stability trajectory, era transitions, worm outbreak response, the
//! per-day throughput trajectory and a generation-throughput
//! comparison of the sharded synth engine against its sequential
//! oracle.
//!
//! The sweep runs **single-pass**: each day's source streams once
//! through the online pipeline, sealed behind a rewind-refusing
//! wrapper. `--verify-oracle` additionally reruns the sweep through
//! the legacy two-pass pipeline and asserts the deterministic
//! reductions are byte-identical — the in-process equivalence check
//! CI's `online-smoke` job leans on.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin archive [-- --scale 1.0 --out results]
//! cargo run --release -p mawilab-bench --bin archive -- --months   # 61-day sweep
//! cargo run --release -p mawilab-bench --bin archive -- --days 30 --from 2006-06-15
//! cargo run --release -p mawilab-bench --bin archive -- --smoke           # tiny CI pass
//! cargo run --release -p mawilab-bench --bin archive -- --smoke --days 6  # month-smoke
//! cargo run --release -p mawilab-bench --bin archive -- --smoke --verify-oracle
//! cargo run --release -p mawilab-bench --bin archive -- --months --warm 0.35
//! cargo run --release -p mawilab-bench --bin archive -- --smoke --warm --verify-cold
//! ```
//!
//! `--warm [DECAY]` additionally runs the sweep **warm** — days run
//! sequentially, each starting from the previous day's detector
//! baselines and communities — and reports the cold/warm comparison
//! in the JSON's `warm` block. `--verify-cold` reruns the warm sweep
//! at `decay = 0` and asserts it is byte-identical to the cold sweep.

use mawilab_bench::archive::{
    collect_archive, collect_archive_two_pass, default_month_days, default_sweep_start,
    deterministic_view, month_sweep_days, run_archive_bench, smoke_archive_days, ArchiveBenchArgs,
    DEFAULT_WARM_DECAY,
};
use mawilab_model::TraceDate;

fn parse_date(s: &str) -> TraceDate {
    let parts: Vec<u16> = s.split('-').filter_map(|p| p.parse().ok()).collect();
    assert!(parts.len() == 3, "bad date `{s}`, expected YYYY-MM-DD");
    // Range-check before narrowing: `333 as u8` must not silently
    // wrap into a plausible month/day.
    assert!(
        (1..=12).contains(&parts[1]) && (1..=31).contains(&parts[2]),
        "bad date `{s}`: month/day out of range"
    );
    let date = TraceDate::new(parts[0], parts[1] as u8, parts[2] as u8);
    // Reject non-existent calendar dates (2006-02-31 would otherwise
    // silently normalise to 2006-03-03 in the day arithmetic, and the
    // sweep would start on a different day than requested).
    assert_eq!(
        TraceDate::from_days_since_epoch(date.days_since_epoch()),
        date,
        "bad date `{s}`: not a real calendar date"
    );
    date
}

fn main() {
    let mut args = ArchiveBenchArgs::default();
    let mut smoke = false;
    let mut scale_set = false;
    let mut sweep_days: Option<usize> = None;
    let mut months = false;
    let mut verify_oracle = false;
    let mut from: Option<TraceDate> = None;
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                args.scale = it.next().and_then(|v| v.parse().ok()).expect("bad --scale");
                scale_set = true;
            }
            "--chunk-us" => {
                args.chunk_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("bad --chunk-us")
            }
            "--out" => args.out_dir = it.next().expect("bad --out"),
            "--days" => {
                sweep_days = Some(it.next().and_then(|v| v.parse().ok()).expect("bad --days"))
            }
            "--months" => months = true,
            "--from" => from = Some(parse_date(&it.next().expect("bad --from"))),
            "--smoke" => smoke = true,
            "--verify-oracle" => verify_oracle = true,
            "--warm" => {
                // Optional decay operand: `--warm 0.5` or bare
                // `--warm` (default decay).
                args.warm_decay = Some(match it.peek().and_then(|v| v.parse::<f64>().ok()) {
                    Some(d) => {
                        it.next();
                        d
                    }
                    None => DEFAULT_WARM_DECAY,
                });
            }
            "--verify-cold" => args.verify_cold = true,
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    // Day sample precedence: an explicit consecutive sweep (--days N /
    // --months) wins; plain --smoke falls back to the three-onset-day
    // sample. Flag order is irrelevant. `--from` only parameterises a
    // `--days` sweep — refuse to silently run a different sample than
    // the caller asked for.
    if months {
        assert!(
            from.is_none(),
            "--months runs the fixed June–July 2006 sweep; use --days N --from D instead"
        );
        args.days = default_month_days();
    } else if let Some(n) = sweep_days {
        assert!(n >= 2, "--days needs at least 2 days");
        args.days = month_sweep_days(from.unwrap_or_else(default_sweep_start), n);
    } else {
        assert!(from.is_none(), "--from requires --days N");
        if smoke {
            args.days = smoke_archive_days();
        }
    }
    if smoke && !scale_set {
        // Seconds-scale CI pass at low volume unless the caller picked
        // a scale explicitly.
        args.scale = 0.25;
    }
    if args.verify_cold && args.warm_decay.is_none() {
        // Verifying the warm path implies running it.
        args.warm_decay = Some(DEFAULT_WARM_DECAY);
    }
    if verify_oracle {
        // Run the same sweep through both ingest paths and compare
        // the thread- and mode-invariant reductions byte for byte.
        eprintln!("verify-oracle: single-pass sweep …");
        let single = collect_archive(&args);
        assert!(
            single.failed.is_empty(),
            "single-pass sweep had failed days: {:?}",
            single.failed
        );
        eprintln!("verify-oracle: two-pass oracle sweep …");
        let oracle = collect_archive_two_pass(&args);
        assert!(
            oracle.failed.is_empty(),
            "oracle sweep had failed days: {:?}",
            oracle.failed
        );
        assert_eq!(
            deterministic_view(&single),
            deterministic_view(&oracle),
            "single-pass and two-pass sweeps diverged"
        );
        eprintln!(
            "verify-oracle: single-pass == two-pass over {} days ✓",
            single.records.len()
        );
    }
    let json = run_archive_bench(&args);
    println!("{json}");
}
