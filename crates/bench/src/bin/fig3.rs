//! Figure 3: characteristics of communities reported by the
//! similarity estimator at the three traffic granularities.
//!
//! Panels (select with `--panel a|b|c|d`):
//! * (a) CDF of the number of single communities per trace,
//! * (b) CDF of community sizes (singles excluded),
//! * (c) CDF of rule support (singles excluded),
//! * (d) distribution of rule degree (singles excluded).
//!
//! Paper workload: first week of each month, 2001–2009. Default here:
//! `--days 2` per month over the same years (override as needed).
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig3 [-- --years 2001:2009 --days 2]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_eval::{cdf_points, dists::discrete_pmf};
use mawilab_label::summary::summarize_community;
use mawilab_model::Granularity;
use mawilab_similarity::SimilarityEstimator;

const GRANULARITIES: [Granularity; 3] = [
    Granularity::Packet,
    Granularity::Uniflow,
    Granularity::Biflow,
];

/// Per-trace, per-granularity reduction.
struct DayStats {
    singles: [usize; 3],
    sizes: [Vec<usize>; 3],
    supports: [Vec<f64>; 3],
    degrees: [Vec<u32>; 3],
}

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig3: {} days at scale {}", days.len(), args.scale);

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let mut stats = DayStats {
            singles: [0; 3],
            sizes: Default::default(),
            supports: Default::default(),
            degrees: Default::default(),
        };
        for (gi, granularity) in GRANULARITIES.into_iter().enumerate() {
            let estimator = SimilarityEstimator {
                granularity,
                ..Default::default()
            };
            let communities = estimator.estimate(ctx.view, ctx.report.communities.alarms.clone());
            let sizes = communities.sizes();
            stats.singles[gi] = communities.single_count();
            for (c, &size) in sizes.iter().enumerate() {
                if size < 2 {
                    continue; // panels (b)-(d) exclude singles
                }
                stats.sizes[gi].push(size);
                let s = summarize_community(ctx.view, &communities, c, 0.2);
                stats.supports[gi].push(s.rule_support * 100.0);
                stats.degrees[gi].push(s.rule_degree.round() as u32);
            }
        }
        stats
    });

    let names = ["packet", "uniflow", "biflow"];
    if args.wants_panel("a") {
        println!("\n== Fig 3(a): CDF of #single communities per trace ==");
        let mut rows = Vec::new();
        for (gi, name) in names.iter().enumerate() {
            let values: Vec<f64> = per_day.iter().map(|d| d.singles[gi] as f64).collect();
            for (x, p) in cdf_points(&values) {
                rows.push(vec![name.to_string(), out::fmt(x), out::fmt(p)]);
            }
            let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
            println!("  {name:8} mean singles/trace = {mean:.1}");
        }
        let path = out::write_csv_series(
            &args.out_dir,
            "fig3a",
            &["granularity", "singles", "cdf"],
            &rows,
        )
        .unwrap();
        println!("  series → {path}");
    }
    if args.wants_panel("b") {
        println!("\n== Fig 3(b): CDF of community size (excl. singles) ==");
        let mut rows = Vec::new();
        for (gi, name) in names.iter().enumerate() {
            let values: Vec<f64> = per_day
                .iter()
                .flat_map(|d| d.sizes[gi].iter().map(|&s| s as f64))
                .collect();
            for (x, p) in cdf_points(&values) {
                rows.push(vec![name.to_string(), out::fmt(x), out::fmt(p)]);
            }
            let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
            let max = values.iter().cloned().fold(0.0, f64::max);
            println!(
                "  {name:8} mean size = {mean:.1}, max = {max:.0}, n = {}",
                values.len()
            );
        }
        let path = out::write_csv_series(
            &args.out_dir,
            "fig3b",
            &["granularity", "size", "cdf"],
            &rows,
        )
        .unwrap();
        println!("  series → {path}");
    }
    if args.wants_panel("c") {
        println!("\n== Fig 3(c): CDF of rule support (excl. singles) ==");
        let mut rows = Vec::new();
        for (gi, name) in names.iter().enumerate() {
            let values: Vec<f64> = per_day
                .iter()
                .flat_map(|d| d.supports[gi].clone())
                .collect();
            for (x, p) in cdf_points(&values) {
                rows.push(vec![name.to_string(), out::fmt(x), out::fmt(p)]);
            }
            let full = values.iter().filter(|&&v| v >= 99.999).count();
            println!(
                "  {name:8} communities at 100% support: {:.0}%",
                full as f64 / values.len().max(1) as f64 * 100.0
            );
        }
        let path = out::write_csv_series(
            &args.out_dir,
            "fig3c",
            &["granularity", "support_pct", "cdf"],
            &rows,
        )
        .unwrap();
        println!("  series → {path}");
    }
    if args.wants_panel("d") {
        println!("\n== Fig 3(d): distribution of rule degree (excl. singles) ==");
        let mut rows = Vec::new();
        println!(
            "  {:8} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "gran.", "deg0", "deg1", "deg2", "deg3", "deg4"
        );
        for (gi, name) in names.iter().enumerate() {
            let values: Vec<u32> = per_day.iter().flat_map(|d| d.degrees[gi].clone()).collect();
            let pmf = discrete_pmf(&values, 4);
            println!(
                "  {:8} {:>7} {:>7} {:>7} {:>7} {:>7}",
                name,
                out::fmt(pmf[0]),
                out::fmt(pmf[1]),
                out::fmt(pmf[2]),
                out::fmt(pmf[3]),
                out::fmt(pmf[4])
            );
            for (deg, &p) in pmf.iter().enumerate() {
                rows.push(vec![name.to_string(), deg.to_string(), out::fmt(p)]);
            }
        }
        let path = out::write_csv_series(
            &args.out_dir,
            "fig3d",
            &["granularity", "degree", "probability"],
            &rows,
        )
        .unwrap();
        println!("  series → {path}");
    }

    println!("\npaper shape check: flows must cut single communities (a) and grow");
    println!("community sizes (b); uniflow has the best rule support (c); packet");
    println!("granularity yields the most specific rules (d).");
}
