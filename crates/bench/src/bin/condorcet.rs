//! §2.2.1: the Condorcet jury theorem curve motivating detector
//! combination — `P_maj(L)` for detector accuracies above, at and
//! below ½.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin condorcet
//! ```

use mawilab_bench::{out, Args};
use mawilab_eval::majority_accuracy;

fn main() {
    let args = Args::parse();
    println!("== §2.2.1: majority-vote accuracy P_maj(L) ==\n");
    let ps = [0.3, 0.5, 0.6, 0.7, 0.9];
    let ls = [1u64, 3, 5, 7, 9, 15, 25, 51, 101];

    let mut table = Vec::new();
    let mut rows = Vec::new();
    for &l in &ls {
        let mut row = vec![l.to_string()];
        for &p in &ps {
            let v = majority_accuracy(l, p);
            row.push(format!("{v:.4}"));
            rows.push(vec![l.to_string(), p.to_string(), out::fmt(v)]);
        }
        table.push(row);
    }
    out::print_table(&["L", "p=0.3", "p=0.5", "p=0.6", "p=0.7", "p=0.9"], &table);
    let path =
        out::write_csv_series(&args.out_dir, "condorcet", &["L", "p", "P_maj"], &rows).unwrap();
    println!("\nseries → {path}");
    println!("theorem check: p>0.5 columns rise toward 1, p<0.5 falls toward 0,");
    println!("p=0.5 stays at 0.5 — the case for combining reasonable detectors.");
}
