//! Batch-vs-streaming ingest benchmark: wall clock, peak RSS and
//! per-chunk throughput on a seeded synth day, plus a multi-day
//! streaming sweep through the archive harness.
//!
//! The parent process generates one 900-second archive day, writes it
//! to a pcap file, and then measures the three real ingest paths
//! against that file: `read_pcap` + `MawilabPipeline` (materialise
//! everything), `StreamingPcapReader` + `StreamingPipeline` (constant
//! packet memory, two drains), and `StreamingPcapReader` +
//! `OnlinePipeline` (constant packet memory, **one** drain — the
//! single-pass sliding-horizon labeler). Peak RSS is a
//! process-lifetime high-water mark, so each mode runs in its own
//! child process (`--mode batch|streaming|online --pcap FILE`) and
//! the parent collects the reports into `BENCH_streaming.json`.
//!
//! Schema note: ingest stats are **per drain** — each streaming block
//! carries `ingest_passes` (2 for the two-pass oracle, 1 for online)
//! and `packets_drained` (total packets pulled across all drains, the
//! real ingest cost); `packets` is the stream's size as one drain saw
//! it. The online block adds `horizon_lag_us`.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin streaming [-- --scale 1.0 --out results]
//! ```

use mawilab_bench::harness::{peak_rss_kb, run_days_streaming};
use mawilab_core::{MawilabPipeline, OnlinePipeline, PipelineConfig, StreamingPipeline};
use mawilab_model::{pcap, StreamingPcapReader, TraceDate, TraceMeta, DEFAULT_CHUNK_US};
use mawilab_synth::{archive::first_days_of_month, ArchiveConfig, ArchiveSimulator};
use std::io::BufReader;
use std::time::Instant;

const DAY: (u16, u8, u8) = (2004, 6, 2);

struct Flags {
    mode: Option<String>,
    pcap: Option<String>,
    scale: f64,
    out_dir: String,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        mode: None,
        pcap: None,
        scale: 1.0,
        out_dir: "results".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => f.mode = it.next(),
            "--pcap" => f.pcap = it.next(),
            "--scale" => f.scale = it.next().and_then(|v| v.parse().ok()).expect("bad --scale"),
            "--out" => f.out_dir = it.next().expect("bad --out"),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    f
}

fn day_meta() -> TraceMeta {
    let mut meta = TraceMeta::standard(TraceDate::new(DAY.0, DAY.1, DAY.2));
    meta.duration_s = 900;
    meta
}

/// Child-process entry: ingest the pcap file in one mode, print a
/// `key=value` report line.
fn run_mode(mode: &str, pcap_path: &str) {
    let meta = day_meta();
    match mode {
        "batch" => {
            let file = std::fs::File::open(pcap_path).expect("opening pcap");
            let t0 = Instant::now();
            let (trace, skipped) =
                pcap::read_pcap(BufReader::new(file), meta).expect("reading pcap");
            assert_eq!(skipped, 0);
            let pipeline = MawilabPipeline::new(PipelineConfig::default());
            let report = pipeline.run(&trace);
            let wall = t0.elapsed();
            println!(
                "mode=batch packets={} wall_s={:.3} peak_rss_kb={} alarms={} communities={}",
                trace.len(),
                wall.as_secs_f64(),
                peak_rss_kb().unwrap_or(0),
                report.alarm_count(),
                report.community_count(),
            );
        }
        "streaming" => {
            let file = std::fs::File::open(pcap_path).expect("opening pcap");
            let t0 = Instant::now();
            let mut source = StreamingPcapReader::new(BufReader::new(file), meta, DEFAULT_CHUNK_US)
                .expect("opening pcap stream");
            let pipeline = StreamingPipeline::new(PipelineConfig::default());
            let report = pipeline.run(&mut source).expect("streaming run failed");
            let wall = t0.elapsed();
            println!(
                "mode=streaming packets={} packets_drained={} ingest_passes={} wall_s={:.3} \
                 peak_rss_kb={} alarms={} communities={} chunks={} peak_chunk_packets={} \
                 chunk_throughput_pps={:.0}",
                report.stats.packets(),
                report.stats.packets_drained(),
                report.stats.passes(),
                wall.as_secs_f64(),
                peak_rss_kb().unwrap_or(0),
                report.alarm_count(),
                report.community_count(),
                report.stats.chunks(),
                report.stats.peak_chunk_packets,
                report.stats.packets_drained() as f64 / wall.as_secs_f64().max(1e-9),
            );
        }
        "online" => {
            let file = std::fs::File::open(pcap_path).expect("opening pcap");
            let t0 = Instant::now();
            let mut source = StreamingPcapReader::new(BufReader::new(file), meta, DEFAULT_CHUNK_US)
                .expect("opening pcap stream");
            let pipeline = OnlinePipeline::new(PipelineConfig::default());
            let online = pipeline.run(&mut source).expect("online run failed");
            let wall = t0.elapsed();
            let report = &online.report;
            println!(
                "mode=online packets={} packets_drained={} ingest_passes={} wall_s={:.3} \
                 peak_rss_kb={} alarms={} communities={} chunks={} peak_chunk_packets={} \
                 chunk_throughput_pps={:.0} horizon_lag_us={} windows={}",
                report.stats.packets(),
                report.stats.packets_drained(),
                report.stats.passes(),
                wall.as_secs_f64(),
                peak_rss_kb().unwrap_or(0),
                report.alarm_count(),
                report.community_count(),
                report.stats.chunks(),
                report.stats.peak_chunk_packets,
                report.stats.packets_drained() as f64 / wall.as_secs_f64().max(1e-9),
                online.lag_us,
                online.windows.len(),
            );
        }
        other => panic!("unknown --mode {other}"),
    }
}

fn field(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")).map(str::to_string))
        .unwrap_or_else(|| panic!("missing field {key} in `{line}`"))
}

fn spawn_child(mode: &str, pcap_path: &str) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args(["--mode", mode, "--pcap", pcap_path])
        .output()
        .expect("spawning child benchmark failed");
    assert!(
        out.status.success(),
        "child {mode} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("child output not UTF-8")
        .lines()
        .find(|l| l.starts_with("mode="))
        .expect("child printed no report line")
        .to_string()
}

fn main() {
    let flags = parse_flags();
    if let Some(mode) = &flags.mode {
        let pcap_path = flags.pcap.as_deref().expect("--mode requires --pcap");
        run_mode(mode, pcap_path);
        return;
    }

    // Generate the archive day once and serialise it, so both
    // children measure pure ingest against the same file.
    eprintln!("generating a 900-second day at scale {} …", flags.scale);
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale: flags.scale,
        duration_s: 900,
        ..Default::default()
    });
    let lt = sim.generate(TraceDate::new(DAY.0, DAY.1, DAY.2));
    let pcap_path = std::env::temp_dir().join("mawilab_bench_streaming.pcap");
    let pcap_path = pcap_path.to_str().expect("temp path").to_string();
    {
        let file = std::fs::File::create(&pcap_path).expect("creating pcap");
        pcap::write_pcap(std::io::BufWriter::new(file), &lt.trace).expect("writing pcap");
    }
    eprintln!("wrote {} packets to {pcap_path}", lt.trace.len());
    drop(lt);

    eprintln!("batch child …");
    let batch = spawn_child("batch", &pcap_path);
    eprintln!("streaming (two-pass) child …");
    let streaming = spawn_child("streaming", &pcap_path);
    eprintln!("online (single-pass) child …");
    let online = spawn_child("online", &pcap_path);
    let _ = std::fs::remove_file(&pcap_path);
    eprintln!("{batch}\n{streaming}\n{online}");

    // Multi-day streaming sweep through the archive harness.
    eprintln!("multi-day streaming sweep …");
    let days = first_days_of_month(2004, 6, 4);
    let sweep: Vec<String> = run_days_streaming(
        &days,
        flags.scale.min(0.5),
        DEFAULT_CHUNK_US,
        PipelineConfig::default(),
        |ctx| {
            format!(
                "    {{\"date\": \"{}\", \"packets\": {}, \"chunks\": {}, \
                 \"ingest_passes\": {}, \"labeled_windows\": {}, \
                 \"peak_chunk_packets\": {}, \"wall_s\": {:.3}, \"anomalous\": {}}}",
                ctx.date,
                ctx.report.stats.packets(),
                ctx.report.stats.chunks(),
                ctx.report.stats.passes(),
                ctx.windows.len(),
                ctx.report.stats.peak_chunk_packets,
                ctx.wall.as_secs_f64(),
                ctx.report
                    .labeled
                    .count(mawilab_label::MawilabLabel::Anomalous),
            )
        },
    )
    .into_iter()
    .map(|day| day.expect("synthetic streaming day failed"))
    .collect();

    let stream_block = |line: &str| {
        format!(
            "{{\"packets\": {}, \"packets_drained\": {}, \"ingest_passes\": {}, \
             \"wall_s\": {}, \"peak_rss_kb\": {}, \"alarms\": {}, \"communities\": {}, \
             \"chunks\": {}, \"peak_chunk_packets\": {}, \"chunk_throughput_pps\": {}}}",
            field(line, "packets"),
            field(line, "packets_drained"),
            field(line, "ingest_passes"),
            field(line, "wall_s"),
            field(line, "peak_rss_kb"),
            field(line, "alarms"),
            field(line, "communities"),
            field(line, "chunks"),
            field(line, "peak_chunk_packets"),
            field(line, "chunk_throughput_pps"),
        )
    };
    // Schema note: `streaming` is the two-pass oracle (ingest_passes
    // = 2, packets_drained = 2x packets), `online` the single-pass
    // sliding-horizon labeler (ingest_passes = 1) with its lag and
    // per-horizon window count alongside.
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p mawilab-bench --bin streaming\",\n  \
         \"day\": \"{:04}-{:02}-{:02}\",\n  \"scale\": {},\n  \"chunk_us\": {},\n  \
         \"batch\": {{\"packets\": {}, \"wall_s\": {}, \"peak_rss_kb\": {}, \"alarms\": {}, \"communities\": {}}},\n  \
         \"streaming\": {},\n  \
         \"online\": {{\"base\": {}, \"horizon_lag_us\": {}, \"labeled_windows\": {}}},\n  \
         \"multi_day_streaming\": [\n{}\n  ]\n}}\n",
        DAY.0, DAY.1, DAY.2,
        flags.scale,
        DEFAULT_CHUNK_US,
        field(&batch, "packets"),
        field(&batch, "wall_s"),
        field(&batch, "peak_rss_kb"),
        field(&batch, "alarms"),
        field(&batch, "communities"),
        stream_block(&streaming),
        stream_block(&online),
        field(&online, "horizon_lag_us"),
        field(&online, "windows"),
        sweep.join(",\n"),
    );
    std::fs::create_dir_all(&flags.out_dir).expect("creating out dir");
    let path = format!("{}/BENCH_streaming.json", flags.out_dir);
    std::fs::write(&path, &json).expect("writing BENCH_streaming.json");
    println!("{json}");
    eprintln!("wrote {path}");

    // Sanity: identical decisions imply identical counts, and the
    // single-pass path must agree with both while draining half the
    // packets the two-pass oracle did.
    assert_eq!(
        field(&batch, "alarms"),
        field(&streaming, "alarms"),
        "alarm counts diverged"
    );
    assert_eq!(
        field(&batch, "communities"),
        field(&streaming, "communities"),
        "community counts diverged"
    );
    assert_eq!(
        field(&streaming, "alarms"),
        field(&online, "alarms"),
        "online alarm count diverged"
    );
    assert_eq!(
        field(&streaming, "communities"),
        field(&online, "communities"),
        "online community count diverged"
    );
    assert_eq!(field(&online, "ingest_passes"), "1");
    assert_eq!(field(&streaming, "ingest_passes"), "2");
}
