//! Figure 9: breakdown of SCANN-accepted "Attack" communities by
//! heuristic label and by detector participation.
//!
//! With `--exclusive` also prints the §4.2.3 numbers: how many
//! accepted communities were identified by exactly one detector
//! (paper: PCA 8, Gamma 325, Hough 2467, KL 352 over 9 years), and
//! the share of accepted Attack communities that the KL detector
//! missed (paper: ≈50%).
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig9 [-- --exclusive]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_detectors::DetectorKind;
use mawilab_label::{HeuristicCategory, HeuristicLabel};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig9: {} days at scale {}", days.len(), args.scale);

    #[derive(Default)]
    struct Acc {
        /// heuristic label → detector → count of accepted Attack
        /// communities that detector participates in.
        by_label: HashMap<HeuristicLabel, HashMap<DetectorKind, usize>>,
        /// heuristic label → total accepted Attack communities.
        totals: HashMap<HeuristicLabel, usize>,
        /// accepted communities exclusive to one detector.
        exclusive: HashMap<DetectorKind, usize>,
        /// accepted ∧ Attack missed by KL.
        attack_total: usize,
        attack_without_kl: usize,
    }

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let mut acc = Acc::default();
        for (lc, d) in ctx
            .report
            .labeled
            .communities
            .iter()
            .zip(&ctx.report.decisions)
        {
            if !d.accepted {
                continue;
            }
            let detectors = ctx.report.communities.detectors_in(lc.community);
            if detectors.len() == 1 {
                *acc.exclusive.entry(detectors[0]).or_default() += 1;
            }
            if lc.heuristic.category() != HeuristicCategory::Attack {
                continue;
            }
            acc.attack_total += 1;
            if !detectors.contains(&DetectorKind::Kl) {
                acc.attack_without_kl += 1;
            }
            *acc.totals.entry(lc.heuristic).or_default() += 1;
            for det in detectors {
                *acc.by_label
                    .entry(lc.heuristic)
                    .or_default()
                    .entry(det)
                    .or_default() += 1;
            }
        }
        acc
    });

    // Merge.
    let mut merged = Acc::default();
    for day in per_day {
        for (l, per) in day.by_label {
            for (d, n) in per {
                *merged.by_label.entry(l).or_default().entry(d).or_default() += n;
            }
        }
        for (l, n) in day.totals {
            *merged.totals.entry(l).or_default() += n;
        }
        for (d, n) in day.exclusive {
            *merged.exclusive.entry(d).or_default() += n;
        }
        merged.attack_total += day.attack_total;
        merged.attack_without_kl += day.attack_without_kl;
    }

    println!("\n== Fig 9: SCANN-accepted Attack communities by label × detector ==");
    let mut table = Vec::new();
    let mut rows = Vec::new();
    for label in HeuristicLabel::ALL {
        if label.category() != HeuristicCategory::Attack {
            continue;
        }
        let total = merged.totals.get(&label).copied().unwrap_or(0);
        if total == 0 {
            continue;
        }
        let mut row = vec![label.to_string(), total.to_string()];
        for d in DetectorKind::ALL {
            let n = merged
                .by_label
                .get(&label)
                .and_then(|per| per.get(&d))
                .copied()
                .unwrap_or(0);
            row.push(n.to_string());
            rows.push(vec![label.to_string(), d.to_string(), n.to_string()]);
        }
        table.push(row);
    }
    out::print_table(
        &["label", "SCANN total", "PCA", "Gamma", "Hough", "KL"],
        &table,
    );
    let path = out::write_csv_series(
        &args.out_dir,
        "fig9",
        &["heuristic", "detector", "count"],
        &rows,
    )
    .unwrap();
    println!("series → {path}");

    if merged.attack_total > 0 {
        println!(
            "\naccepted Attack communities missed by KL: {}/{} = {:.0}% (paper ≈50%)",
            merged.attack_without_kl,
            merged.attack_total,
            merged.attack_without_kl as f64 / merged.attack_total as f64 * 100.0
        );
    }

    if args.exclusive {
        println!("\n== §4.2.3: accepted communities exclusive to one detector ==");
        let mut t2 = Vec::new();
        for d in DetectorKind::ALL {
            t2.push(vec![
                d.to_string(),
                merged.exclusive.get(&d).copied().unwrap_or(0).to_string(),
            ]);
        }
        out::print_table(&["detector", "exclusive accepted"], &t2);
        println!("(paper over 9 full years: PCA 8, Gamma 325, Hough 2467, KL 352 —");
        println!(" the ordering PCA ≪ others is the shape to check)");
    }
}
