//! Ablation studies the paper mentions but does not plot:
//!
//! * **similarity measure** — Simpson vs Jaccard vs constant edge
//!   weights (§2.1.2 reports Simpson "outperformed the two other
//!   metrics" without showing data);
//! * **granularity** — packet vs uniflow vs biflow end-to-end effect
//!   on combiner ground-truth scores (§4.1 studies the estimator only).
//!
//! Both are scored against the synthetic archive's ground truth:
//! distinct anomalies recovered by SCANN-accepted communities, and
//! acceptance precision.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin ablation [-- --years 2004:2005]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_eval::ground_truth::{score_strategy, GroundTruthMatcher};
use mawilab_model::Granularity;
use mawilab_similarity::SimilarityMeasure;

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("ablation: {} days at scale {}", days.len(), args.scale);

    let variants: Vec<(String, PipelineConfig)> = vec![
        ("simpson/uniflow".into(), PipelineConfig::default()),
        (
            "jaccard/uniflow".into(),
            PipelineConfig {
                measure: SimilarityMeasure::Jaccard,
                ..Default::default()
            },
        ),
        (
            "constant/uniflow".into(),
            PipelineConfig {
                measure: SimilarityMeasure::Constant,
                ..Default::default()
            },
        ),
        (
            "simpson/packet".into(),
            PipelineConfig {
                granularity: Granularity::Packet,
                ..Default::default()
            },
        ),
        (
            "simpson/biflow".into(),
            PipelineConfig {
                granularity: Granularity::Biflow,
                ..Default::default()
            },
        ),
    ];

    let mut table = Vec::new();
    let mut rows = Vec::new();
    for (name, config) in variants {
        let granularity = config.granularity;
        let per_day = run_days(&days, args.scale, config, |ctx| {
            let matcher = GroundTruthMatcher::new(ctx.view, &ctx.labeled_trace.truth, granularity);
            let s = score_strategy(&matcher, &ctx.report.communities, &ctx.report.decisions);
            (
                s.detected.len(),
                s.total_anomalies,
                s.accepted,
                s.false_accepted,
                ctx.report.communities.single_count(),
            )
        });
        let detected: usize = per_day.iter().map(|r| r.0).sum();
        let total: usize = per_day.iter().map(|r| r.1).sum();
        let accepted: usize = per_day.iter().map(|r| r.2).sum();
        let false_acc: usize = per_day.iter().map(|r| r.3).sum();
        let singles: usize = per_day.iter().map(|r| r.4).sum();
        let recall = detected as f64 / total.max(1) as f64;
        let precision = 1.0 - false_acc as f64 / accepted.max(1) as f64;
        table.push(vec![
            name.clone(),
            format!("{detected}/{total}"),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
            singles.to_string(),
        ]);
        rows.push(vec![
            name,
            out::fmt(recall),
            out::fmt(precision),
            singles.to_string(),
        ]);
    }
    println!("\n== ablation: SCANN ground-truth score per estimator variant ==");
    out::print_table(
        &[
            "variant",
            "anomalies",
            "recall",
            "precision",
            "single communities",
        ],
        &table,
    );
    let path = out::write_csv_series(
        &args.out_dir,
        "ablation",
        &["variant", "recall", "precision", "singles"],
        &rows,
    )
    .unwrap();
    println!("series → {path}");
    println!("\npaper expectation: Simpson ≥ Jaccard ≥ constant; uniflow is the");
    println!("released setting and should lead or tie on the combined score.");
}
