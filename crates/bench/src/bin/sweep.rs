//! §4.2.3: SCANN relative-distance threshold sweep.
//!
//! The paper probed accepting rejected communities within a relative
//! distance θ of the boundary: at θ = 0.5 it improved the Sasser
//! outbreak but showed no global gain. This binary sweeps θ and
//! reports the attack ratio and ground-truth recall of the enlarged
//! accepted set.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin sweep [-- --years 2004:2004]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_combiner::Decision;
use mawilab_core::PipelineConfig;
use mawilab_eval::ground_truth::{score_strategy, GroundTruthMatcher};
use mawilab_eval::{attack_ratio_by_class, gain_cost};
use mawilab_model::Granularity;

const THETAS: [f64; 6] = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];

fn widen(decisions: &[Decision], theta: f64) -> Vec<Decision> {
    decisions
        .iter()
        .map(|d| {
            let accept = d.accepted || matches!(d.relative_distance, Some(rel) if rel <= theta);
            Decision {
                accepted: accept,
                relative_distance: d.relative_distance,
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("sweep: {} days at scale {}", days.len(), args.scale);

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let matcher =
            GroundTruthMatcher::new(ctx.view, &ctx.labeled_trace.truth, Granularity::Uniflow);
        THETAS
            .iter()
            .map(|&theta| {
                let wide = widen(&ctx.report.decisions, theta);
                let ratio = attack_ratio_by_class(&ctx.report.labeled.communities, &wide);
                let gc = gain_cost(
                    &ctx.report.communities,
                    &ctx.report.labeled.communities,
                    &wide,
                    None,
                );
                let score = score_strategy(&matcher, &ctx.report.communities, &wide);
                (
                    ratio.accepted.unwrap_or(0.0),
                    gc.gain_acc + gc.cost_acc,
                    score.detected.len(),
                    score.total_anomalies,
                    score.false_accepted,
                )
            })
            .collect::<Vec<_>>()
    });

    println!("\n== §4.2.3: widening SCANN's acceptance by relative distance θ ==");
    let mut table = Vec::new();
    let mut rows = Vec::new();
    for (ti, &theta) in THETAS.iter().enumerate() {
        let n_days = per_day.len().max(1);
        let ratio: f64 = per_day.iter().map(|d| d[ti].0).sum::<f64>() / n_days as f64;
        let accepted: usize = per_day.iter().map(|d| d[ti].1).sum();
        let detected: usize = per_day.iter().map(|d| d[ti].2).sum();
        let total: usize = per_day.iter().map(|d| d[ti].3).sum();
        let false_acc: usize = per_day.iter().map(|d| d[ti].4).sum();
        let recall = detected as f64 / total.max(1) as f64;
        let precision = 1.0 - false_acc as f64 / accepted.max(1) as f64;
        table.push(vec![
            format!("{theta:.2}"),
            accepted.to_string(),
            format!("{ratio:.3}"),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
        rows.push(vec![
            theta.to_string(),
            accepted.to_string(),
            out::fmt(ratio),
            out::fmt(recall),
            out::fmt(precision),
        ]);
    }
    out::print_table(
        &[
            "θ",
            "accepted",
            "mean attack ratio",
            "truth recall",
            "precision",
        ],
        &table,
    );
    let path = out::write_csv_series(
        &args.out_dir,
        "sweep",
        &["theta", "accepted", "attack_ratio", "recall", "precision"],
        &rows,
    )
    .unwrap();
    println!("series → {path}");
    println!("\npaper expectation: recall creeps up with θ but precision and the");
    println!("attack ratio decay — no globally better threshold than θ = 0 (§4.2.3).");
}
