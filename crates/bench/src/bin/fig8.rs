//! Figure 8: gains and costs of SCANN over time (Table-2 quantities),
//! with one detector highlighted per panel.
//!
//! Panels: (a) rejected communities, Gamma highlighted; (b) rejected,
//! Hough highlighted (worm sensitivity); (c) accepted, KL highlighted
//! (KL's false negatives).
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig8 [-- --panel b]
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_detectors::DetectorKind;
use mawilab_eval::gain_cost;
use std::collections::BTreeMap;

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig8: {} days at scale {}", days.len(), args.scale);

    struct Day {
        year: u16,
        overall: mawilab_eval::GainCost,
        per_detector: Vec<(DetectorKind, mawilab_eval::GainCost)>,
    }

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| Day {
        year: ctx.date.year,
        overall: gain_cost(
            &ctx.report.communities,
            &ctx.report.labeled.communities,
            &ctx.report.decisions,
            None,
        ),
        per_detector: DetectorKind::ALL
            .iter()
            .map(|&d| {
                (
                    d,
                    gain_cost(
                        &ctx.report.communities,
                        &ctx.report.labeled.communities,
                        &ctx.report.decisions,
                        Some(d),
                    ),
                )
            })
            .collect(),
    });

    let panels: [(&str, DetectorKind, bool); 3] = [
        ("a", DetectorKind::Gamma, false), // rejected
        ("b", DetectorKind::Hough, false), // rejected
        ("c", DetectorKind::Kl, true),     // accepted
    ];

    for (panel, detector, accepted) in panels {
        if !args.wants_panel(panel) {
            continue;
        }
        let class = if accepted { "accepted" } else { "rejected" };
        println!("\n== Fig 8({panel}): {class} gain/cost over time, {detector} highlighted ==");
        // Yearly sums: (overall gain, overall cost, det gain, det cost).
        let mut yearly: BTreeMap<u16, (usize, usize, usize, usize)> = BTreeMap::new();
        let mut rows = Vec::new();
        for day in &per_day {
            let det = day
                .per_detector
                .iter()
                .find(|(d, _)| *d == detector)
                .map(|(_, gc)| *gc)
                .unwrap_or_default();
            let (og, oc, dg, dc) = if accepted {
                (
                    day.overall.gain_acc,
                    day.overall.cost_acc,
                    det.gain_acc,
                    det.cost_acc,
                )
            } else {
                (
                    day.overall.gain_rej,
                    day.overall.cost_rej,
                    det.gain_rej,
                    det.cost_rej,
                )
            };
            let slot = yearly.entry(day.year).or_default();
            slot.0 += og;
            slot.1 += oc;
            slot.2 += dg;
            slot.3 += dc;
            rows.push(vec![
                day.year.to_string(),
                og.to_string(),
                oc.to_string(),
                dg.to_string(),
                dc.to_string(),
            ]);
        }
        let mut table = Vec::new();
        for (y, (og, oc, dg, dc)) in &yearly {
            table.push(vec![
                y.to_string(),
                og.to_string(),
                oc.to_string(),
                dg.to_string(),
                dc.to_string(),
            ]);
        }
        out::print_table(
            &[
                "year",
                &format!("overall gain_{}", if accepted { "acc" } else { "rej" }),
                "overall cost",
                &format!("{detector} gain"),
                &format!("{detector} cost"),
            ],
            &table,
        );
        let path = out::write_csv_series(
            &args.out_dir,
            &format!("fig8{panel}"),
            &[
                "year",
                "overall_gain",
                "overall_cost",
                "detector_gain",
                "detector_cost",
            ],
            &rows,
        )
        .unwrap();
        println!("series → {path}");
    }

    println!("\npaper shape check: Gamma carries over half of gain_rej (a); Hough's");
    println!("cost_rej spikes in the 2003-2004 worm years (b); about half of the");
    println!("accepted attacks are missed by KL — its false negatives (c).");
}
