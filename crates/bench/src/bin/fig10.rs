//! Figure 10: PDF of the relative distance of SCANN-rejected
//! communities, classified with the Table-1 heuristics.
//!
//! The paper's observation: rejected communities labeled `Attack` sit
//! *closer to the decision boundary* (smaller relative distance) than
//! Special/Unknown ones — which motivates the Suspicious/Notice split
//! at 0.5 (§5).
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig10
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_eval::pdf_histogram;
use mawilab_label::HeuristicCategory;

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig10: {} days at scale {}", days.len(), args.scale);

    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let mut v: Vec<(HeuristicCategory, f64)> = Vec::new();
        for (lc, d) in ctx
            .report
            .labeled
            .communities
            .iter()
            .zip(&ctx.report.decisions)
        {
            if d.accepted {
                continue;
            }
            if let Some(rel) = d.relative_distance {
                if rel.is_finite() {
                    v.push((lc.heuristic.category(), rel.min(10.0)));
                }
            }
        }
        v
    });
    let pooled: Vec<(HeuristicCategory, f64)> = per_day.into_iter().flatten().collect();

    println!("\n== Fig 10: PDF of rejected communities' relative distance ==");
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for cat in [
        HeuristicCategory::Attack,
        HeuristicCategory::Special,
        HeuristicCategory::Unknown,
    ] {
        let values: Vec<f64> = pooled
            .iter()
            .filter(|(c, _)| *c == cat)
            .map(|&(_, v)| v)
            .collect();
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let below_half = values.iter().filter(|&&v| v <= 0.5).count();
        table.push(vec![
            cat.to_string(),
            values.len().to_string(),
            format!("{mean:.2}"),
            format!(
                "{:.0}%",
                below_half as f64 / values.len().max(1) as f64 * 100.0
            ),
        ]);
        for (x, dens) in pdf_histogram(&values, 20, 0.0, 10.0) {
            rows.push(vec![cat.to_string(), out::fmt(x), out::fmt(dens)]);
        }
    }
    out::print_table(
        &[
            "category",
            "rejected",
            "mean rel. distance",
            "≤0.5 (→Suspicious)",
        ],
        &table,
    );
    let path = out::write_csv_series(
        &args.out_dir,
        "fig10",
        &["category", "relative_distance", "density"],
        &rows,
    )
    .unwrap();
    println!("series → {path}");
    println!("\npaper shape check: Attack-labeled rejections concentrate at lower");
    println!("relative distance than Special/Unknown ones.");
}
