//! Figure 4: rule support and rule degree as functions of community
//! size (uniflow granularity).
//!
//! The paper smooths these curves with a weighted spline; we print
//! means over logarithmic size bins, which exposes the same shape:
//! the largest communities degenerate to degree-1 / support-100%
//! "well-known port" rules while communities under ~20 nodes keep
//! degree > 2 and support > 75%.
//!
//! ```sh
//! cargo run --release -p mawilab-bench --bin fig4
//! ```

use mawilab_bench::{out, run_days, Args};
use mawilab_core::PipelineConfig;
use mawilab_label::summary::summarize_community;

fn main() {
    let args = Args::parse();
    let days = args.days();
    eprintln!("fig4: {} days at scale {}", days.len(), args.scale);

    // Pool (size, degree, support%) triples over all communities.
    let per_day = run_days(&days, args.scale, PipelineConfig::default(), |ctx| {
        let communities = &ctx.report.communities;
        let sizes = communities.sizes();
        (0..communities.community_count())
            .map(|c| {
                let s = summarize_community(ctx.view, communities, c, 0.2);
                (sizes[c], s.rule_degree, s.rule_support * 100.0)
            })
            .collect::<Vec<_>>()
    });
    let triples: Vec<(usize, f64, f64)> = per_day.into_iter().flatten().collect();

    // Logarithmic size bins: 1, 2, 3-4, 5-8, ..., 513+.
    let bin_of = |size: usize| (size.max(1) as f64).log2().floor() as usize;
    let n_bins = triples
        .iter()
        .map(|&(s, _, _)| bin_of(s))
        .max()
        .unwrap_or(0)
        + 1;
    let mut acc: Vec<(usize, f64, f64)> = vec![(0, 0.0, 0.0); n_bins];
    for &(size, degree, support) in &triples {
        let b = bin_of(size);
        acc[b].0 += 1;
        acc[b].1 += degree;
        acc[b].2 += support;
    }

    println!("\n== Fig 4: rule metrics vs community size (uniflow) ==");
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (b, &(n, deg_sum, sup_sum)) in acc.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let lo = 1usize << b;
        let hi = (1usize << (b + 1)) - 1;
        let deg = deg_sum / n as f64;
        let sup = sup_sum / n as f64;
        table.push(vec![
            format!("{lo}-{hi}"),
            n.to_string(),
            format!("{deg:.2}"),
            format!("{sup:.0}%"),
        ]);
        rows.push(vec![
            lo.to_string(),
            n.to_string(),
            out::fmt(deg),
            out::fmt(sup),
        ]);
    }
    out::print_table(
        &["size", "communities", "rule degree", "rule support"],
        &table,
    );
    let path = out::write_csv_series(
        &args.out_dir,
        "fig4",
        &["size_bin_lo", "n", "rule_degree", "rule_support_pct"],
        &rows,
    )
    .unwrap();
    println!("\nseries → {path}");
    println!("paper shape check: degree falls toward 1 and support toward 100% as");
    println!("communities grow; sizes < ~20 keep degree ≥ 2 and support ≥ 75%.");
}
