//! Output helpers: aligned tables on stdout, CSV series on disk.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Prints an aligned text table: `headers` then `rows`.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a CSV series into `<dir>/<name>.csv` and returns its path.
pub fn write_csv_series(
    dir: &str,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path.display().to_string())
}

/// Formats an `f64` compactly for tables/CSV.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_series_writes_file() {
        let dir = std::env::temp_dir().join("mawilab-bench-test");
        let dir = dir.to_str().unwrap();
        let path = write_csv_series(
            dir,
            "unit",
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234567), "0.1235");
        assert_eq!(fmt(2.54159), "2.54");
        assert_eq!(fmt(1234.5), "1234"); // ties-to-even f64 formatting
    }
}
