//! # mawilab-bench
//!
//! Experiment harness regenerating **every table and figure** of the
//! paper's evaluation (see DESIGN.md §5 for the exhibit index).
//! Each `fig*`/`table*` binary reruns its workload on the simulated
//! archive and prints gnuplot-ready series plus a human-readable
//! summary; `EXPERIMENTS.md` records paper-vs-measured shapes.
//!
//! The shared pieces live here:
//! * [`cli`] — the tiny flag parser every binary uses
//!   (`--years`, `--days`, `--scale`, `--out`, `--panel`);
//! * [`harness`] — the archive→pipeline day runner with thread-pool
//!   parallelism across days;
//! * [`archive`] — the longitudinal label-stability benchmark behind
//!   the `archive` bin (`results/BENCH_archive.json`);
//! * [`out`] — aligned-table printing and CSV emission under
//!   `results/`.

#![forbid(unsafe_code)]

pub mod archive;
pub mod cli;
pub mod harness;
pub mod out;

pub use cli::Args;
pub use harness::{
    peak_rss_kb, run_days, run_days_streaming, run_days_streaming_two_pass,
    run_days_streaming_wrapped, DayContext, DayFailure, NoWrap, SourceWrap, StreamingDayContext,
};
