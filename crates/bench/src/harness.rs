//! The archive→pipeline day runner.
//!
//! Figure workloads all share one shape: generate N archive days,
//! push each through the pipeline, reduce each day to a small summary
//! value, aggregate. Days are independent, so they fan out through
//! `mawilab_exec::par_map` (honoring `MAWILAB_THREADS`); results come
//! back in day order regardless of scheduling.

use mawilab_combiner::Decision;
use mawilab_core::{
    MawilabPipeline, PipelineConfig, PipelineReport, StrategyKind, StreamingPipeline,
    StreamingReport,
};
use mawilab_detectors::TraceView;
use mawilab_model::{FlowTable, ItemIndex, SourceError, TraceChunker, TraceDate};
use mawilab_synth::{ArchiveConfig, ArchiveSimulator, GroundTruth, LabeledTrace};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Everything a per-day reducer can look at.
pub struct DayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// The generated trace with ground truth.
    pub labeled_trace: &'a LabeledTrace,
    /// Trace + flow table view.
    pub view: &'a TraceView<'a>,
    /// Full pipeline output (communities, votes, SCANN decisions,
    /// labels).
    pub report: &'a PipelineReport,
    /// Decisions of all five strategies on this day's vote table.
    pub per_strategy: &'a [(StrategyKind, Vec<Decision>)],
}

/// The shared day scheduler: generates each archive day, hands it to
/// `per_day` on the workspace fan-out helper ([`mawilab_exec::par_map`],
/// honoring `MAWILAB_THREADS`), and returns the results in day order
/// regardless of scheduling. Both the batch and the streaming harness
/// entry points are thin wrappers over this.
fn schedule_days<T, F>(days: &[TraceDate], scale: f64, per_day: F) -> Vec<T>
where
    T: Send,
    F: Fn(TraceDate, LabeledTrace) -> T + Sync,
{
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale,
        ..Default::default()
    });
    let done = AtomicUsize::new(0);
    // Cap the outer day fan-out: each day runs a whole pipeline that
    // fans out internally, so an uncapped outer map would square the
    // worker count on big machines.
    mawilab_exec::par_map_capped(days, 16, |&date| {
        let value = per_day(date, sim.generate(date));
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if d.is_multiple_of(25) || d == days.len() {
            eprintln!("  [{d}/{} days]", days.len());
        }
        value
    })
}

/// Runs `reduce` over every day, in parallel, returning per-day
/// results in day order. Prints a progress line to stderr.
pub fn run_days<T, F>(
    days: &[TraceDate],
    scale: f64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&DayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, lt| {
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let pipeline = MawilabPipeline::new(pipeline_config.clone());
        let (report, per_strategy) = pipeline.run_all_strategies(&lt.trace);
        reduce(&DayContext {
            date,
            labeled_trace: &lt,
            view: &view,
            report: &report,
            per_strategy: &per_strategy,
        })
    })
}

/// Everything a streaming per-day reducer can look at. Unlike
/// [`DayContext`] there is no materialised trace or flow table — the
/// day was drained chunk by chunk through the streaming pipeline.
pub struct StreamingDayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// Ground truth of the generated day (the packets themselves are
    /// gone — they streamed through).
    pub truth: &'a GroundTruth,
    /// Traffic-unit id of every packet (stream order), at the
    /// pipeline's granularity — the bridge between `truth.tags()`
    /// (per packet) and the report's community traffic sets (per
    /// unit). Feed it to `GroundTruthMatcher::from_item_ids`.
    pub item_ids: &'a [u32],
    /// Full streaming pipeline output, including ingest stats.
    pub report: &'a StreamingReport,
    /// Wall-clock of the whole streaming run for this day.
    pub wall: Duration,
}

/// A day the streaming harness could not complete.
#[derive(Debug)]
pub struct DayFailure {
    /// The day whose run failed.
    pub date: TraceDate,
    /// The source error that aborted it.
    pub error: SourceError,
}

impl fmt::Display for DayFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}: {}", self.date, self.error)
    }
}

impl std::error::Error for DayFailure {}

/// Runs the **streaming** pipeline over every day, in parallel,
/// returning one entry per day, in day order — the archive-scale
/// evaluation path where no day is ever materialised inside the
/// pipeline. `chunk_us` is the ingest bin width.
///
/// A day whose source errors (pcap corruption, replay divergence, …)
/// yields `Err(DayFailure)` instead of poisoning the whole run: a
/// month-scale benchmark reports the bad day and keeps the month.
pub fn run_days_streaming<T, F>(
    days: &[TraceDate],
    scale: f64,
    chunk_us: u64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    T: Send,
    F: Fn(&StreamingDayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, lt| {
        let truth = lt.truth;
        // Packet → traffic-unit map for ground-truth evaluation,
        // computed in stream order before the trace is consumed (the
        // incremental ItemIndex assigns exactly the ids pass 2 will).
        let mut item_ids = Vec::with_capacity(lt.trace.len());
        ItemIndex::new(pipeline_config.granularity).ids_of(&lt.trace.packets, &mut item_ids);
        let mut source = TraceChunker::new(lt.trace, chunk_us);
        let pipeline = StreamingPipeline::new(pipeline_config.clone());
        let t0 = std::time::Instant::now();
        let report = match pipeline.run(&mut source) {
            Ok(report) => report,
            Err(error) => return Err(DayFailure { date, error }),
        };
        let wall = t0.elapsed();
        Ok(reduce(&StreamingDayContext {
            date,
            truth: &truth,
            item_ids: &item_ids,
            report: &report,
            wall,
        }))
    })
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`), if
/// the platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::archive::first_days_of_month;

    #[test]
    fn results_come_back_in_day_order() {
        let days = first_days_of_month(2005, 6, 4);
        let out = run_days(&days, 0.3, PipelineConfig::default(), |ctx| ctx.date);
        assert_eq!(out, days);
    }

    #[test]
    fn context_is_complete() {
        let days = first_days_of_month(2002, 2, 1);
        let ok = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            ctx.per_strategy.len() == 5
                && ctx.report.decisions.len() == ctx.report.community_count()
                && !ctx.labeled_trace.trace.is_empty()
                && ctx.view.trace.len() == ctx.labeled_trace.trace.len()
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn streaming_days_match_batch_days() {
        let days = first_days_of_month(2005, 6, 2);
        let batch = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            (ctx.report.alarm_count(), ctx.report.decisions.clone())
        });
        let streamed: Vec<_> = run_days_streaming(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            |ctx| {
                assert!(ctx.report.stats.chunks > 1);
                assert!((ctx.report.stats.peak_chunk_packets as u64) < ctx.report.stats.packets);
                assert_eq!(
                    ctx.item_ids.len() as u64,
                    ctx.report.stats.packets,
                    "one item id per streamed packet"
                );
                assert_eq!(
                    ctx.item_ids
                        .iter()
                        .collect::<std::collections::HashSet<_>>()
                        .len(),
                    ctx.report.stats.items,
                    "context ids and pipeline pass 2 agree on the unit universe"
                );
                (ctx.report.alarm_count(), ctx.report.decisions.clone())
            },
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        assert_eq!(batch, streamed);
    }
}
