//! The archive→pipeline day runner.
//!
//! Figure workloads all share one shape: generate N archive days,
//! push each through the pipeline, reduce each day to a small summary
//! value, aggregate. Days are independent, so they fan out through
//! `mawilab_exec::par_map` (honoring `MAWILAB_THREADS`); results come
//! back in day order regardless of scheduling.

use mawilab_combiner::Decision;
use mawilab_core::{
    MawilabPipeline, PipelineConfig, PipelineReport, StrategyKind, StreamingPipeline,
    StreamingReport,
};
use mawilab_detectors::TraceView;
use mawilab_model::{FlowTable, ItemIndex, PacketSource, SourceError, TraceDate};
use mawilab_synth::{ArchiveConfig, ArchiveSimulator, GroundTruth, LabeledTrace, TraceGenerator};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Everything a per-day reducer can look at.
pub struct DayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// The generated trace with ground truth.
    pub labeled_trace: &'a LabeledTrace,
    /// Trace + flow table view.
    pub view: &'a TraceView<'a>,
    /// Full pipeline output (communities, votes, SCANN decisions,
    /// labels).
    pub report: &'a PipelineReport,
    /// Decisions of all five strategies on this day's vote table.
    pub per_strategy: &'a [(StrategyKind, Vec<Decision>)],
}

/// The shared day scheduler: hands each archive day (and the shared
/// simulator) to `per_day` on the workspace fan-out helper
/// ([`mawilab_exec::par_map`], honoring `MAWILAB_THREADS`), and
/// returns the results in day order regardless of scheduling. Both
/// the batch and the streaming harness entry points are thin wrappers
/// over this.
fn schedule_days<T, F>(days: &[TraceDate], scale: f64, per_day: F) -> Vec<T>
where
    T: Send,
    F: Fn(TraceDate, &ArchiveSimulator) -> T + Sync,
{
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale,
        ..Default::default()
    });
    let done = AtomicUsize::new(0);
    // Cap the outer day fan-out: each day runs a whole pipeline that
    // fans out internally, so an uncapped outer map would square the
    // worker count on big machines. With multiple days in flight the
    // sharded generator's inner fan-out runs inline (one-fan-out-level
    // policy); with a single day it owns the thread budget.
    mawilab_exec::par_map_capped(days, 16, |&date| {
        let value = per_day(date, &sim);
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if d.is_multiple_of(25) || d == days.len() {
            eprintln!("  [{d}/{} days]", days.len());
        }
        value
    })
}

/// Runs `reduce` over every day, in parallel, returning per-day
/// results in day order. Prints a progress line to stderr.
pub fn run_days<T, F>(
    days: &[TraceDate],
    scale: f64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&DayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, sim| {
        let lt = sim.generate(date);
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let pipeline = MawilabPipeline::new(pipeline_config.clone());
        let (report, per_strategy) = pipeline.run_all_strategies(&lt.trace);
        reduce(&DayContext {
            date,
            labeled_trace: &lt,
            view: &view,
            report: &report,
            per_strategy: &per_strategy,
        })
    })
}

/// Everything a streaming per-day reducer can look at. Unlike
/// [`DayContext`] there is no materialised trace or flow table — the
/// day was drained chunk by chunk through the streaming pipeline.
pub struct StreamingDayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// Ground truth of the generated day (the packets themselves are
    /// gone — they streamed through).
    pub truth: &'a GroundTruth,
    /// Traffic-unit id of every packet (stream order), at the
    /// pipeline's granularity — the bridge between `truth.tags()`
    /// (per packet) and the report's community traffic sets (per
    /// unit). Feed it to `GroundTruthMatcher::from_item_ids`.
    pub item_ids: &'a [u32],
    /// Full streaming pipeline output, including ingest stats.
    pub report: &'a StreamingReport,
    /// Wall-clock of the whole streaming run for this day.
    pub wall: Duration,
    /// Wall-clock of producing the day ahead of the pipeline passes:
    /// on the chunk-native path this is the truth pre-pass (sharded
    /// generation *plus* per-packet unit-id/tag collection), on the
    /// materialised seam it is batch generation alone. The per-day
    /// generation trajectory of a month-scale sweep; for a
    /// generation-only engine comparison see the benchmark's
    /// `generation` block (`generation_throughput`).
    pub gen_wall: Duration,
}

/// A day the streaming harness could not complete.
#[derive(Debug)]
pub struct DayFailure {
    /// The day whose run failed.
    pub date: TraceDate,
    /// The source error that aborted it.
    pub error: SourceError,
}

impl fmt::Display for DayFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}: {}", self.date, self.error)
    }
}

impl std::error::Error for DayFailure {}

/// Runs the **streaming** pipeline over every day, in parallel,
/// returning one entry per day, in day order — the archive-scale
/// evaluation path where no day is ever materialised: each day's
/// [`SynthSource`] emits `PacketChunk`s straight out of the sharded
/// generator. `chunk_us` is the ingest bin width.
///
/// Ground truth and the packet→unit map are collected on a streaming
/// pre-pass over the same source (tags and ids accumulate chunk by
/// chunk; the incremental [`ItemIndex`] assigns exactly the ids
/// pass 2 will), then the source rewinds — replay is exact because
/// the generator's RNG streams are counter-derived. A generative
/// source regenerates on every drain, so each day pays generation
/// three times (pre-pass + the pipeline's two passes) — the price of
/// O(chunk) memory, same as re-reading a pcap from disk per pass;
/// `gen_wall` times the pre-pass, the other two land in `wall`.
///
/// A day whose source errors (pcap corruption, replay divergence, …)
/// yields `Err(DayFailure)` instead of poisoning the whole run: a
/// month-scale benchmark reports the bad day and keeps the month.
pub fn run_days_streaming<T, F>(
    days: &[TraceDate],
    scale: f64,
    chunk_us: u64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    T: Send,
    F: Fn(&StreamingDayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, sim| {
        let generator = TraceGenerator::new(sim.config_for(date));
        let t0 = std::time::Instant::now();
        let mut source = generator.stream(chunk_us);
        // Streaming pre-pass: per-packet truth tags and traffic-unit
        // ids in stream order, one chunk live at a time.
        let mut item_index = ItemIndex::new(pipeline_config.granularity);
        let mut item_ids = Vec::new();
        let mut tags = Vec::new();
        loop {
            match source.next_chunk() {
                Ok(Some(chunk)) => {
                    item_ids.extend(chunk.packets.iter().map(|p| item_index.id_of(p)));
                    tags.extend_from_slice(source.chunk_tags());
                }
                Ok(None) => break,
                Err(error) => return Err(DayFailure { date, error }),
            }
        }
        let truth = GroundTruth::new(tags, source.records().to_vec());
        let gen_wall = t0.elapsed();
        if let Err(error) = source.rewind() {
            return Err(DayFailure { date, error });
        }
        let pipeline = StreamingPipeline::new(pipeline_config.clone());
        let t0 = std::time::Instant::now();
        let report = match pipeline.run(&mut source) {
            Ok(report) => report,
            Err(error) => return Err(DayFailure { date, error }),
        };
        let wall = t0.elapsed();
        Ok(reduce(&StreamingDayContext {
            date,
            truth: &truth,
            item_ids: &item_ids,
            report: &report,
            wall,
            gen_wall,
        }))
    })
}

/// [`run_days_streaming`] with an explicit source factory: the day is
/// materialised once and `make` wraps its trace in the
/// [`mawilab_model::PacketSource`] the pipeline will drain. The
/// failure-injection seam — tests wrap a day's source in one that
/// errors mid-stream and assert the sweep reports the [`DayFailure`]
/// and keeps the surviving days.
pub fn run_days_streaming_with<S, M, T, F>(
    days: &[TraceDate],
    scale: f64,
    pipeline_config: PipelineConfig,
    make: M,
    reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    S: mawilab_model::PacketSource,
    M: Fn(TraceDate, mawilab_model::Trace) -> S + Sync,
    T: Send,
    F: Fn(&StreamingDayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, sim| {
        let t0 = std::time::Instant::now();
        let lt = sim.generate(date);
        let gen_wall = t0.elapsed();
        let truth = lt.truth;
        // Packet → traffic-unit map for ground-truth evaluation,
        // computed in stream order before the trace is consumed (the
        // incremental ItemIndex assigns exactly the ids pass 2 will).
        let mut item_ids = Vec::with_capacity(lt.trace.len());
        ItemIndex::new(pipeline_config.granularity).ids_of(&lt.trace.packets, &mut item_ids);
        let mut source = make(date, lt.trace);
        let pipeline = StreamingPipeline::new(pipeline_config.clone());
        let t0 = std::time::Instant::now();
        let report = match pipeline.run(&mut source) {
            Ok(report) => report,
            Err(error) => return Err(DayFailure { date, error }),
        };
        let wall = t0.elapsed();
        Ok(reduce(&StreamingDayContext {
            date,
            truth: &truth,
            item_ids: &item_ids,
            report: &report,
            wall,
            gen_wall,
        }))
    })
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`), if
/// the platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::archive::first_days_of_month;

    #[test]
    fn results_come_back_in_day_order() {
        let days = first_days_of_month(2005, 6, 4);
        let out = run_days(&days, 0.3, PipelineConfig::default(), |ctx| ctx.date);
        assert_eq!(out, days);
    }

    #[test]
    fn context_is_complete() {
        let days = first_days_of_month(2002, 2, 1);
        let ok = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            ctx.per_strategy.len() == 5
                && ctx.report.decisions.len() == ctx.report.community_count()
                && !ctx.labeled_trace.trace.is_empty()
                && ctx.view.trace.len() == ctx.labeled_trace.trace.len()
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn streaming_days_match_batch_days() {
        let days = first_days_of_month(2005, 6, 2);
        let batch = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            (ctx.report.alarm_count(), ctx.report.decisions.clone())
        });
        let streamed: Vec<_> = run_days_streaming(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            |ctx| {
                assert!(ctx.report.stats.chunks > 1);
                assert!((ctx.report.stats.peak_chunk_packets as u64) < ctx.report.stats.packets);
                assert_eq!(
                    ctx.item_ids.len() as u64,
                    ctx.report.stats.packets,
                    "one item id per streamed packet"
                );
                assert_eq!(
                    ctx.item_ids
                        .iter()
                        .collect::<std::collections::HashSet<_>>()
                        .len(),
                    ctx.report.stats.items,
                    "context ids and pipeline pass 2 agree on the unit universe"
                );
                (ctx.report.alarm_count(), ctx.report.decisions.clone())
            },
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        assert_eq!(batch, streamed);
    }
}
