//! The archive→pipeline day runner.
//!
//! Figure workloads all share one shape: generate N archive days,
//! push each through the pipeline, reduce each day to a small summary
//! value, aggregate. Days are independent, so they fan out through
//! `mawilab_exec::par_map` (honoring `MAWILAB_THREADS`); results come
//! back in day order regardless of scheduling.

use mawilab_combiner::Decision;
use mawilab_core::{
    MawilabPipeline, OnlinePipeline, PipelineConfig, PipelineReport, StrategyKind,
    StreamingPipeline, StreamingReport, WarmState,
};
use mawilab_detectors::TraceView;
use mawilab_label::LabeledWindow;
use mawilab_model::{
    FlowTable, ItemIndex, NoRewindSource, PacketSource, SourceError, StreamTruthCollector,
    TapSource, TraceDate,
};
use mawilab_synth::{ArchiveConfig, ArchiveSimulator, GroundTruth, LabeledTrace, TraceGenerator};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Everything a per-day reducer can look at.
pub struct DayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// The generated trace with ground truth.
    pub labeled_trace: &'a LabeledTrace,
    /// Trace + flow table view.
    pub view: &'a TraceView<'a>,
    /// Full pipeline output (communities, votes, SCANN decisions,
    /// labels).
    pub report: &'a PipelineReport,
    /// Decisions of all five strategies on this day's vote table.
    pub per_strategy: &'a [(StrategyKind, Vec<Decision>)],
}

/// The shared day scheduler: hands each archive day (and the shared
/// simulator) to `per_day` on the workspace fan-out helper
/// ([`mawilab_exec::par_map`], honoring `MAWILAB_THREADS`), and
/// returns the results in day order regardless of scheduling. Both
/// the batch and the streaming harness entry points are thin wrappers
/// over this.
fn schedule_days<T, F>(days: &[TraceDate], scale: f64, per_day: F) -> Vec<T>
where
    T: Send,
    F: Fn(TraceDate, &ArchiveSimulator) -> T + Sync,
{
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale,
        ..Default::default()
    });
    let done = AtomicUsize::new(0);
    // Cap the outer day fan-out: each day runs a whole pipeline that
    // fans out internally, so an uncapped outer map would square the
    // worker count on big machines. With multiple days in flight the
    // sharded generator's inner fan-out runs inline (one-fan-out-level
    // policy); with a single day it owns the thread budget.
    mawilab_exec::par_map_capped(days, 16, |&date| {
        let value = per_day(date, &sim);
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if d.is_multiple_of(25) || d == days.len() {
            eprintln!("  [{d}/{} days]", days.len());
        }
        value
    })
}

/// Runs `reduce` over every day, in parallel, returning per-day
/// results in day order. Prints a progress line to stderr.
pub fn run_days<T, F>(
    days: &[TraceDate],
    scale: f64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&DayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, sim| {
        let lt = sim.generate(date);
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let pipeline = MawilabPipeline::new(pipeline_config.clone());
        let (report, per_strategy) = pipeline.run_all_strategies(&lt.trace);
        reduce(&DayContext {
            date,
            labeled_trace: &lt,
            view: &view,
            report: &report,
            per_strategy: &per_strategy,
        })
    })
}

/// Everything a streaming per-day reducer can look at. Unlike
/// [`DayContext`] there is no materialised trace or flow table — the
/// day was drained chunk by chunk through the streaming pipeline.
pub struct StreamingDayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// Ground truth of the generated day (the packets themselves are
    /// gone — they streamed through).
    pub truth: &'a GroundTruth,
    /// Traffic-unit id of every packet (stream order), at the
    /// pipeline's granularity — the bridge between `truth.tags()`
    /// (per packet) and the report's community traffic sets (per
    /// unit). Feed it to `GroundTruthMatcher::from_item_ids`.
    pub item_ids: &'a [u32],
    /// Full streaming pipeline output, including ingest stats.
    pub report: &'a StreamingReport,
    /// The per-horizon label feed of the single-pass run, in window
    /// order. Empty on the two-pass oracle path, which labels the
    /// whole day at once.
    pub windows: &'a [LabeledWindow],
    /// Wall-clock of the whole streaming run for this day.
    pub wall: Duration,
    /// Wall-clock of producing the day ahead of the pipeline's drain:
    /// on the single-pass path only the generator's day plan (the
    /// packets themselves are generated lazily *inside* the drain, so
    /// they land in `wall`); on the two-pass oracle path the whole
    /// truth pre-pass (sharded generation plus per-packet unit-id/tag
    /// collection). For a generation-only engine comparison see the
    /// benchmark's `generation` block (`generation_throughput`).
    pub gen_wall: Duration,
}

/// A day the streaming harness could not complete.
#[derive(Debug)]
pub struct DayFailure {
    /// The day whose run failed.
    pub date: TraceDate,
    /// The source error that aborted it.
    pub error: SourceError,
}

impl fmt::Display for DayFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}: {}", self.date, self.error)
    }
}

impl std::error::Error for DayFailure {}

/// Hook for wrapping each day's packet source before the pipeline
/// drains it — the failure-injection seam (tests wrap one day's
/// source in one that errors mid-drain and assert the sweep reports
/// the [`DayFailure`] and keeps the surviving days), also usable for
/// instrumentation (counting chunks, throttling, recording).
pub trait SourceWrap: Sync {
    /// Wraps one day's source. The default identity is [`NoWrap`].
    fn wrap<'a>(
        &self,
        date: TraceDate,
        inner: Box<dyn PacketSource + 'a>,
    ) -> Box<dyn PacketSource + 'a>;
}

/// The identity [`SourceWrap`]: every day's source passes through
/// untouched.
pub struct NoWrap;

impl SourceWrap for NoWrap {
    fn wrap<'a>(
        &self,
        _date: TraceDate,
        inner: Box<dyn PacketSource + 'a>,
    ) -> Box<dyn PacketSource + 'a> {
        inner
    }
}

/// Runs the **single-pass** streaming pipeline over every day, in
/// parallel, returning one entry per day, in day order — the
/// archive-scale evaluation path where no day is ever materialised
/// *or replayed*: each day's [`SynthSource`] emits `PacketChunk`s
/// straight out of the sharded generator, and the one drain feeds
/// detection, extraction evidence **and** ground-truth collection at
/// once. `chunk_us` is the ingest bin width.
///
/// Per-packet truth tags stream out of the generator through a
/// [`TapSource`]/[`StreamTruthCollector`] pair riding the pipeline's
/// own drain (the collector's incremental [`ItemIndex`] assigns
/// exactly the unit ids the pipeline's extraction does), so each day
/// pays generation exactly **once**. The source is additionally
/// sealed behind a [`NoRewindSource`]: any rewind attempt is a
/// [`DayFailure`], not a silent replay — the single-pass guarantee
/// is enforced per day, not just asserted in tests.
///
/// A day whose source errors (pcap corruption, a refused rewind, …)
/// yields `Err(DayFailure)` instead of poisoning the whole run: a
/// month-scale benchmark reports the bad day and keeps the month.
pub fn run_days_streaming<T, F>(
    days: &[TraceDate],
    scale: f64,
    chunk_us: u64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    T: Send,
    F: Fn(&StreamingDayContext<'_>) -> T + Sync,
{
    run_days_streaming_wrapped(days, scale, chunk_us, pipeline_config, &NoWrap, reduce)
}

/// [`run_days_streaming`] with an explicit [`SourceWrap`] applied to
/// each day's sealed source before the pipeline drains it.
pub fn run_days_streaming_wrapped<T, F>(
    days: &[TraceDate],
    scale: f64,
    chunk_us: u64,
    pipeline_config: PipelineConfig,
    wrap: &dyn SourceWrap,
    reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    T: Send,
    F: Fn(&StreamingDayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, sim| {
        let generator = TraceGenerator::new(sim.config_for(date));
        let t0 = std::time::Instant::now();
        let source = generator.stream(chunk_us);
        let records = source.records().to_vec();
        let gen_wall = t0.elapsed();
        let mut collector = StreamTruthCollector::new(pipeline_config.granularity);
        let pipeline = OnlinePipeline::new(pipeline_config.clone());
        let t0 = std::time::Instant::now();
        let online = {
            let tap = TapSource::new(source, &mut collector);
            let mut sealed = wrap.wrap(date, Box::new(NoRewindSource::new(tap)));
            match pipeline.run(&mut *sealed) {
                Ok(online) => online,
                Err(error) => return Err(DayFailure { date, error }),
            }
        };
        let wall = t0.elapsed();
        let (item_ids, tags) = collector.into_parts();
        let truth = GroundTruth::new(tags, records);
        Ok(reduce(&StreamingDayContext {
            date,
            truth: &truth,
            item_ids: &item_ids,
            report: &online.report,
            windows: &online.windows,
            wall,
            gen_wall,
        }))
    })
}

/// The **warm** form of [`run_days_streaming`]: days run
/// **sequentially, in date order**, threading one
/// [`WarmState`](mawilab_core::WarmState) through the whole sweep so
/// each day starts from the previous day's detector baselines and
/// communities (see [`OnlinePipeline::run_warm`]). Sequencing is
/// inherent — day *k+1*'s input *is* day *k*'s output — so this path
/// gives up the cold sweep's day-level fan-out and must win on
/// per-day algorithmic savings instead.
///
/// With `warm.decay() == 0.0` every day is an exact cold start and
/// the sweep's labels are byte-identical to [`run_days_streaming`] —
/// the archive bench's `--verify-cold` flag checks exactly that.
///
/// A failed day is reported as `Err(DayFailure)` and the sweep
/// continues; the warm state simply carries the last completed day's
/// baselines across the gap (same policy as a real service skipping
/// a corrupt pcap).
pub fn run_days_streaming_warm<T, F>(
    days: &[TraceDate],
    scale: f64,
    chunk_us: u64,
    pipeline_config: PipelineConfig,
    warm: &mut WarmState,
    mut reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    F: FnMut(&StreamingDayContext<'_>) -> T,
{
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale,
        ..Default::default()
    });
    let pipeline = OnlinePipeline::new(pipeline_config.clone());
    let mut out = Vec::with_capacity(days.len());
    for (done, &date) in days.iter().enumerate() {
        let generator = TraceGenerator::new(sim.config_for(date));
        let t0 = std::time::Instant::now();
        let source = generator.stream(chunk_us);
        let records = source.records().to_vec();
        let gen_wall = t0.elapsed();
        let mut collector = StreamTruthCollector::new(pipeline_config.granularity);
        let t0 = std::time::Instant::now();
        let online = {
            let tap = TapSource::new(source, &mut collector);
            let mut sealed = NoRewindSource::new(tap);
            match pipeline.run_warm(&mut sealed, Some(warm)) {
                Ok(online) => online,
                Err(error) => {
                    out.push(Err(DayFailure { date, error }));
                    continue;
                }
            }
        };
        let wall = t0.elapsed();
        let (item_ids, tags) = collector.into_parts();
        let truth = GroundTruth::new(tags, records);
        out.push(Ok(reduce(&StreamingDayContext {
            date,
            truth: &truth,
            item_ids: &item_ids,
            report: &online.report,
            windows: &online.windows,
            wall,
            gen_wall,
        })));
        let d = done + 1;
        if d.is_multiple_of(25) || d == days.len() {
            eprintln!("  [{d}/{} days]", days.len());
        }
    }
    out
}

/// The **two-pass oracle** form of [`run_days_streaming`]: the same
/// sweep through the legacy [`StreamingPipeline`] (truth pre-pass,
/// rewind, detection pass, rewind, extraction pass). Kept as the
/// independently-built path to the same labels — equivalence suites
/// byte-compare its output against the single-pass run — and for
/// profiling the replay cost the single-pass path eliminates. Its
/// contexts carry no [`LabeledWindow`]s (`windows` is empty): the
/// oracle labels the day all at once.
pub fn run_days_streaming_two_pass<T, F>(
    days: &[TraceDate],
    scale: f64,
    chunk_us: u64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<Result<T, DayFailure>>
where
    T: Send,
    F: Fn(&StreamingDayContext<'_>) -> T + Sync,
{
    schedule_days(days, scale, |date, sim| {
        let generator = TraceGenerator::new(sim.config_for(date));
        let t0 = std::time::Instant::now();
        let mut source = generator.stream(chunk_us);
        // Streaming pre-pass: per-packet truth tags and traffic-unit
        // ids in stream order, one chunk live at a time.
        let mut item_index = ItemIndex::new(pipeline_config.granularity);
        let mut item_ids = Vec::new();
        let mut tags = Vec::new();
        loop {
            match source.next_chunk() {
                Ok(Some(chunk)) => {
                    item_ids.extend(chunk.packets.iter().map(|p| item_index.id_of(p)));
                    tags.extend_from_slice(source.chunk_tags());
                }
                Ok(None) => break,
                Err(error) => return Err(DayFailure { date, error }),
            }
        }
        let truth = GroundTruth::new(tags, source.records().to_vec());
        let gen_wall = t0.elapsed();
        if let Err(error) = source.rewind() {
            return Err(DayFailure { date, error });
        }
        let pipeline = StreamingPipeline::new(pipeline_config.clone());
        let t0 = std::time::Instant::now();
        let report = match pipeline.run(&mut source) {
            Ok(report) => report,
            Err(error) => return Err(DayFailure { date, error }),
        };
        let wall = t0.elapsed();
        Ok(reduce(&StreamingDayContext {
            date,
            truth: &truth,
            item_ids: &item_ids,
            report: &report,
            windows: &[],
            wall,
            gen_wall,
        }))
    })
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`), if
/// the platform exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::archive::first_days_of_month;

    #[test]
    fn results_come_back_in_day_order() {
        let days = first_days_of_month(2005, 6, 4);
        let out = run_days(&days, 0.3, PipelineConfig::default(), |ctx| ctx.date);
        assert_eq!(out, days);
    }

    #[test]
    fn context_is_complete() {
        let days = first_days_of_month(2002, 2, 1);
        let ok = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            ctx.per_strategy.len() == 5
                && ctx.report.decisions.len() == ctx.report.community_count()
                && !ctx.labeled_trace.trace.is_empty()
                && ctx.view.trace.len() == ctx.labeled_trace.trace.len()
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn streaming_days_match_batch_days() {
        let days = first_days_of_month(2005, 6, 2);
        let batch = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            (ctx.report.alarm_count(), ctx.report.decisions.clone())
        });
        let streamed: Vec<_> = run_days_streaming(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            |ctx| {
                assert_eq!(ctx.report.stats.passes(), 1, "single-pass path drains once");
                assert!(ctx.report.stats.horizon_lag_us.is_some());
                assert!(ctx.report.stats.chunks() > 1);
                assert!((ctx.report.stats.peak_chunk_packets as u64) < ctx.report.stats.packets());
                assert_eq!(
                    ctx.item_ids.len() as u64,
                    ctx.report.stats.packets(),
                    "one item id per streamed packet"
                );
                assert_eq!(
                    ctx.item_ids
                        .iter()
                        .collect::<std::collections::HashSet<_>>()
                        .len(),
                    ctx.report.stats.items,
                    "context ids and pipeline extraction agree on the unit universe"
                );
                assert_eq!(
                    ctx.windows
                        .iter()
                        .map(|w| w.communities.len())
                        .sum::<usize>(),
                    ctx.report.labeled.communities.len(),
                    "the horizon feed carries every labeled community"
                );
                (ctx.report.alarm_count(), ctx.report.decisions.clone())
            },
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn warm_sweep_at_zero_decay_matches_cold_sweep() {
        let days = first_days_of_month(2005, 6, 3);
        let reduce = |ctx: &StreamingDayContext<'_>| {
            (ctx.report.alarm_count(), ctx.report.decisions.clone())
        };
        let cold: Vec<_> = run_days_streaming(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            reduce,
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        let mut warm = mawilab_core::WarmState::new(0.0);
        let warmed: Vec<_> = run_days_streaming_warm(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            &mut warm,
            reduce,
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        assert_eq!(cold, warmed, "decay = 0 must be an exact cold start");
        assert_eq!(warm.days(), 3);
        assert_eq!(warm.seeded_days(), 0);
    }

    #[test]
    fn warm_sweep_carries_state_between_days() {
        let days = first_days_of_month(2005, 6, 2);
        let mut warm = mawilab_core::WarmState::new(0.5);
        let alarms: Vec<usize> = run_days_streaming_warm(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            &mut warm,
            |ctx| ctx.report.alarm_count(),
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        assert_eq!(alarms.len(), 2);
        assert_eq!(warm.days(), 2);
        assert!(warm.carried_signatures() > 0);
    }

    #[test]
    fn two_pass_oracle_agrees_with_the_single_pass_run() {
        let days = first_days_of_month(2003, 9, 2);
        let reduce = |ctx: &StreamingDayContext<'_>| {
            (
                ctx.report.alarm_count(),
                ctx.report.decisions.clone(),
                ctx.truth.tags().to_vec(),
                ctx.item_ids.to_vec(),
            )
        };
        let single: Vec<_> = run_days_streaming(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            reduce,
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        let oracle: Vec<_> = run_days_streaming_two_pass(
            &days,
            0.3,
            mawilab_model::DEFAULT_CHUNK_US,
            PipelineConfig::default(),
            |ctx| {
                assert_eq!(ctx.report.stats.passes(), 2, "oracle drains twice");
                assert!(ctx.windows.is_empty(), "oracle emits no horizon feed");
                reduce(ctx)
            },
        )
        .into_iter()
        .map(|day| day.expect("synthetic day cannot fail"))
        .collect();
        assert_eq!(single, oracle);
    }
}
