//! The archive→pipeline day runner.
//!
//! Figure workloads all share one shape: generate N archive days,
//! push each through the pipeline, reduce each day to a small summary
//! value, aggregate. Days are independent, so they run on a scoped
//! thread pool; results come back in day order regardless of
//! scheduling.

use mawilab_combiner::Decision;
use mawilab_core::{MawilabPipeline, PipelineConfig, PipelineReport, StrategyKind};
use mawilab_detectors::TraceView;
use mawilab_model::{FlowTable, TraceDate};
use mawilab_synth::{ArchiveConfig, ArchiveSimulator, LabeledTrace};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything a per-day reducer can look at.
pub struct DayContext<'a> {
    /// The archive day.
    pub date: TraceDate,
    /// The generated trace with ground truth.
    pub labeled_trace: &'a LabeledTrace,
    /// Trace + flow table view.
    pub view: &'a TraceView<'a>,
    /// Full pipeline output (communities, votes, SCANN decisions,
    /// labels).
    pub report: &'a PipelineReport,
    /// Decisions of all five strategies on this day's vote table.
    pub per_strategy: &'a [(StrategyKind, Vec<Decision>)],
}

/// Runs `reduce` over every day, in parallel, returning per-day
/// results in day order. Prints a progress line to stderr.
pub fn run_days<T, F>(
    days: &[TraceDate],
    scale: f64,
    pipeline_config: PipelineConfig,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&DayContext<'_>) -> T + Sync,
{
    let sim = ArchiveSimulator::new(ArchiveConfig { scale, ..Default::default() });
    let n_threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..days.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<T>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= days.len() {
                    break;
                }
                let date = days[i];
                let lt = sim.generate(date);
                let flows = FlowTable::build(&lt.trace.packets);
                let view = TraceView::new(&lt.trace, &flows);
                let pipeline = MawilabPipeline::new(pipeline_config.clone());
                let (report, per_strategy) = pipeline.run_all_strategies(&lt.trace);
                let ctx = DayContext {
                    date,
                    labeled_trace: &lt,
                    view: &view,
                    report: &report,
                    per_strategy: &per_strategy,
                };
                let value = reduce(&ctx);
                **slots[i].lock().expect("poisoned result slot") = Some(value);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if d % 25 == 0 || d == days.len() {
                    eprintln!("  [{d}/{} days]", days.len());
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("missing day result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::archive::first_days_of_month;

    #[test]
    fn results_come_back_in_day_order() {
        let days = first_days_of_month(2005, 6, 4);
        let out = run_days(&days, 0.3, PipelineConfig::default(), |ctx| ctx.date);
        assert_eq!(out, days);
    }

    #[test]
    fn context_is_complete() {
        let days = first_days_of_month(2002, 2, 1);
        let ok = run_days(&days, 0.3, PipelineConfig::default(), |ctx| {
            ctx.per_strategy.len() == 5
                && ctx.report.decisions.len() == ctx.report.community_count()
                && ctx.labeled_trace.trace.len() > 0
                && ctx.view.trace.len() == ctx.labeled_trace.trace.len()
        });
        assert!(ok.iter().all(|&b| b));
    }
}
