//! Failure-path coverage for the month-scale streaming sweep.
//!
//! PR 4 made the day runner survive a failing day instead of
//! poisoning the month; PR 6 moved the sweep to the single-pass
//! online path, where the failure-injection seam is the
//! [`SourceWrap`] hook: a wrapper makes one day's source error
//! mid-drain, and the sweep must report it, skip it, and still
//! compute longitudinal metrics over the surviving adjacent pairs.

use mawilab_bench::archive::{
    collect_archive_wrapped, default_sweep_start, month_sweep_days, ArchiveBenchArgs,
};
use mawilab_bench::{run_days_streaming_wrapped, SourceWrap};
use mawilab_core::PipelineConfig;
use mawilab_model::pcap::PcapError;
use mawilab_model::{
    PacketChunk, PacketSource, SourceError, TraceDate, TraceMeta, DEFAULT_CHUNK_US,
};

/// Wraps a source so it errors after `allow` chunks — a mid-drain
/// failure (truncated pcap, dying capture card) on the single-pass
/// path, which never rewinds.
struct FailMidDrain<'a> {
    inner: Box<dyn PacketSource + 'a>,
    allow: usize,
}

impl PacketSource for FailMidDrain<'_> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }
    fn bin_us(&self) -> u64 {
        self.inner.bin_us()
    }
    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        if self.allow == 0 {
            return Err(SourceError::Pcap(PcapError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "injected mid-drain failure",
            ))));
        }
        self.allow -= 1;
        self.inner.next_chunk()
    }
    fn rewind(&mut self) -> Result<(), SourceError> {
        self.inner.rewind()
    }
}

/// The [`SourceWrap`] that injects the failure on one day only.
struct InjectOn {
    bad_day: TraceDate,
    allow: usize,
}

impl SourceWrap for InjectOn {
    fn wrap<'a>(
        &self,
        date: TraceDate,
        inner: Box<dyn PacketSource + 'a>,
    ) -> Box<dyn PacketSource + 'a> {
        if date == self.bad_day {
            Box::new(FailMidDrain {
                inner,
                allow: self.allow,
            })
        } else {
            inner
        }
    }
}

#[test]
fn failing_day_is_reported_skipped_and_survived() {
    // Four consecutive days over the era boundary; the second fails.
    let days = month_sweep_days(default_sweep_start(), 4);
    let bad_day = days[1];
    let args = ArchiveBenchArgs {
        scale: 0.2,
        days: days.clone(),
        out_dir: std::env::temp_dir()
            .join("mawilab-day-failure")
            .to_str()
            .unwrap()
            .to_string(),
        chunk_us: DEFAULT_CHUNK_US,
        warm_decay: None,
        verify_cold: false,
    };
    let outcome = collect_archive_wrapped(&args, &InjectOn { bad_day, allow: 3 });

    // Reported …
    assert_eq!(outcome.failed.len(), 1, "exactly one day fails");
    assert_eq!(outcome.failed[0].0, bad_day);
    assert!(
        outcome.failed[0].1.contains("injected mid-drain failure"),
        "error text: {}",
        outcome.failed[0].1
    );
    // … skipped …
    let surviving: Vec<TraceDate> = outcome.records.iter().map(|r| r.summary.date).collect();
    assert_eq!(surviving, vec![days[0], days[2], days[3]]);
    // Survivors all ran single-pass.
    assert!(outcome.records.iter().all(|r| r.passes == 1));
    // … and the longitudinal metrics still cover the surviving
    // adjacent pairs: (d0, d2) bridges the failure with a 2-day gap
    // inside the old era; (d2, d3) crosses the era boundary and is
    // itemised as a transition instead of pooled.
    let pairs = &outcome.stability.pairs;
    assert_eq!(pairs.len(), 1);
    assert_eq!(
        (pairs[0].from, pairs[0].to, pairs[0].gap_days),
        (days[0], days[2], 2)
    );
    assert!(outcome.stability.label_churn.is_finite());
    assert!(outcome.stability.jaccard_drift.is_finite());
    assert!(
        !outcome.stability.era_transitions.is_empty(),
        "the surviving pairs still cross the era boundary"
    );
    // Monthly trajectory still materialises from the survivors.
    assert!(!outcome.stability.monthly.is_empty());
}

#[test]
fn harness_seam_reports_failures_in_day_order() {
    // The low-level harness contract: one Result per day, in order.
    let days = month_sweep_days(TraceDate::new(2005, 6, 1), 3);
    let bad_day = days[2];
    let outcomes = run_days_streaming_wrapped(
        &days,
        0.2,
        DEFAULT_CHUNK_US,
        PipelineConfig::default(),
        &InjectOn { bad_day, allow: 0 },
        |ctx| ctx.date,
    );
    assert_eq!(outcomes.len(), 3);
    assert_eq!(*outcomes[0].as_ref().unwrap(), days[0]);
    assert_eq!(*outcomes[1].as_ref().unwrap(), days[1]);
    let failure = outcomes[2].as_ref().unwrap_err();
    assert_eq!(failure.date, bad_day);
    assert!(matches!(failure.error, SourceError::Pcap(_)));
}
