//! Failure-path coverage for the month-scale streaming sweep.
//!
//! PR 4 made `run_days_streaming` survive a failing day instead of
//! poisoning the month, but only the happy path was exercised. Here a
//! day mid-sequence is made to fail (its source refuses the pass-2
//! rewind) and the sweep must report it, skip it, and still compute
//! longitudinal metrics over the surviving adjacent pairs.

use mawilab_bench::archive::{
    collect_archive_with, default_sweep_start, month_sweep_days, ArchiveBenchArgs,
};
use mawilab_bench::run_days_streaming_with;
use mawilab_core::PipelineConfig;
use mawilab_model::{
    PacketChunk, PacketSource, SourceError, Trace, TraceChunker, TraceDate, TraceMeta,
    DEFAULT_CHUNK_US,
};

/// A [`TraceChunker`] that (optionally) refuses to rewind — the
/// two-pass streaming pipeline then fails the day with a
/// `RewindUnsupported` source error mid-sweep.
struct Injected {
    inner: TraceChunker,
    fail_rewind: bool,
}

impl PacketSource for Injected {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }
    fn bin_us(&self) -> u64 {
        self.inner.bin_us()
    }
    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        self.inner.next_chunk()
    }
    fn rewind(&mut self) -> Result<(), SourceError> {
        if self.fail_rewind {
            return Err(SourceError::RewindUnsupported("injected failure"));
        }
        self.inner.rewind()
    }
}

fn make_injected(bad_day: TraceDate) -> impl Fn(TraceDate, Trace) -> Injected + Sync {
    move |date, trace| Injected {
        inner: TraceChunker::new(trace, DEFAULT_CHUNK_US),
        fail_rewind: date == bad_day,
    }
}

#[test]
fn failing_day_is_reported_skipped_and_survived() {
    // Four consecutive days over the era boundary; the second fails.
    let days = month_sweep_days(default_sweep_start(), 4);
    let bad_day = days[1];
    let args = ArchiveBenchArgs {
        scale: 0.2,
        days: days.clone(),
        out_dir: std::env::temp_dir()
            .join("mawilab-day-failure")
            .to_str()
            .unwrap()
            .to_string(),
        ..Default::default()
    };
    let outcome = collect_archive_with(&args, make_injected(bad_day));

    // Reported …
    assert_eq!(outcome.failed.len(), 1, "exactly one day fails");
    assert_eq!(outcome.failed[0].0, bad_day);
    assert!(
        outcome.failed[0].1.contains("does not support rewinding"),
        "error text: {}",
        outcome.failed[0].1
    );
    // … skipped …
    let surviving: Vec<TraceDate> = outcome.records.iter().map(|r| r.summary.date).collect();
    assert_eq!(surviving, vec![days[0], days[2], days[3]]);
    // … and the longitudinal metrics still cover the surviving
    // adjacent pairs: (d0, d2) bridges the failure with a 2-day gap
    // inside the old era; (d2, d3) crosses the era boundary and is
    // itemised as a transition instead of pooled.
    let pairs = &outcome.stability.pairs;
    assert_eq!(pairs.len(), 1);
    assert_eq!(
        (pairs[0].from, pairs[0].to, pairs[0].gap_days),
        (days[0], days[2], 2)
    );
    assert!(outcome.stability.label_churn.is_finite());
    assert!(outcome.stability.jaccard_drift.is_finite());
    assert!(
        !outcome.stability.era_transitions.is_empty(),
        "the surviving pairs still cross the era boundary"
    );
    // Monthly trajectory still materialises from the survivors.
    assert!(!outcome.stability.monthly.is_empty());
}

#[test]
fn harness_seam_reports_failures_in_day_order() {
    // The low-level harness contract: one Result per day, in order.
    let days = month_sweep_days(TraceDate::new(2005, 6, 1), 3);
    let bad_day = days[2];
    let outcomes = run_days_streaming_with(
        &days,
        0.2,
        PipelineConfig::default(),
        make_injected(bad_day),
        |ctx| ctx.date,
    );
    assert_eq!(outcomes.len(), 3);
    assert_eq!(*outcomes[0].as_ref().unwrap(), days[0]);
    assert_eq!(*outcomes[1].as_ref().unwrap(), days[1]);
    let failure = outcomes[2].as_ref().unwrap_err();
    assert_eq!(failure.date, bad_day);
    assert!(matches!(failure.error, SourceError::RewindUnsupported(_)));
}
