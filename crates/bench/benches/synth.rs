//! Criterion bench: synthetic archive-day generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mawilab_model::{FlowTable, TraceDate};
use mawilab_synth::{ArchiveConfig, ArchiveSimulator};
use std::hint::black_box;

fn bench_synth(c: &mut Criterion) {
    let sim = ArchiveSimulator::new(ArchiveConfig::default());
    let day = TraceDate::new(2004, 6, 2);
    let mut g = c.benchmark_group("synth");
    g.sample_size(20);
    g.bench_function("archive_day", |b| {
        b.iter(|| black_box(sim.generate(black_box(day))))
    });
    let lt = sim.generate(day);
    g.throughput(criterion::Throughput::Elements(lt.trace.len() as u64));
    g.bench_function("flow_table", |b| {
        b.iter(|| black_box(FlowTable::build(black_box(&lt.trace.packets))))
    });
    g.finish();
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
