//! Criterion bench: modified Apriori over community-sized transaction
//! sets at the paper's 20% support.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mawilab_mining::{mine_rules, Transaction};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn transactions(n: usize) -> Vec<Transaction> {
    let mut state = 3u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                // Recurrent pattern (the anomaly).
                Transaction::new(
                    Ipv4Addr::new(9, 9, 9, 9),
                    31337,
                    Ipv4Addr::new(10, 0, 0, 1),
                    445,
                )
            } else {
                Transaction::new(
                    Ipv4Addr::from(rnd() % 1000 + 1),
                    (rnd() % 60000 + 1024) as u16,
                    Ipv4Addr::from(rnd() % 500 + 1_000_000),
                    (rnd() % 1000) as u16,
                )
            }
        })
        .collect()
}

fn bench_apriori(c: &mut Criterion) {
    let mut g = c.benchmark_group("apriori");
    for n in [100usize, 1000, 5000] {
        let txs = transactions(n);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &txs, |b, txs| {
            b.iter(|| black_box(mine_rules(black_box(txs), 0.2)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_apriori);
criterion_main!(benches);
