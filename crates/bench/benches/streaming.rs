//! Criterion bench: streaming vs batch ingest of one default trace,
//! plus the chunked pcap reader's parse throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mawilab_core::{MawilabPipeline, PipelineConfig, StreamingPipeline};
use mawilab_model::{pcap, PacketSource, StreamingPcapReader, TraceChunker, DEFAULT_CHUNK_US};
use mawilab_synth::{SynthConfig, TraceGenerator};
use std::hint::black_box;
use std::io::Cursor;

fn bench_streaming_pipeline(c: &mut Criterion) {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let n = lt.trace.len() as u64;
    let mut g = c.benchmark_group("streaming_pipeline");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(n));

    let batch = MawilabPipeline::new(PipelineConfig::default());
    g.bench_function("batch", |b| {
        b.iter(|| black_box(batch.run(black_box(&lt.trace))))
    });

    let streaming = StreamingPipeline::new(PipelineConfig::default());
    for bin_us in [DEFAULT_CHUNK_US, 30_000_000] {
        g.bench_with_input(
            BenchmarkId::new("streaming", format!("{}s_chunks", bin_us / 1_000_000)),
            &bin_us,
            |b, &bin_us| {
                b.iter(|| {
                    let mut source = TraceChunker::new(lt.trace.clone(), bin_us);
                    black_box(streaming.run(&mut source).unwrap())
                })
            },
        );
    }
    g.finish();
}

fn bench_pcap_reader(c: &mut Criterion) {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(78)).generate();
    let mut buf = Vec::new();
    pcap::write_pcap(&mut buf, &lt.trace).unwrap();
    let mut g = c.benchmark_group("streaming_pcap_reader");
    g.throughput(criterion::Throughput::Bytes(buf.len() as u64));
    g.bench_function("chunked_parse", |b| {
        b.iter(|| {
            let mut reader = StreamingPcapReader::new(
                Cursor::new(&buf),
                lt.trace.meta.clone(),
                DEFAULT_CHUNK_US,
            )
            .unwrap();
            let mut packets = 0u64;
            while let Some(chunk) = reader.next_chunk().unwrap() {
                packets += chunk.packets.len() as u64;
            }
            black_box(packets)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_streaming_pipeline, bench_pcap_reader);
criterion_main!(benches);
