//! Criterion bench: SCANN classification (indicator table + CA + SVD
//! + reference projection) as a function of community count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mawilab_combiner::{CombinationStrategy, Scann, VoteTable};
use std::hint::black_box;

fn vote_table(n: usize) -> VoteTable {
    let mut state = 5u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    VoteTable::from_rows(
        (0..n)
            .map(|_| {
                let mut row = [false; 12];
                let pattern = rnd() % 4;
                match pattern {
                    0 => {} // silence
                    1 => row[rnd() % 12] = true,
                    2 => {
                        let d = rnd() % 4;
                        for t in 0..3 {
                            row[d * 3 + t] = true;
                        }
                    }
                    _ => {
                        for slot in row.iter_mut() {
                            *slot = rnd() % 2 == 0;
                        }
                    }
                }
                row
            })
            .collect(),
    )
}

fn bench_scann(c: &mut Criterion) {
    let mut g = c.benchmark_group("scann");
    for n in [20usize, 200, 2000] {
        let table = vote_table(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &table, |b, table| {
            b.iter(|| black_box(Scann::default().classify(black_box(table))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scann);
criterion_main!(benches);
