//! Criterion bench: the full four-step pipeline on one default trace
//! (the §6 runtime claim in microbenchmark form).

use criterion::{criterion_group, criterion_main, Criterion};
use mawilab_core::{MawilabPipeline, PipelineConfig};
use mawilab_synth::{SynthConfig, TraceGenerator};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(lt.trace.len() as u64));
    g.bench_function("end_to_end_60s_trace", |b| {
        b.iter(|| black_box(pipeline.run(black_box(&lt.trace))))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
