//! Criterion bench: each detector family (optimal tuning) on one
//! default trace.

use criterion::{criterion_group, criterion_main, Criterion};
use mawilab_detectors::{
    Detector, GammaDetector, HoughDetector, KlDetector, PcaDetector, TraceView, Tuning,
};
use mawilab_model::FlowTable;
use mawilab_synth::{SynthConfig, TraceGenerator};
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(77)).generate();
    let flows = FlowTable::build(&lt.trace.packets);
    let view = TraceView::new(&lt.trace, &flows);
    let detectors: Vec<(&str, Box<dyn Detector>)> = vec![
        ("pca", Box::new(PcaDetector::new(Tuning::Optimal))),
        ("gamma", Box::new(GammaDetector::new(Tuning::Optimal))),
        ("hough", Box::new(HoughDetector::new(Tuning::Optimal))),
        ("kl", Box::new(KlDetector::new(Tuning::Optimal))),
    ];
    let mut g = c.benchmark_group("detectors");
    g.throughput(criterion::Throughput::Elements(lt.trace.len() as u64));
    for (name, det) in &detectors {
        g.bench_function(*name, |b| {
            b.iter(|| black_box(det.analyze(black_box(&view))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
