//! Criterion bench: Louvain community mining on similarity-graph-like
//! inputs (many isolated nodes + clustered cores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mawilab_graph::{louvain, Graph};
use std::hint::black_box;

/// Builds a graph shaped like a real similarity graph: dense
/// communities of ~8 nodes over 60% of the nodes, the rest isolated.
fn similarity_like(n: usize) -> Graph {
    let mut g = Graph::new(n);
    let clustered = n * 6 / 10;
    let mut state = 7u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    let comm_size = 8;
    for start in (0..clustered).step_by(comm_size) {
        let end = (start + comm_size).min(clustered);
        for i in start..end {
            for j in (i + 1)..end {
                if rnd() % 10 < 7 {
                    g.add_edge(i, j, ((rnd() % 90) + 10) as f64 / 100.0);
                }
            }
        }
    }
    g
}

fn bench_louvain(c: &mut Criterion) {
    let mut g = c.benchmark_group("louvain");
    for n in [100usize, 500, 2000] {
        let graph = similarity_like(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| black_box(louvain(black_box(graph), 1.0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_louvain);
criterion_main!(benches);
