//! Criterion bench: similarity-graph construction (traffic extraction
//! is measured implicitly through the pipeline bench; here the focus
//! is the inverted-index pair scoring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mawilab_similarity::SimilarityEstimator;
use std::hint::black_box;

/// Alarm traffic sets with realistic overlap structure: groups of ~6
/// alarms share most of their items.
fn alarm_sets(n: usize) -> Vec<Vec<u32>> {
    let mut state = 11u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let group = (i / 6) as u32;
            let base = group * 400;
            let mut set: Vec<u32> =
                (0..80).map(|_| base + rnd() % 300).collect();
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect()
}

fn bench_graph(c: &mut Criterion) {
    let est = SimilarityEstimator::default();
    let mut g = c.benchmark_group("similarity_graph");
    for n in [50usize, 200, 1000] {
        let sets = alarm_sets(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &sets, |b, sets| {
            b.iter(|| black_box(est.build_graph(black_box(sets))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
