//! Criterion bench: similarity-graph construction (traffic extraction
//! is measured implicitly through the pipeline bench; here the focus
//! is the inverted-index pair scoring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mawilab_similarity::SimilarityEstimator;
use std::hint::black_box;

/// Alarm traffic sets with realistic overlap structure: groups of ~6
/// alarms share most of their items.
fn alarm_sets(n: usize) -> Vec<Vec<u32>> {
    let mut state = 11u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let group = (i / 6) as u32;
            let base = group * 400;
            let mut set: Vec<u32> = (0..80).map(|_| base + rnd() % 300).collect();
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect()
}

fn bench_graph(c: &mut Criterion) {
    let est = SimilarityEstimator::default();
    let mut g = c.benchmark_group("similarity_graph");
    for n in [50usize, 200, 1000] {
        let sets = alarm_sets(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &sets, |b, sets| {
            b.iter(|| black_box(est.build_graph(black_box(sets))))
        });
    }
    g.finish();
}

/// Sharded engine vs the retained sequential reference on the same
/// workload — the in-tree before/after of the hot-path refactor
/// (`results/BENCH_hotpaths.json` tracks the trajectory).
fn bench_engines(c: &mut Criterion) {
    let est = SimilarityEstimator::default();
    let mut g = c.benchmark_group("similarity_graph_engines");
    for n in [200usize, 1000] {
        let sets = alarm_sets(n);
        g.bench_with_input(BenchmarkId::new("sequential", n), &sets, |b, sets| {
            b.iter(|| black_box(est.build_graph_sequential(black_box(sets))))
        });
        g.bench_with_input(BenchmarkId::new("sharded", n), &sets, |b, sets| {
            b.iter(|| black_box(est.build_graph(black_box(sets))))
        });
    }
    g.finish();
}

/// Guard for the candidate-pair set representation (the
/// `HashMap<(u32,u32),()>` → `HashSet` change): a dense-overlap
/// workload where almost every alarm pair co-occurs, so pair-set
/// insertion dominates graph construction.
fn bench_candidate_pairs(c: &mut Criterion) {
    let est = SimilarityEstimator::default();
    let mut g = c.benchmark_group("similarity_graph_pairs");
    for n in [100usize, 400] {
        // Every alarm shares items 0..40 with every other: ~n²/2 pairs.
        let sets: Vec<Vec<u32>> = (0..n)
            .map(|i| (0..40).chain([1000 + i as u32]).collect())
            .collect();
        g.bench_with_input(BenchmarkId::new("dense", n), &sets, |b, sets| {
            b.iter(|| black_box(est.build_graph(black_box(sets))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_graph, bench_engines, bench_candidate_pairs);
criterion_main!(benches);
