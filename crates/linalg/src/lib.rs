//! # mawilab-linalg
//!
//! Small dense linear-algebra substrate for the MAWILab reproduction.
//! Two consumers drive the feature set:
//!
//! * the **PCA-based detector** needs covariance eigendecomposition and
//!   principal-subspace residuals over sketch×time matrices
//!   (dimensions ≈ 32–64), and
//! * the **SCANN combiner** needs correspondence analysis — thin SVD of
//!   standardised residuals of a communities×votes indicator table —
//!   plus supplementary-point projection.
//!
//! Matrices here are tiny by numerical-computing standards (tens of
//! columns), so the implementations favour robustness and clarity:
//! cyclic Jacobi for symmetric eigenproblems (unconditionally
//! convergent) and SVD via the Gram matrix, which is perfectly
//! conditioned for the vote tables involved (entries in `{0,1}`).
//!
//! Modules: [`matrix`], [`eigen`], [`svd`], [`pca`], [`ca`].

#![forbid(unsafe_code)]

pub mod ca;
pub mod eigen;
pub mod matrix;
pub mod pca;
pub mod svd;

pub use ca::CorrespondenceAnalysis;
pub use eigen::SymmetricEigen;
pub use matrix::Matrix;
pub use pca::Pca;
pub use svd::{Svd, SVD_EXACT_GATE};
