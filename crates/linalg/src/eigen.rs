//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! Jacobi is quadratically convergent, unconditionally stable, and at
//! the matrix sizes this workspace produces (≤ 64×64 covariance or
//! Gram matrices) entirely adequate — simplicity wins over LAPACK-style
//! tridiagonalisation.

use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in descending order and eigenvectors as the
/// *columns* of `vectors`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square or not symmetric within
    /// `1e-8` absolute tolerance.
    pub fn new(a: &Matrix) -> Self {
        let n = a.rows();
        assert_eq!(n, a.cols(), "eigendecomposition needs a square matrix");
        for i in 0..n {
            for j in 0..i {
                assert!(
                    (a[(i, j)] - a[(j, i)]).abs() <= 1e-8 * (1.0 + a[(i, j)].abs()),
                    "matrix is not symmetric at ({i},{j})"
                );
            }
        }
        let mut m = a.clone();
        let mut v = Matrix::identity(n);

        // Cyclic sweeps until off-diagonal mass is negligible.
        let max_sweeps = 100;
        for _ in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() <= 1e-12 * (1.0 + m.frobenius()) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Rotate rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate the rotation into V.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Extract and sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("NaN eigenvalue")); // lint:allow(panic-free-data-plane): Jacobi rotations of a finite symmetric matrix keep the diagonal finite
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (newj, &oldj) in order.iter().enumerate() {
            for i in 0..n {
                vectors[(i, newj)] = v[(i, oldj)];
            }
        }
        SymmetricEigen { values, vectors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{distance, dot};

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.values.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        e.vectors.matmul(&lam).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = SymmetricEigen::new(&a);
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::new(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut state = 1u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let e = SymmetricEigen::new(&a);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-9);
        // VᵀV = I
        for i in 0..n {
            for j in 0..n {
                let d = dot(&e.vectors.col(i), &e.vectors.col(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-9, "col {i}·col {j} = {d}");
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted_descending() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let e = SymmetricEigen::new(&a);
        assert!(e.values.windows(2).all(|w| w[0] >= w[1]));
        // Trace preserved.
        let trace_sum: f64 = e.values.iter().sum();
        assert!((trace_sum - 9.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 3.0]]);
        let e = SymmetricEigen::new(&a);
        for k in 0..2 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            let lv: Vec<f64> = v.iter().map(|x| x * e.values[k]).collect();
            assert!(distance(&av, &lv) < 1e-10);
        }
    }

    #[test]
    fn rank_deficient_matrix_has_zero_eigenvalues() {
        // Outer product uuᵀ has rank 1.
        let u = [1.0, 2.0, 2.0];
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = u[i] * u[j];
            }
        }
        let e = SymmetricEigen::new(&a);
        assert!((e.values[0] - 9.0).abs() < 1e-10); // ‖u‖² = 9
        assert!(e.values[1].abs() < 1e-10);
        assert!(e.values[2].abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        SymmetricEigen::new(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_panics() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        SymmetricEigen::new(&a);
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[vec![7.0]]);
        let e = SymmetricEigen::new(&a);
        assert_eq!(e.values, vec![7.0]);
        assert_eq!(e.vectors[(0, 0)], 1.0);
    }
}
