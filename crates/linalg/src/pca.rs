//! Principal component analysis over observation matrices.
//!
//! The PCA-based detector (paper §3.2, detector 1) models *normal*
//! traffic as the span of the top principal components of a
//! time×sketch-bin count matrix, and flags time bins whose residual
//! (projection onto the complementary subspace) is anomalously large —
//! the classic subspace method of Lakhina et al.

use crate::eigen::SymmetricEigen;
use crate::matrix::{dot, Matrix};

/// Column scaling policy applied before the covariance fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnScaling {
    /// Centre and divide by the sample standard deviation
    /// (correlation PCA — the default).
    #[default]
    UnitVariance,
    /// Centre and divide by `√(mean+1)` — variance-stabilising for
    /// Poisson counts, magnitude-preserving for outliers.
    Poisson,
    /// Centre only.
    None,
}

/// How many principal components to retain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PcaComponents {
    /// A fixed number of components (clamped to the variable count).
    Count(usize),
    /// Enough components to explain at least this fraction of total
    /// variance (must be in `(0, 1]`).
    VarianceFraction(f64),
}

/// A fitted PCA model: per-column standardisation plus the principal
/// subspace.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    scale: Vec<f64>,
    /// Principal axes as columns, `vars × k`.
    components: Matrix,
    /// Variance explained by each retained component.
    explained: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits PCA on `data` (rows = observations, columns = variables).
    /// Columns are centred and scaled to unit variance (constant
    /// columns are left unscaled). Needs at least 2 observations and
    /// 1 variable.
    pub fn fit(data: &Matrix, components: PcaComponents) -> Self {
        Self::fit_scaled(data, components, ColumnScaling::UnitVariance)
    }

    /// Fits PCA with an explicit column-scaling policy.
    ///
    /// Count matrices (the PCA detector's sketch×time inputs) should
    /// use [`ColumnScaling::Poisson`]: dividing by `√(mean+1)`
    /// stabilises Poisson variance while *preserving* magnitude, so a
    /// flooded sketch bin keeps its outlying energy instead of being
    /// normalised into the noise floor.
    pub fn fit_scaled(data: &Matrix, components: PcaComponents, scaling: ColumnScaling) -> Self {
        let (n, m) = (data.rows(), data.cols());
        assert!(n >= 2, "PCA needs at least two observations");
        assert!(m >= 1, "PCA needs at least one variable");

        let mut mean = vec![0.0; m];
        for i in 0..n {
            for (j, v) in data.row(i).iter().enumerate() {
                mean[j] += v;
            }
        }
        for v in &mut mean {
            *v /= n as f64;
        }
        let scale: Vec<f64> = match scaling {
            ColumnScaling::UnitVariance => {
                let mut var = vec![0.0; m];
                for i in 0..n {
                    for (j, v) in data.row(i).iter().enumerate() {
                        let d = v - mean[j];
                        var[j] += d * d;
                    }
                }
                var.iter()
                    .map(|&s| (s / (n - 1) as f64).sqrt())
                    .map(|s| if s > 1e-12 { s } else { 1.0 })
                    .collect()
            }
            ColumnScaling::Poisson => mean.iter().map(|&mu| (mu.max(0.0) + 1.0).sqrt()).collect(),
            ColumnScaling::None => vec![1.0; m],
        };

        // Standardised data → covariance (correlation) matrix.
        let mut z = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                z[(i, j)] = (data[(i, j)] - mean[j]) / scale[j];
            }
        }
        let mut cov = z.gram();
        for i in 0..m {
            for j in 0..m {
                cov[(i, j)] /= (n - 1) as f64;
            }
        }
        let eig = SymmetricEigen::new(&cov);
        let total_variance: f64 = eig.values.iter().map(|&l| l.max(0.0)).sum();

        let k = match components {
            PcaComponents::Count(k) => k.clamp(1, m),
            PcaComponents::VarianceFraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "variance fraction outside (0,1]");
                let mut acc = 0.0;
                let mut k = 0;
                for &l in &eig.values {
                    acc += l.max(0.0);
                    k += 1;
                    if total_variance > 0.0 && acc / total_variance >= f {
                        break;
                    }
                }
                k.max(1)
            }
        };
        let mut comp = Matrix::zeros(m, k);
        for j in 0..k {
            for i in 0..m {
                comp[(i, j)] = eig.vectors[(i, j)];
            }
        }
        Pca {
            mean,
            scale,
            components: comp,
            explained: eig.values.iter().take(k).map(|&l| l.max(0.0)).collect(),
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.cols()
    }

    /// Variance explained by each retained component.
    pub fn explained(&self) -> &[f64] {
        &self.explained
    }

    /// Fraction of total variance captured by the retained subspace.
    pub fn explained_fraction(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        self.explained.iter().sum::<f64>() / self.total_variance
    }

    fn standardise(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.mean.len(), "dimension mismatch");
        row.iter()
            .zip(self.mean.iter().zip(&self.scale))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// Scores (coordinates in the principal subspace) of one
    /// observation.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let z = self.standardise(row);
        (0..self.k())
            .map(|j| dot(&z, &self.components.col(j)))
            .collect()
    }

    /// The residual vector of one observation: its standardised form
    /// minus the projection onto the principal subspace. Coordinate
    /// `j` tells how much variable `j` deviates from the normal
    /// subspace — the sketch-bin localisation signal of the PCA
    /// detector.
    pub fn residual(&self, row: &[f64]) -> Vec<f64> {
        let z = self.standardise(row);
        let scores: Vec<f64> = (0..self.k())
            .map(|j| dot(&z, &self.components.col(j)))
            .collect();
        let mut e = z;
        for (j, &s) in scores.iter().enumerate() {
            let comp = self.components.col(j);
            for (ei, &cj) in e.iter_mut().zip(&comp) {
                *ei -= s * cj;
            }
        }
        e
    }

    /// Squared prediction error (SPE / Q-statistic): squared norm of
    /// the observation's residual outside the principal subspace. This
    /// is the anomaly score of the subspace method.
    pub fn residual_sq(&self, row: &[f64]) -> f64 {
        let z = self.standardise(row);
        let scores = (0..self.k())
            .map(|j| dot(&z, &self.components.col(j)))
            .collect::<Vec<f64>>();
        let mut resid_sq = dot(&z, &z);
        for s in scores {
            resid_sq -= s * s;
        }
        resid_sq.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Observations lying (noisily) on the line y = x: one dominant
    /// component.
    fn line_data() -> Matrix {
        let mut rows = Vec::new();
        let mut state = 99u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.01
        };
        for i in 0..200 {
            let t = i as f64 / 10.0;
            rows.push(vec![t + noise(), t + noise()]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn dominant_direction_is_captured() {
        let pca = Pca::fit(&line_data(), PcaComponents::Count(1));
        assert_eq!(pca.k(), 1);
        assert!(pca.explained_fraction() > 0.99);
    }

    #[test]
    fn on_subspace_points_have_tiny_residual() {
        let data = line_data();
        let pca = Pca::fit(&data, PcaComponents::Count(1));
        let typical = pca.residual_sq(data.row(10));
        let anomaly = pca.residual_sq(&[5.0, -5.0]); // orthogonal to y=x
        assert!(
            anomaly > 1000.0 * (typical + 1e-9),
            "{anomaly} vs {typical}"
        );
    }

    #[test]
    fn variance_fraction_selects_enough_components() {
        let data = line_data();
        let pca = Pca::fit(&data, PcaComponents::VarianceFraction(0.95));
        assert_eq!(pca.k(), 1); // one component suffices on a line
        let pca_all = Pca::fit(&data, PcaComponents::VarianceFraction(1.0));
        assert!(pca_all.explained_fraction() > 0.999_999);
    }

    #[test]
    fn full_subspace_has_zero_residual() {
        let data = line_data();
        let pca = Pca::fit(&data, PcaComponents::Count(2));
        for i in 0..data.rows() {
            assert!(pca.residual_sq(data.row(i)) < 1e-9);
        }
    }

    #[test]
    fn count_is_clamped_to_variable_count() {
        let pca = Pca::fit(&line_data(), PcaComponents::Count(10));
        assert_eq!(pca.k(), 2);
    }

    #[test]
    fn constant_columns_do_not_blow_up() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 3.0]).collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, PcaComponents::Count(1));
        let r = pca.residual_sq(&[25.0, 3.0]);
        assert!(r.is_finite());
    }

    #[test]
    fn transform_projects_to_k_dims() {
        let pca = Pca::fit(&line_data(), PcaComponents::Count(1));
        assert_eq!(pca.transform(&[1.0, 1.0]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "two observations")]
    fn single_observation_panics() {
        Pca::fit(
            &Matrix::from_rows(&[vec![1.0, 2.0]]),
            PcaComponents::Count(1),
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_width_row_panics() {
        let pca = Pca::fit(&line_data(), PcaComponents::Count(1));
        pca.residual_sq(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "variance fraction")]
    fn bad_fraction_panics() {
        Pca::fit(&line_data(), PcaComponents::VarianceFraction(0.0));
    }
}
