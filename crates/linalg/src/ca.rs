//! Correspondence analysis (CA) of two-way count tables.
//!
//! CA is the dimensionality-reduction engine of SCANN (Merz 1999;
//! paper §2.2.3): the combiner builds a communities×votes indicator
//! table, CA embeds the rows (communities) into a low-dimensional
//! space where categorical co-occurrence structure is preserved, and
//! two *supplementary* reference rows — the unanimous-accept and
//! unanimous-reject vote patterns — are projected into the same space
//! without influencing it. A community's class is the nearer
//! reference point.
//!
//! Implementation follows the standard transition-formula formulation:
//! with correspondence matrix `P = N/n`, row masses `r`, column masses
//! `c`, the standardised residuals `S = D_r^{-1/2}(P − rcᵀ)D_c^{-1/2}`
//! are decomposed by thin SVD `S = UΣVᵀ`; column standard coordinates
//! are `Γ = D_c^{-1/2}V` and row principal coordinates are the row
//! profiles times `Γ`. Supplementary rows use the same profile×Γ
//! transition, which is what makes nearest-reference classification
//! well defined.
//!
//! All-zero columns (a detector configuration that never fired) and
//! all-zero rows are dropped from the decomposition; supplementary
//! projection ignores dropped columns, mirroring how CA software
//! treats structurally empty categories.

use crate::matrix::Matrix;
use crate::svd::Svd;

/// How many CA dimensions to keep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CaDims {
    /// Fixed count (clamped to the available rank).
    Count(usize),
    /// Enough dimensions to capture this fraction of total inertia.
    InertiaFraction(f64),
}

/// A fitted correspondence analysis.
#[derive(Debug, Clone)]
pub struct CorrespondenceAnalysis {
    /// Column standard coordinates `Γ`, `m_kept × k`.
    col_standard: Matrix,
    /// Indices of the original columns that had non-zero mass.
    kept_cols: Vec<usize>,
    /// Row principal coordinates of the active rows, `n × k`
    /// (all-zero rows map to the origin).
    row_principal: Matrix,
    /// Principal inertias (squared singular values), one per kept dim.
    inertia: Vec<f64>,
    n_cols: usize,
}

impl CorrespondenceAnalysis {
    /// Fits CA on a non-negative count table (rows = observations,
    /// e.g. communities; columns = categories, e.g. config votes).
    ///
    /// # Panics
    /// Panics on negative entries, or when the table has no positive
    /// mass at all.
    pub fn fit(table: &Matrix, dims: CaDims) -> Self {
        let (n, m) = (table.rows(), table.cols());
        let mut total = 0.0;
        for i in 0..n {
            for &v in table.row(i) {
                assert!(v >= 0.0, "CA table must be non-negative");
                total += v;
            }
        }
        assert!(total > 0.0, "CA table has no mass");

        // Masses.
        let mut r = vec![0.0; n];
        let mut c = vec![0.0; m];
        for (i, ri) in r.iter_mut().enumerate() {
            for (j, &v) in table.row(i).iter().enumerate() {
                *ri += v / total;
                c[j] += v / total;
            }
        }
        let kept_cols: Vec<usize> = (0..m).filter(|&j| c[j] > 0.0).collect();
        let mk = kept_cols.len();

        // Standardised residuals over kept columns and non-empty rows.
        let mut s = Matrix::zeros(n, mk);
        for i in 0..n {
            if r[i] == 0.0 {
                continue;
            }
            for (jj, &j) in kept_cols.iter().enumerate() {
                let p = table[(i, j)] / total;
                s[(i, jj)] = (p - r[i] * c[j]) / (r[i] * c[j]).sqrt();
            }
        }
        let svd = Svd::with_tolerance(&s, 1e-12);

        // Decide the number of dimensions.
        let inertia_all: Vec<f64> = svd.sigma.iter().map(|&x| x * x).collect();
        let total_inertia: f64 = inertia_all.iter().sum();
        let rank = svd.rank();
        let k = match dims {
            CaDims::Count(k) => k.clamp(1, rank.max(1)).min(rank),
            CaDims::InertiaFraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "inertia fraction outside (0,1]");
                let mut acc = 0.0;
                let mut k = 0;
                for &lam in &inertia_all {
                    acc += lam;
                    k += 1;
                    if total_inertia > 0.0 && acc / total_inertia >= f {
                        break;
                    }
                }
                k
            }
        };

        // Column standard coordinates Γ = D_c^{-1/2} V (kept dims).
        let mut gamma = Matrix::zeros(mk, k);
        for (jj, &j) in kept_cols.iter().enumerate() {
            for d in 0..k {
                gamma[(jj, d)] = svd.v[(jj, d)] / c[j].sqrt();
            }
        }

        // Row principal coordinates via transition: profile × Γ.
        let mut rows = Matrix::zeros(n, k);
        for i in 0..n {
            let mass: f64 = kept_cols.iter().map(|&j| table[(i, j)]).sum();
            if mass == 0.0 {
                continue; // empty row stays at the origin
            }
            for d in 0..k {
                let mut acc = 0.0;
                for (jj, &j) in kept_cols.iter().enumerate() {
                    acc += table[(i, j)] / mass * gamma[(jj, d)];
                }
                rows[(i, d)] = acc;
            }
        }

        CorrespondenceAnalysis {
            col_standard: gamma,
            kept_cols,
            row_principal: rows,
            inertia: inertia_all.into_iter().take(k).collect(),
            n_cols: m,
        }
    }

    /// Number of retained dimensions.
    pub fn dims(&self) -> usize {
        self.col_standard.cols()
    }

    /// Principal inertia per retained dimension.
    pub fn inertia(&self) -> &[f64] {
        &self.inertia
    }

    /// Principal coordinates of active row `i`.
    pub fn row_coords(&self, i: usize) -> &[f64] {
        self.row_principal.row(i)
    }

    /// Number of active rows.
    pub fn n_rows(&self) -> usize {
        self.row_principal.rows()
    }

    /// Projects a *supplementary* row (a count/indicator vector over
    /// the original columns) into the principal space without
    /// refitting. Rows with no mass on the kept columns map to the
    /// origin.
    pub fn project_row(&self, counts: &[f64]) -> Vec<f64> {
        assert_eq!(counts.len(), self.n_cols, "column count mismatch");
        let mass: f64 = self.kept_cols.iter().map(|&j| counts[j]).sum();
        let k = self.dims();
        if mass <= 0.0 {
            return vec![0.0; k];
        }
        (0..k)
            .map(|d| {
                self.kept_cols
                    .iter()
                    .enumerate()
                    .map(|(jj, &j)| counts[j] / mass * self.col_standard[(jj, d)])
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::distance;

    /// A table with two obvious row blocks: rows 0-2 load on columns
    /// 0-1, rows 3-5 on columns 2-3.
    fn blocked_table() -> Matrix {
        Matrix::from_rows(&[
            vec![5.0, 4.0, 0.0, 1.0],
            vec![4.0, 5.0, 1.0, 0.0],
            vec![5.0, 5.0, 0.0, 0.0],
            vec![0.0, 1.0, 5.0, 4.0],
            vec![1.0, 0.0, 4.0, 5.0],
            vec![0.0, 0.0, 5.0, 5.0],
        ])
    }

    #[test]
    fn blocks_separate_in_first_dimension() {
        let ca = CorrespondenceAnalysis::fit(&blocked_table(), CaDims::Count(1));
        let first: Vec<f64> = (0..6).map(|i| ca.row_coords(i)[0]).collect();
        // Rows in the same block share a sign; blocks have opposite signs.
        assert!(first[0] * first[1] > 0.0);
        assert!(first[0] * first[2] > 0.0);
        assert!(first[3] * first[4] > 0.0);
        assert!(first[0] * first[3] < 0.0);
    }

    #[test]
    fn supplementary_projection_matches_active_twin() {
        // Projecting a row identical to an active row must land on it.
        let t = blocked_table();
        let ca = CorrespondenceAnalysis::fit(&t, CaDims::Count(2));
        let proj = ca.project_row(&[5.0, 4.0, 0.0, 1.0]);
        assert!(distance(&proj, ca.row_coords(0)) < 1e-9);
    }

    #[test]
    fn supplementary_lands_near_its_block() {
        let ca = CorrespondenceAnalysis::fit(&blocked_table(), CaDims::Count(2));
        let like_block_a = ca.project_row(&[1.0, 1.0, 0.0, 0.0]);
        let like_block_b = ca.project_row(&[0.0, 0.0, 1.0, 1.0]);
        let d_a0 = distance(&like_block_a, ca.row_coords(0));
        let d_a3 = distance(&like_block_a, ca.row_coords(3));
        assert!(d_a0 < d_a3);
        let d_b3 = distance(&like_block_b, ca.row_coords(3));
        let d_b0 = distance(&like_block_b, ca.row_coords(0));
        assert!(d_b3 < d_b0);
    }

    #[test]
    fn zero_columns_are_dropped_gracefully() {
        let t = Matrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![1.0, 0.0, 2.0],
            vec![3.0, 0.0, 0.0],
        ]);
        let ca = CorrespondenceAnalysis::fit(&t, CaDims::Count(2));
        assert!(ca.dims() >= 1);
        // Projection with mass only on the dropped column → origin.
        let proj = ca.project_row(&[0.0, 7.0, 0.0]);
        assert!(proj.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_rows_map_to_origin() {
        let t = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 0.0], vec![2.0, 1.0]]);
        let ca = CorrespondenceAnalysis::fit(&t, CaDims::Count(1));
        assert!(ca.row_coords(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn inertia_fraction_selects_dims() {
        let ca = CorrespondenceAnalysis::fit(&blocked_table(), CaDims::InertiaFraction(0.8));
        assert!(ca.dims() >= 1);
        let ca_all = CorrespondenceAnalysis::fit(&blocked_table(), CaDims::InertiaFraction(1.0));
        assert!(ca_all.dims() >= ca.dims());
    }

    #[test]
    fn independent_table_has_negligible_inertia() {
        // Rank-one P = rcᵀ (independent rows/cols) → residuals ≈ 0.
        let t = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![3.0, 6.0, 9.0],
        ]);
        let ca = CorrespondenceAnalysis::fit(&t, CaDims::Count(2));
        let total: f64 = ca.inertia().iter().sum();
        assert!(total < 1e-12, "inertia = {total}");
    }

    #[test]
    fn identity_table_has_maximal_structure() {
        // Perfect association: each row owns one column.
        let t = Matrix::identity(3);
        let ca = CorrespondenceAnalysis::fit(&t, CaDims::Count(2));
        // Rows are maximally spread: pairwise distances all equal and
        // strictly positive.
        let d01 = distance(ca.row_coords(0), ca.row_coords(1));
        let d02 = distance(ca.row_coords(0), ca.row_coords(2));
        assert!(d01 > 1.0);
        assert!((d01 - d02).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_entry_panics() {
        let t = Matrix::from_rows(&[vec![1.0, -1.0]]);
        CorrespondenceAnalysis::fit(&t, CaDims::Count(1));
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn empty_table_panics() {
        CorrespondenceAnalysis::fit(&Matrix::zeros(3, 3), CaDims::Count(1));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_projection_width_panics() {
        let ca = CorrespondenceAnalysis::fit(&blocked_table(), CaDims::Count(1));
        ca.project_row(&[1.0, 2.0]);
    }
}
