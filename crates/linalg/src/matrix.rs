//! Dense row-major `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a Vec.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Gram matrix `selfᵀ × self` (symmetric `cols × cols`), computed
    /// without materialising the transpose.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..self.cols {
                let ra = r[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g[(a, b)] += ra * r[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Elementwise maximum absolute difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Dot product of equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between points.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 3.0, 1.0],
            vec![4.0, 1.0, 0.0],
            vec![2.0, 2.0, 2.0],
        ]);
        let g1 = a.gram();
        let g2 = a.transpose().matmul(&a);
        assert!(g1.max_abs_diff(&g2) < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.frobenius(), 5.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn zero_sized_matrices_are_fine() {
        let a = Matrix::zeros(0, 3);
        assert_eq!(a.rows(), 0);
        let g = a.gram();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.frobenius(), 0.0);
    }
}
