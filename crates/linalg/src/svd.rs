//! Thin singular value decomposition: exact Gram path + randomized
//! subspace sketch.
//!
//! The **exact path** ([`Svd::exact_gram`]) goes through the symmetric
//! eigendecomposition of the Gram matrix `AᵀA` — `V` are its
//! eigenvectors, `σᵢ = √λᵢ`, and `uᵢ = A vᵢ / σᵢ`. Squaring the
//! condition number is harmless for this workspace: SCANN decomposes
//! standardised residuals of 0/1 vote tables whose singular values
//! live within a few orders of magnitude of each other. Singular
//! directions with `σ² ≤ tol·λmax` are truncated, which is exactly
//! what correspondence analysis wants (it discards the trivial
//! dimension anyway).
//!
//! The **randomized path** ([`Svd::randomized`]) is a power-iteration
//! subspace sketch (Halko–Martinsson–Tropp): project onto `A·Ω` for a
//! seeded random `Ω`, orthonormalize, refine with two power
//! iterations, and decompose the small projected matrix exactly. The
//! sketch width doubles until the tolerance cut actually truncates —
//! so the requested spectrum is never silently clipped — and falls
//! back to the exact engine when the sketch approaches the full
//! dimension.
//!
//! [`Svd::with_tolerance`] gates between them on `min(n, m)` alone
//! ([`SVD_EXACT_GATE`]): size is a property of the input, never of the
//! thread count, so a given matrix always takes the same path and
//! SCANN vote tables (≤ 24 indicator columns, far under the gate) get
//! the exact engine — byte-identical SCANN decisions by construction.
//! The sketch itself draws from a fixed-seed deterministic generator,
//! so the randomized path is also bit-reproducible across runs and
//! `MAWILAB_THREADS` settings.

use crate::eigen::SymmetricEigen;
use crate::matrix::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Matrices whose smaller dimension is at most this take the exact
/// Gram path in [`Svd::with_tolerance`]. A size-only cutover keeps
/// the engine choice thread-count invariant.
pub const SVD_EXACT_GATE: usize = 64;

/// Initial sketch width of the randomized path.
const SKETCH_START: usize = 32;

/// Power iterations refining the sketched subspace.
const POWER_ITERATIONS: usize = 2;

/// Fixed seed of the sketch generator — determinism is load-bearing.
const SKETCH_SEED: u64 = 0x4D41_5749_5356_4431;

/// Thin SVD `A = U Σ Vᵀ` with positive singular values only.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `n × r` (columns orthonormal).
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `m × r` (columns orthonormal).
    pub v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a` (any shape), keeping singular
    /// values above `√(rel_tol · λmax)`.
    pub fn new(a: &Matrix) -> Self {
        Self::with_tolerance(a, 1e-12)
    }

    /// Thin SVD with an explicit relative eigenvalue tolerance.
    ///
    /// Dispatches on size only: matrices with `min(n, m) ≤`
    /// [`SVD_EXACT_GATE`] take the exact Gram path, larger ones the
    /// randomized sketch. Both truncate at `σ² ≤ rel_tol·λmax`.
    pub fn with_tolerance(a: &Matrix, rel_tol: f64) -> Self {
        if a.rows().min(a.cols()) <= SVD_EXACT_GATE {
            Self::exact_gram(a, rel_tol)
        } else {
            Self::randomized(a, rel_tol)
        }
    }

    /// The seed engine (retained equivalence oracle): eigendecompose
    /// the Gram matrix `AᵀA` exactly.
    pub fn exact_gram(a: &Matrix, rel_tol: f64) -> Self {
        let (n, m) = (a.rows(), a.cols());
        if n == 0 || m == 0 {
            return Svd {
                u: Matrix::zeros(n, 0),
                sigma: vec![],
                v: Matrix::zeros(m, 0),
            };
        }
        let eig = SymmetricEigen::new(&a.gram());
        let lam_max = eig.values.first().copied().unwrap_or(0.0).max(0.0);
        let cutoff = rel_tol * lam_max;

        let mut sigma = Vec::new();
        let mut keep = Vec::new();
        for (j, &lam) in eig.values.iter().enumerate() {
            if lam > cutoff && lam > 0.0 {
                sigma.push(lam.sqrt());
                keep.push(j);
            }
        }
        let r = keep.len();
        let mut v = Matrix::zeros(m, r);
        for (newj, &oldj) in keep.iter().enumerate() {
            for i in 0..m {
                v[(i, newj)] = eig.vectors[(i, oldj)];
            }
        }
        // U = A V Σ⁻¹
        let av = a.matmul(&v);
        let mut u = Matrix::zeros(n, r);
        for j in 0..r {
            for i in 0..n {
                u[(i, j)] = av[(i, j)] / sigma[j];
            }
        }
        Svd { u, sigma, v }
    }

    /// Randomized thin SVD: power-iteration subspace sketch with a
    /// fixed deterministic seed.
    ///
    /// The sketch width starts at [`SKETCH_START`] and doubles while
    /// the tolerance cut retains every sketched direction (meaning
    /// genuine spectrum may extend past the sketch). Once the width
    /// would reach the smaller matrix dimension, the exact engine
    /// takes over — at that point the sketch has no advantage left.
    pub fn randomized(a: &Matrix, rel_tol: f64) -> Self {
        // Work with the thin orientation (cols ≤ rows); the SVD of Aᵀ
        // is the SVD of A with the factors swapped.
        if a.cols() > a.rows() {
            let t = Self::randomized(&a.transpose(), rel_tol);
            return Svd {
                u: t.v,
                sigma: t.sigma,
                v: t.u,
            };
        }
        let m = a.cols();
        let mut width = SKETCH_START.min(m);
        loop {
            if width >= m {
                return Self::exact_gram(a, rel_tol);
            }
            let svd = Self::sketched(a, width, rel_tol);
            if svd.rank() < width {
                return svd;
            }
            width = (width * 2).min(m);
        }
    }

    /// One fixed-width sketch round: `Q = orth((A Aᵀ)^q A Ω)`, then an
    /// exact decomposition of the small projection `B = QᵀA`.
    fn sketched(a: &Matrix, width: usize, rel_tol: f64) -> Svd {
        let m = a.cols();
        // Re-seeding per width keeps every round self-contained: the
        // result depends only on (a, width), never on call history.
        let mut rng = StdRng::seed_from_u64(SKETCH_SEED ^ width as u64);
        let mut omega = Matrix::zeros(m, width);
        for i in 0..m {
            for j in 0..width {
                omega[(i, j)] = 2.0 * rng.random::<f64>() - 1.0;
            }
        }
        let at = a.transpose();
        let mut y = a.matmul(&omega); // n × width
        orthonormalize_columns(&mut y);
        for _ in 0..POWER_ITERATIONS {
            let mut z = at.matmul(&y); // m × width
            orthonormalize_columns(&mut z);
            y = a.matmul(&z);
            orthonormalize_columns(&mut y);
        }
        let q = y;
        // B = QᵀA is width × m. Exact SVD of B through its thin side:
        // gram(Bᵀ) is only width × width, and
        // Bᵀ = U₂ Σ V₂ᵀ ⇒ A ≈ Q B = (Q V₂) Σ U₂ᵀ.
        let b = q.transpose().matmul(a);
        let inner = Self::exact_gram(&b.transpose(), rel_tol);
        Svd {
            u: q.matmul(&inner.v),
            sigma: inner.sigma,
            v: inner.u,
        }
    }

    /// Numerical rank (number of retained singular values).
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.rank();
        let mut us = self.u.clone();
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.matmul(&self.v.transpose())
    }
}

/// In-place modified Gram-Schmidt over the columns, with
/// reorthogonalization ("twice is enough") so orthogonality survives
/// rank-deficient sketches. A column whose residual collapses below a
/// relative threshold carries no new direction — normalizing it would
/// inject an arbitrary near-duplicate basis vector and inflate the
/// projected spectrum — so it is zeroed instead; the tolerance cut of
/// the subsequent exact decomposition discards those directions.
fn orthonormalize_columns(y: &mut Matrix) {
    let (n, l) = (y.rows(), y.cols());
    let mut scale = 0.0_f64;
    for j in 0..l {
        let orig: f64 = (0..n).map(|i| y[(i, j)] * y[(i, j)]).sum::<f64>().sqrt();
        scale = scale.max(orig);
        for _pass in 0..2 {
            for k in 0..j {
                let mut d = 0.0;
                for i in 0..n {
                    d += y[(i, k)] * y[(i, j)];
                }
                if d != 0.0 {
                    for i in 0..n {
                        y[(i, j)] -= d * y[(i, k)];
                    }
                }
            }
        }
        let norm: f64 = (0..n).map(|i| y[(i, j)] * y[(i, j)]).sum::<f64>().sqrt();
        if norm > 1e-12 * scale.max(f64::MIN_POSITIVE) {
            let inv = 1.0 / norm;
            for i in 0..n {
                y[(i, j)] *= inv;
            }
        } else {
            for i in 0..n {
                y[(i, j)] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn reconstructs_full_rank_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 3.0], vec![1.0, 1.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(), 2);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 2.0]]);
        let svd = Svd::new(&a);
        assert!((svd.sigma[0] - 4.0).abs() < 1e-10);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn rank_one_matrix_truncates() {
        // Outer product of [1,2,3] and [1,1]: rank 1.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(), 1);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
        // σ₁ = ‖u‖‖v‖ = √14·√2
        assert!((svd.sigma[0] - (28.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 1.0],
        ]);
        let svd = Svd::new(&a);
        for i in 0..svd.rank() {
            for j in 0..svd.rank() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&svd.u.col(i), &svd.u.col(j)) - expect).abs() < 1e-9);
                assert!((dot(&svd.v.col(i), &svd.v.col(j)) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sigma_is_descending_and_positive() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![0.0, 3.0, 0.5],
            vec![1.0, 0.5, 1.0],
            vec![0.1, 0.2, 0.3],
        ]);
        let svd = Svd::new(&a);
        assert!(svd.sigma.iter().all(|&s| s > 0.0));
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn wide_matrix_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(), 2);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let svd = Svd::new(&Matrix::zeros(3, 2));
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let svd = Svd::new(&Matrix::zeros(0, 0));
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn frobenius_norm_equals_sigma_norm() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let svd = Svd::new(&a);
        let sig_norm: f64 = svd.sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((sig_norm - a.frobenius()).abs() < 1e-9);
    }

    /// Deterministic pseudo-random matrix of rank ≤ `rank`.
    fn low_rank(n: usize, m: usize, rank: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut left = Matrix::zeros(n, rank);
        let mut right = Matrix::zeros(rank, m);
        for i in 0..n {
            for j in 0..rank {
                left[(i, j)] = next();
            }
        }
        for i in 0..rank {
            for j in 0..m {
                right[(i, j)] = next();
            }
        }
        left.matmul(&right)
    }

    #[test]
    fn gate_keeps_small_matrices_bitwise_on_the_exact_path() {
        // SCANN vote tables have ≤ 24 indicator columns — far below
        // the gate — so `with_tolerance` must hand back the exact
        // engine's output bit for bit (decisions identical by
        // construction).
        for (n, m) in [(5, 3), (200, 24), (SVD_EXACT_GATE, SVD_EXACT_GATE)] {
            let a = low_rank(n, m, n.min(m), 7);
            let gated = Svd::with_tolerance(&a, 1e-12);
            let exact = Svd::exact_gram(&a, 1e-12);
            assert_eq!(gated.sigma, exact.sigma, "{n}x{m} sigma");
            assert_eq!(gated.u.max_abs_diff(&exact.u), 0.0, "{n}x{m} u");
            assert_eq!(gated.v.max_abs_diff(&exact.v), 0.0, "{n}x{m} v");
        }
    }

    #[test]
    fn randomized_matches_exact_on_low_rank_matrices() {
        for (n, m, r) in [(150, 100, 10), (100, 150, 7), (96, 80, 1)] {
            let a = low_rank(n, m, r, 42 + r as u64);
            let fast = Svd::randomized(&a, 1e-12);
            let exact = Svd::exact_gram(&a, 1e-12);
            assert_eq!(fast.rank(), exact.rank(), "{n}x{m} rank {r}");
            for (s_fast, s_exact) in fast.sigma.iter().zip(&exact.sigma) {
                assert!(
                    (s_fast - s_exact).abs() <= 1e-8 * exact.sigma[0],
                    "{n}x{m} rank {r}: sigma {s_fast} vs {s_exact}"
                );
            }
            assert!(
                fast.reconstruct().max_abs_diff(&a) < 1e-8,
                "{n}x{m} rank {r}: reconstruction"
            );
        }
    }

    #[test]
    fn randomized_grows_the_sketch_past_the_initial_width() {
        // Rank 45 exceeds SKETCH_START=32: the first round retains all
        // 32 directions, forcing a doubling before the cut truncates.
        let a = low_rank(150, 100, 45, 5);
        let fast = Svd::randomized(&a, 1e-12);
        assert_eq!(fast.rank(), 45);
        assert!(fast.reconstruct().max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn randomized_is_deterministic() {
        let a = low_rank(120, 90, 12, 99);
        let x = Svd::randomized(&a, 1e-12);
        let y = Svd::randomized(&a, 1e-12);
        assert_eq!(x.sigma, y.sigma);
        assert_eq!(x.u.max_abs_diff(&y.u), 0.0);
        assert_eq!(x.v.max_abs_diff(&y.v), 0.0);
    }

    #[test]
    fn randomized_vectors_are_orthonormal() {
        let a = low_rank(130, 70, 9, 3);
        let svd = Svd::randomized(&a, 1e-12);
        for i in 0..svd.rank() {
            for j in 0..svd.rank() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&svd.u.col(i), &svd.u.col(j)) - expect).abs() < 1e-8);
                assert!((dot(&svd.v.col(i), &svd.v.col(j)) - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn randomized_near_full_rank_falls_back_to_exact() {
        // Rank ≈ min dim: every doubling retains the full sketch, so
        // the loop must land on the exact engine and return its result.
        let a = low_rank(80, 70, 70, 11);
        let fast = Svd::randomized(&a, 1e-12);
        let exact = Svd::exact_gram(&a, 1e-12);
        assert_eq!(fast.sigma, exact.sigma);
        assert_eq!(fast.u.max_abs_diff(&exact.u), 0.0);
    }
}
