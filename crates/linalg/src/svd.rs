//! Thin singular value decomposition.
//!
//! Computed via the symmetric eigendecomposition of the Gram matrix
//! `AᵀA` — `V` are its eigenvectors, `σᵢ = √λᵢ`, and `uᵢ = A vᵢ / σᵢ`.
//! Squaring the condition number is harmless for this workspace: SCANN
//! decomposes standardised residuals of 0/1 vote tables whose singular
//! values live within a few orders of magnitude of each other.
//! Singular directions with `σ² ≤ tol·λmax` are truncated, which is
//! exactly what correspondence analysis wants (it discards the trivial
//! dimension anyway).

use crate::eigen::SymmetricEigen;
use crate::matrix::Matrix;

/// Thin SVD `A = U Σ Vᵀ` with positive singular values only.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `n × r` (columns orthonormal).
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `m × r` (columns orthonormal).
    pub v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a` (any shape), keeping singular
    /// values above `√(rel_tol · λmax)`.
    pub fn new(a: &Matrix) -> Self {
        Self::with_tolerance(a, 1e-12)
    }

    /// Thin SVD with an explicit relative eigenvalue tolerance.
    pub fn with_tolerance(a: &Matrix, rel_tol: f64) -> Self {
        let (n, m) = (a.rows(), a.cols());
        if n == 0 || m == 0 {
            return Svd {
                u: Matrix::zeros(n, 0),
                sigma: vec![],
                v: Matrix::zeros(m, 0),
            };
        }
        let eig = SymmetricEigen::new(&a.gram());
        let lam_max = eig.values.first().copied().unwrap_or(0.0).max(0.0);
        let cutoff = rel_tol * lam_max;

        let mut sigma = Vec::new();
        let mut keep = Vec::new();
        for (j, &lam) in eig.values.iter().enumerate() {
            if lam > cutoff && lam > 0.0 {
                sigma.push(lam.sqrt());
                keep.push(j);
            }
        }
        let r = keep.len();
        let mut v = Matrix::zeros(m, r);
        for (newj, &oldj) in keep.iter().enumerate() {
            for i in 0..m {
                v[(i, newj)] = eig.vectors[(i, oldj)];
            }
        }
        // U = A V Σ⁻¹
        let av = a.matmul(&v);
        let mut u = Matrix::zeros(n, r);
        for j in 0..r {
            for i in 0..n {
                u[(i, j)] = av[(i, j)] / sigma[j];
            }
        }
        Svd { u, sigma, v }
    }

    /// Numerical rank (number of retained singular values).
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.rank();
        let mut us = self.u.clone();
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.matmul(&self.v.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn reconstructs_full_rank_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 3.0], vec![1.0, 1.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(), 2);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 2.0]]);
        let svd = Svd::new(&a);
        assert!((svd.sigma[0] - 4.0).abs() < 1e-10);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn rank_one_matrix_truncates() {
        // Outer product of [1,2,3] and [1,1]: rank 1.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(), 1);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
        // σ₁ = ‖u‖‖v‖ = √14·√2
        assert!((svd.sigma[0] - (28.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 1.0],
        ]);
        let svd = Svd::new(&a);
        for i in 0..svd.rank() {
            for j in 0..svd.rank() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&svd.u.col(i), &svd.u.col(j)) - expect).abs() < 1e-9);
                assert!((dot(&svd.v.col(i), &svd.v.col(j)) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sigma_is_descending_and_positive() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![0.0, 3.0, 0.5],
            vec![1.0, 0.5, 1.0],
            vec![0.1, 0.2, 0.3],
        ]);
        let svd = Svd::new(&a);
        assert!(svd.sigma.iter().all(|&s| s > 0.0));
        assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn wide_matrix_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(), 2);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let svd = Svd::new(&Matrix::zeros(3, 2));
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let svd = Svd::new(&Matrix::zeros(0, 0));
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn frobenius_norm_equals_sigma_norm() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let svd = Svd::new(&a);
        let sig_norm: f64 = svd.sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((sig_norm - a.frobenius()).abs() < 1e-9);
    }
}
