//! Weighted undirected graph with adjacency lists.

/// Weighted undirected graph over nodes `0..n`.
///
/// Parallel edges are merged by summing weights; self-loops are
/// allowed and stored once. Edge weights must be positive (similarity
/// measures are in `(0, 1]`).
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<(u32, f64)>>,
    self_loops: Vec<f64>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            self_loops: vec![0.0; n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct edges (self-loops included).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds (or accumulates onto) the undirected edge `u—v` with
    /// weight `w > 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        assert!(w > 0.0 && w.is_finite(), "edge weight must be positive");
        if u == v {
            if self.self_loops[u] == 0.0 {
                self.edge_count += 1;
            }
            self.self_loops[u] += w;
            return;
        }
        match self.adj[u].iter_mut().find(|(n, _)| *n as usize == v) {
            Some((_, weight)) => {
                *weight += w;
                let back = self.adj[v]
                    .iter_mut()
                    .find(|(n, _)| *n as usize == u)
                    .expect("asymmetric adjacency"); // lint:allow(panic-free-data-plane): add_edge inserted the reverse entry in this same call
                back.1 += w;
            }
            None => {
                self.adj[u].push((v as u32, w));
                self.adj[v].push((u as u32, w));
                self.edge_count += 1;
            }
        }
    }

    /// Neighbours of `u` (excluding any self-loop) with edge weights.
    pub fn neighbors(&self, u: usize) -> &[(u32, f64)] {
        &self.adj[u]
    }

    /// Self-loop weight of `u` (0 when absent).
    pub fn self_loop(&self, u: usize) -> f64 {
        self.self_loops[u]
    }

    /// Weighted degree: Σ incident edge weights, self-loops counted
    /// twice (the standard modularity convention).
    pub fn degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|(_, w)| w).sum::<f64>() + 2.0 * self.self_loops[u]
    }

    /// Total edge weight `m` (each edge once, self-loops once).
    pub fn total_weight(&self) -> f64 {
        let half: f64 = self
            .adj
            .iter()
            .flat_map(|l| l.iter().map(|(_, w)| w))
            .sum::<f64>()
            / 2.0;
        half + self.self_loops.iter().sum::<f64>()
    }

    /// True when `u` has no incident edges at all.
    pub fn is_isolated(&self, u: usize) -> bool {
        self.adj[u].is_empty() && self.self_loops[u] == 0.0
    }

    /// Number of isolated nodes.
    pub fn isolated_count(&self) -> usize {
        (0..self.node_count())
            .filter(|&u| self.is_isolated(u))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_is_symmetric() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 0.5);
        assert_eq!(g.neighbors(0), &[(1, 0.5)]);
        assert_eq!(g.neighbors(1), &[(0, 0.5)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 0.3);
        g.add_edge(1, 0, 0.2);
        assert_eq!(g.edge_count(), 1);
        assert!((g.neighbors(0)[0].1 - 0.5).abs() < 1e-12);
        assert!((g.neighbors(1)[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.5);
        g.add_edge(0, 1, 1.0);
        assert_eq!(g.degree(0), 4.0);
        assert_eq!(g.degree(1), 1.0);
        assert_eq!(g.self_loop(0), 1.5);
    }

    #[test]
    fn total_weight_counts_each_edge_once() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 2, 0.5);
        assert!((g.total_weight() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn sum_degrees_is_twice_total_weight() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 0.7);
        g.add_edge(1, 2, 0.9);
        g.add_edge(3, 3, 0.4);
        let deg_sum: f64 = (0..4).map(|u| g.degree(u)).sum();
        assert!((deg_sum - 2.0 * g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_are_reported() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        assert_eq!(g.isolated_count(), 3);
        assert!(g.is_isolated(4));
        assert!(!g.is_isolated(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::new(2).add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_weight_panics() {
        Graph::new(2).add_edge(0, 1, 0.0);
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }
}
