//! Connected components of an undirected graph.
//!
//! Used as the degenerate-case baseline for community mining (a
//! community can never span two components) and by tests validating
//! Louvain output.

use crate::graph::Graph;
use crate::louvain::Partition;

/// Computes connected components via iterative DFS; returns a
/// [`Partition`] with one community per component, numbered by first
/// appearance.
pub fn connected_components(g: &Graph) -> Partition {
    let n = g.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &(u, _) in g.neighbors(v) {
                let u = u as usize;
                if labels[u] == usize::MAX {
                    labels[u] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    // Labels are already dense and first-appearance ordered.
    Partition {
        community: labels,
        count: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::louvain::louvain;

    #[test]
    fn splits_disconnected_parts() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(4, 5, 1.0);
        let p = connected_components(&g);
        assert_eq!(p.community_count(), 3); // {0,1,2}, {3}, {4,5}
        assert_eq!(p.of(0), p.of(2));
        assert_ne!(p.of(0), p.of(3));
        assert_ne!(p.of(3), p.of(4));
    }

    #[test]
    fn fully_connected_is_one_component() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j, 1.0);
            }
        }
        assert_eq!(connected_components(&g).community_count(), 1);
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert_eq!(connected_components(&Graph::new(0)).community_count(), 0);
    }

    #[test]
    fn all_isolated_gives_n_components() {
        assert_eq!(connected_components(&Graph::new(7)).community_count(), 7);
    }

    #[test]
    fn self_loop_does_not_merge_anything() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.0);
        assert_eq!(connected_components(&g).community_count(), 2);
    }

    #[test]
    fn louvain_refines_components() {
        // Every Louvain community must fall within one component.
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(4, 5, 1.0);
        g.add_edge(5, 6, 1.0);
        let comps = connected_components(&g);
        let comms = louvain(&g, 1.0);
        for v in 0..8 {
            for u in 0..8 {
                if comms.of(v) == comms.of(u) {
                    assert_eq!(comps.of(v), comps.of(u), "community crosses components");
                }
            }
        }
    }
}
