//! # mawilab-graph
//!
//! Weighted undirected graphs and community mining.
//!
//! The similarity estimator (paper §2.1) turns alarms into nodes of an
//! undirected *similarity graph* whose weighted edges encode traffic
//! overlap, then clusters equivalent alarms by finding communities.
//! The paper selects the Louvain modularity-optimisation algorithm
//! (Blondel et al. 2008) because it works locally — small groups of a
//! few alarms are still found — and is fast on sparse graphs with many
//! isolated nodes.
//!
//! * [`graph`] — [`Graph`]: adjacency-list weighted undirected graph
//!   with parallel-edge merging.
//! * [`louvain`] — the Louvain method plus modularity computation.
//! * [`components`] — connected components (used in tests and as a
//!   degenerate-case baseline).

pub mod components;
pub mod graph;
pub mod louvain;

pub use components::connected_components;
pub use graph::Graph;
pub use louvain::{louvain, modularity, Partition};
