//! # mawilab-graph
//!
//! Weighted undirected graphs and community mining.
//!
//! The similarity estimator (paper §2.1) turns alarms into nodes of an
//! undirected *similarity graph* whose weighted edges encode traffic
//! overlap, then clusters equivalent alarms by finding communities.
//! The paper selects the Louvain modularity-optimisation algorithm
//! (Blondel et al. 2008) because it works locally — small groups of a
//! few alarms are still found — and is fast on sparse graphs with many
//! isolated nodes.
//!
//! * [`graph`] — [`Graph`]: adjacency-list weighted undirected graph
//!   with parallel-edge merging.
//! * [`csr`] — [`CsrGraph`]: the flat compressed-sparse-row form the
//!   Louvain engine runs on.
//! * [`louvain`] — the Louvain method plus modularity computation;
//!   large graphs use a deterministic parallel propose-then-apply
//!   sweep (see [`louvain::PARALLEL_SWEEP_MIN_NODES`]).
//! * [`components`] — connected components (used in tests and as a
//!   degenerate-case baseline).

#![forbid(unsafe_code)]

pub mod components;
pub mod csr;
pub mod graph;
pub mod louvain;

pub use components::connected_components;
pub use csr::CsrGraph;
pub use graph::Graph;
pub use louvain::{
    louvain, louvain_csr, louvain_csr_seeded, louvain_seeded, modularity, Partition,
};
