//! The Louvain community-detection method (Blondel et al. 2008).
//!
//! The paper (§2.1.3) selects Louvain because it identifies
//! communities *locally* — groups of just a few alarms are found even
//! in graphs dominated by disconnected false-positive nodes — and
//! because it is fast and accurate on sparse graphs.
//!
//! The implementation is the classic two-phase loop: (1) greedy local
//! moving, scanning nodes in deterministic order and relocating each
//! to the neighbouring community with maximal modularity gain;
//! (2) aggregation of communities into super-nodes; repeat until no
//! move improves modularity. Determinism matters here — the whole
//! MAWILab pipeline must label a trace identically on every run.

use crate::graph::Graph;

/// A partition of graph nodes into communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `community[v]` = community id of node `v`. Ids are dense
    /// (`0..community_count`), ordered by first appearance.
    pub community: Vec<usize>,
    pub(crate) count: usize,
}

impl Partition {
    /// Builds a partition from arbitrary (possibly sparse) labels,
    /// renumbering them to dense ids in order of first appearance.
    /// Labels must be `< labels.len()`.
    pub fn from_labels(mut labels: Vec<usize>) -> Self {
        // Renumber to dense ids in order of first appearance.
        let mut remap: Vec<Option<usize>> = vec![None; labels.len().max(1)];
        let mut next = 0;
        for l in &mut labels {
            let slot = remap.get_mut(*l).expect("label out of range");
            match slot {
                Some(id) => *l = *id,
                None => {
                    *slot = Some(next);
                    *l = next;
                    next += 1;
                }
            }
        }
        Partition { community: labels, count: next }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.count
    }

    /// Community id of node `v`.
    pub fn of(&self, v: usize) -> usize {
        self.community[v]
    }

    /// Members of every community, indexed by community id.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.community.iter().enumerate() {
            out[c].push(v);
        }
        out
    }

    /// Sizes of communities, indexed by community id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0; self.count];
        for &c in &self.community {
            out[c] += 1;
        }
        out
    }
}

/// Modularity `Q` of a partition:
/// `Q = Σ_c [ Σ_in(c)/(2m) − (Σ_tot(c)/(2m))² ]`.
///
/// Returns 0 for graphs without edges (the convention that keeps the
/// similarity estimator well defined on all-singleton days).
pub fn modularity(g: &Graph, p: &Partition) -> f64 {
    assert_eq!(p.community.len(), g.node_count(), "partition size mismatch");
    let two_m = 2.0 * g.total_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let nc = p.community_count();
    let mut sigma_in = vec![0.0; nc]; // 2× intra-community weight
    let mut sigma_tot = vec![0.0; nc];
    for v in 0..g.node_count() {
        let cv = p.of(v);
        sigma_tot[cv] += g.degree(v);
        sigma_in[cv] += 2.0 * g.self_loop(v);
        for &(u, w) in g.neighbors(v) {
            if p.of(u as usize) == cv {
                sigma_in[cv] += w; // each intra edge visited twice
            }
        }
    }
    (0..nc)
        .map(|c| sigma_in[c] / two_m - (sigma_tot[c] / two_m).powi(2))
        .sum()
}

/// Runs Louvain to convergence and returns the final partition on the
/// original nodes.
///
/// `resolution` scales the null-model term of the gain (1.0 =
/// classical modularity; the paper uses the classical setting).
pub fn louvain(g: &Graph, resolution: f64) -> Partition {
    assert!(resolution > 0.0, "resolution must be positive");
    let n = g.node_count();
    if n == 0 {
        return Partition { community: vec![], count: 0 };
    }
    // node → community on the *original* graph, refined level by level.
    let mut assignment: Vec<usize> = (0..n).collect();
    let mut level_graph = g.clone();

    loop {
        let (labels, improved) = one_level(&level_graph, resolution);
        if !improved {
            break;
        }
        let level_part = Partition::from_labels(labels);
        // Propagate: original node → its community at this level.
        for a in assignment.iter_mut() {
            *a = level_part.of(*a);
        }
        if level_part.community_count() == level_graph.node_count() {
            break; // aggregation would be a no-op
        }
        level_graph = aggregate(&level_graph, &level_part);
    }
    Partition::from_labels(assignment)
}

/// One round of greedy local moving. Returns the label vector and
/// whether any node moved.
fn one_level(g: &Graph, resolution: f64) -> (Vec<usize>, bool) {
    let n = g.node_count();
    let two_m = 2.0 * g.total_weight();
    let mut labels: Vec<usize> = (0..n).collect();
    if two_m == 0.0 {
        return (labels, false);
    }
    let degrees: Vec<f64> = (0..n).map(|v| g.degree(v)).collect();
    let mut sigma_tot: Vec<f64> = degrees.clone();
    let mut improved_any = false;

    // Scratch: community id → accumulated edge weight from the node
    // being scanned (reset lazily via a generation stamp).
    let mut weight_to = vec![0.0f64; n];
    let mut stamp = vec![0u32; n];
    let mut generation = 0u32;

    loop {
        let mut moved = false;
        for v in 0..n {
            let cv = labels[v];
            generation += 1;
            // Gather neighbour-community weights.
            let mut candidates: Vec<usize> = Vec::new();
            for &(u, w) in g.neighbors(v) {
                let cu = labels[u as usize];
                if stamp[cu] != generation {
                    stamp[cu] = generation;
                    weight_to[cu] = 0.0;
                    candidates.push(cu);
                }
                weight_to[cu] += w;
            }
            // Remove v from its community.
            sigma_tot[cv] -= degrees[v];
            let w_own = if stamp[cv] == generation { weight_to[cv] } else { 0.0 };
            let base_gain = w_own - resolution * sigma_tot[cv] * degrees[v] / two_m;

            // Best neighbouring community (ties keep the lowest id so
            // results are order-independent of HashMap iteration).
            let mut best_c = cv;
            let mut best_gain = base_gain;
            candidates.sort_unstable();
            for &c in &candidates {
                if c == cv {
                    continue;
                }
                let gain = weight_to[c] - resolution * sigma_tot[c] * degrees[v] / two_m;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            sigma_tot[best_c] += degrees[v];
            if best_c != cv {
                labels[v] = best_c;
                moved = true;
                improved_any = true;
            }
        }
        if !moved {
            break;
        }
    }
    (labels, improved_any)
}

/// Builds the aggregated graph: one node per community, inter-community
/// weights summed, intra-community weight folded into self-loops.
fn aggregate(g: &Graph, p: &Partition) -> Graph {
    let nc = p.community_count();
    let mut agg = Graph::new(nc);
    // Self-loops: intra-community edge weight + old self-loops.
    let mut intra = vec![0.0f64; nc];
    let mut inter: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for v in 0..g.node_count() {
        let cv = p.of(v);
        intra[cv] += g.self_loop(v);
        for &(u, w) in g.neighbors(v) {
            let cu = p.of(u as usize);
            if cu == cv {
                if (u as usize) > v {
                    intra[cv] += w;
                }
            } else if (u as usize) > v {
                let key = (cv.min(cu), cv.max(cu));
                *inter.entry(key).or_insert(0.0) += w;
            }
        }
    }
    for (c, &w) in intra.iter().enumerate() {
        if w > 0.0 {
            agg.add_edge(c, c, w);
        }
    }
    for ((a, b), w) in inter {
        agg.add_edge(a, b, w);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense triangles joined by one weak edge.
    fn two_triangles() -> Graph {
        let mut g = Graph::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 1.0);
        }
        g.add_edge(2, 3, 0.1);
        g
    }

    #[test]
    fn separates_two_triangles() {
        let g = two_triangles();
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.of(0), p.of(1));
        assert_eq!(p.of(1), p.of(2));
        assert_eq!(p.of(3), p.of(4));
        assert_ne!(p.of(0), p.of(3));
    }

    #[test]
    fn modularity_of_good_partition_beats_trivial() {
        let g = two_triangles();
        let good = louvain(&g, 1.0);
        let trivial = Partition::from_labels(vec![0; 6]);
        let singletons = Partition::from_labels((0..6).collect());
        assert!(modularity(&g, &good) > modularity(&g, &trivial));
        assert!(modularity(&g, &good) > modularity(&g, &singletons));
    }

    #[test]
    fn isolated_nodes_stay_singleton() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        // Nodes 2, 3, 4 isolated (false-positive alarms in the paper).
        let p = louvain(&g, 1.0);
        assert_eq!(p.of(0), p.of(1));
        let c2 = p.of(2);
        let c3 = p.of(3);
        let c4 = p.of(4);
        assert_ne!(c2, c3);
        assert_ne!(c3, c4);
        assert_eq!(p.community_count(), 4);
    }

    #[test]
    fn edgeless_graph_is_all_singletons_with_zero_modularity() {
        let g = Graph::new(4);
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), 4);
        assert_eq!(modularity(&g, &p), 0.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::new(0);
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_triangles();
        let p1 = louvain(&g, 1.0);
        let p2 = louvain(&g, 1.0);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ring_of_cliques_finds_each_clique() {
        // Four 4-cliques in a ring, the standard Louvain sanity graph.
        let k = 4;
        let cliques = 4;
        let mut g = Graph::new(k * cliques);
        for c in 0..cliques {
            for i in 0..k {
                for j in (i + 1)..k {
                    g.add_edge(c * k + i, c * k + j, 1.0);
                }
            }
        }
        for c in 0..cliques {
            let next = (c + 1) % cliques;
            g.add_edge(c * k, next * k + 1, 0.2);
        }
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), cliques);
        for c in 0..cliques {
            for i in 1..k {
                assert_eq!(p.of(c * k), p.of(c * k + i), "clique {c} split");
            }
        }
    }

    #[test]
    fn weights_drive_membership() {
        // Node 2 connects to both sides; heavier edge wins.
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(1, 2, 0.9);
        g.add_edge(2, 3, 0.1);
        let p = louvain(&g, 1.0);
        assert_eq!(p.of(2), p.of(1));
        assert_ne!(p.of(2), p.of(3));
    }

    #[test]
    fn modularity_matches_hand_computation() {
        // Single edge graph, both nodes together: Q = 1/2... compute:
        // m = 1, degrees = 1,1. Q = Σ_in/(2m) − (Σ_tot/(2m))²
        //   = 2/2 − (2/2)² = 1 − 1 = 0 for the merged partition;
        // singletons: each c has Σ_in=0, Σ_tot=1 → Q = −2·(1/2)² = −0.5.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        let merged = Partition::from_labels(vec![0, 0]);
        let single = Partition::from_labels(vec![0, 1]);
        assert!((modularity(&g, &merged) - 0.0).abs() < 1e-12);
        assert!((modularity(&g, &single) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn louvain_never_decreases_vs_singletons() {
        // Pseudo-random sparse graph; Louvain must beat or match the
        // all-singleton baseline.
        let n = 60;
        let mut g = Graph::new(n);
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..120 {
            let a = next() % n;
            let b = next() % n;
            if a != b {
                g.add_edge(a, b, ((next() % 9) + 1) as f64 / 10.0);
            }
        }
        let p = louvain(&g, 1.0);
        let singles = Partition::from_labels((0..n).collect());
        assert!(modularity(&g, &p) >= modularity(&g, &singles) - 1e-12);
    }

    #[test]
    fn partition_members_and_sizes_agree() {
        let g = two_triangles();
        let p = louvain(&g, 1.0);
        let members = p.members();
        let sizes = p.sizes();
        assert_eq!(members.len(), sizes.len());
        for (c, m) in members.iter().enumerate() {
            assert_eq!(m.len(), sizes[c]);
            for &v in m {
                assert_eq!(p.of(v), c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        louvain(&Graph::new(1), 0.0);
    }
}
