//! The Louvain community-detection method (Blondel et al. 2008).
//!
//! The paper (§2.1.3) selects Louvain because it identifies
//! communities *locally* — groups of just a few alarms are found even
//! in graphs dominated by disconnected false-positive nodes — and
//! because it is fast and accurate on sparse graphs.
//!
//! The implementation is the classic two-phase loop: (1) greedy local
//! moving, scanning nodes in deterministic order and relocating each
//! to the neighbouring community with maximal modularity gain;
//! (2) aggregation of communities into super-nodes; repeat until no
//! move improves modularity. Determinism matters here — the whole
//! MAWILab pipeline must label a trace identically on every run.
//!
//! All levels run on the [`CsrGraph`] form: sweeps walk flat arrays
//! instead of per-node heap allocations, and aggregation bulk-builds
//! the next level from a sorted edge list. Small graphs use the exact
//! sequential greedy sweep; at [`PARALLEL_SWEEP_MIN_NODES`] nodes and
//! above, the local-moving phase runs one sequential gossip sweep and
//! then pruned **propose-then-apply** refinement rounds whose
//! modularity-gain scans fan out over [`mawilab_exec::par_map`]:
//! proposals are computed against a frozen snapshot (embarrassingly
//! parallel, thread-count invariant), then applied one by one in node
//! order, each move revalidated against the live state so every
//! applied move still strictly increases modularity. Refinement
//! rounds rescan only nodes adjacent to a move. The cutover is by
//! *size only* — never by thread count — so any `MAWILAB_THREADS`
//! setting partitions a given graph identically.

use crate::csr::CsrGraph;
use crate::graph::Graph;

/// A partition of graph nodes into communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `community[v]` = community id of node `v`. Ids are dense
    /// (`0..community_count`), ordered by first appearance.
    pub community: Vec<usize>,
    pub(crate) count: usize,
}

impl Partition {
    /// Builds a partition from arbitrary (possibly sparse) labels,
    /// renumbering them to dense ids in order of first appearance.
    /// Labels must be `< labels.len()`.
    pub fn from_labels(mut labels: Vec<usize>) -> Self {
        // Renumber to dense ids in order of first appearance.
        let mut remap: Vec<Option<usize>> = vec![None; labels.len().max(1)];
        let mut next = 0;
        for l in &mut labels {
            let slot = remap.get_mut(*l).expect("label out of range"); // lint:allow(panic-free-data-plane): partition labels are vertex indices < len by construction
            match slot {
                Some(id) => *l = *id,
                None => {
                    *slot = Some(next);
                    *l = next;
                    next += 1;
                }
            }
        }
        Partition {
            community: labels,
            count: next,
        }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.count
    }

    /// Community id of node `v`.
    pub fn of(&self, v: usize) -> usize {
        self.community[v]
    }

    /// Members of every community, indexed by community id.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.community.iter().enumerate() {
            out[c].push(v);
        }
        out
    }

    /// Sizes of communities, indexed by community id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0; self.count];
        for &c in &self.community {
            out[c] += 1;
        }
        out
    }
}

/// Modularity `Q` of a partition:
/// `Q = Σ_c [ Σ_in(c)/(2m) − (Σ_tot(c)/(2m))² ]`.
///
/// Returns 0 for graphs without edges (the convention that keeps the
/// similarity estimator well defined on all-singleton days).
pub fn modularity(g: &Graph, p: &Partition) -> f64 {
    assert_eq!(p.community.len(), g.node_count(), "partition size mismatch");
    let two_m = 2.0 * g.total_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let nc = p.community_count();
    let mut sigma_in = vec![0.0; nc]; // 2× intra-community weight
    let mut sigma_tot = vec![0.0; nc];
    for v in 0..g.node_count() {
        let cv = p.of(v);
        sigma_tot[cv] += g.degree(v);
        sigma_in[cv] += 2.0 * g.self_loop(v);
        for &(u, w) in g.neighbors(v) {
            if p.of(u as usize) == cv {
                sigma_in[cv] += w; // each intra edge visited twice
            }
        }
    }
    (0..nc)
        .map(|c| sigma_in[c] / two_m - (sigma_tot[c] / two_m).powi(2))
        .sum()
}

/// Node count at and above which the local-moving phase uses the
/// parallel propose-then-apply sweep. The cutover depends only on
/// graph size, so a given graph is partitioned identically at every
/// `MAWILAB_THREADS` setting.
pub const PARALLEL_SWEEP_MIN_NODES: usize = 256;

/// Runs Louvain to convergence and returns the final partition on the
/// original nodes.
///
/// `resolution` scales the null-model term of the gain (1.0 =
/// classical modularity; the paper uses the classical setting).
pub fn louvain(g: &Graph, resolution: f64) -> Partition {
    louvain_csr(&CsrGraph::from_graph(g), resolution)
}

/// [`louvain`] over an already-flattened [`CsrGraph`] (callers that
/// hold one avoid the conversion).
pub fn louvain_csr(g: &CsrGraph, resolution: f64) -> Partition {
    assert!(resolution > 0.0, "resolution must be positive");
    let n = g.node_count();
    if n == 0 {
        return Partition {
            community: vec![],
            count: 0,
        };
    }
    // node → community on the *original* graph, refined level by level.
    let mut assignment: Vec<usize> = (0..n).collect();
    let mut owned_level: Option<CsrGraph> = None;

    loop {
        let level_graph = owned_level.as_ref().unwrap_or(g);
        let (labels, improved) = one_level(level_graph, resolution);
        if !improved {
            break;
        }
        let level_part = Partition::from_labels(labels);
        // Propagate: original node → its community at this level.
        for a in assignment.iter_mut() {
            *a = level_part.of(*a);
        }
        if level_part.community_count() == level_graph.node_count() {
            break; // aggregation would be a no-op
        }
        owned_level = Some(aggregate(level_graph, &level_part));
    }
    Partition::from_labels(assignment)
}

/// [`louvain`] warm-started from a prior partition.
pub fn louvain_seeded(g: &Graph, resolution: f64, seed: &Partition) -> Partition {
    louvain_csr_seeded(&CsrGraph::from_graph(g), resolution, seed)
}

/// [`louvain_csr`] warm-started from a prior partition: node→community
/// assignments are initialised from `seed` and the same greedy
/// refinement sweep then runs to convergence — identical fixed-point
/// semantics (every applied move strictly increases modularity), but
/// far fewer sweeps when the seed is already close to the answer.
///
/// One projection keeps the warm start honest: every seed community
/// is split into its **connected components within today's graph**
/// before the sweep. Cold Louvain only ever groups nodes along edges,
/// so a carried community today's graph no longer connects is never a
/// reachable cold fixed point — yet left intact it would *survive*
/// refinement, because no strictly-positive-gain move dissolves an
/// edge-less grouping. The split dissolves exactly that stale
/// structure (isolated nodes fall out as singletons, preserving the
/// paper's false-positive-singleton signal) while connected carried
/// structure passes through untouched. The resulting components are
/// renumbered densely in order of first appearance (the same
/// canonicalisation as [`Partition::from_labels`]), so the lowest-id
/// tie-break resolves exactly as it would in an equivalent cold
/// sweep.
///
/// With an identity (all-singleton) seed the result is byte-identical
/// to [`louvain_csr`]: the projected labels, the σ_tot initialisation,
/// and every gain comparison coincide with the cold path.
pub fn louvain_csr_seeded(g: &CsrGraph, resolution: f64, seed: &Partition) -> Partition {
    assert!(resolution > 0.0, "resolution must be positive");
    let n = g.node_count();
    assert_eq!(seed.community.len(), n, "seed partition size mismatch");
    if n == 0 {
        return Partition {
            community: vec![],
            count: 0,
        };
    }
    // Project the seed onto this graph: union-find over the edges
    // *internal* to each seed community splits every carried
    // community into its connected components (zero-degree nodes fall
    // out as singletons — no edge ever unions them), then the roots
    // are renumbered densely in first-appearance order. `next`
    // increments at most once per node, so every label stays < n (the
    // `from_labels` invariant).
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    for v in 0..n {
        for &t in g.neighbor_targets(v) {
            let t = t as usize;
            if t > v && seed.community[v] == seed.community[t] {
                let (rv, rt) = (find(&mut parent, v as u32), find(&mut parent, t as u32));
                if rv != rt {
                    // Root at the smaller id: first-appearance
                    // renumbering below then sees each component at
                    // its lowest member.
                    parent[rv.max(rt) as usize] = rv.min(rt);
                }
            }
        }
    }
    let mut labels: Vec<usize> = Vec::with_capacity(n);
    let mut remap: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    for v in 0..n {
        let root = find(&mut parent, v as u32) as usize;
        match &mut remap[root] {
            Some(id) => labels.push(*id),
            slot @ None => {
                *slot = Some(next);
                labels.push(next);
                next += 1;
            }
        }
    }

    let (labels, _improved) = one_level_from(g, resolution, labels);
    let level_part = Partition::from_labels(labels);
    let mut assignment = level_part.community.clone();
    if level_part.community_count() < n {
        // Levels past the first start from singleton super-nodes, so
        // the cold engine finishes the job on the aggregated graph.
        let rest = louvain_csr(&aggregate(g, &level_part), resolution);
        for a in assignment.iter_mut() {
            *a = rest.of(*a);
        }
    }
    Partition::from_labels(assignment)
}

/// One round of greedy local moving from singleton labels. Returns the
/// label vector and whether any node moved.
fn one_level(g: &CsrGraph, resolution: f64) -> (Vec<usize>, bool) {
    one_level_from(g, resolution, (0..g.node_count()).collect())
}

/// One round of greedy local moving from the given initial labels
/// (dense, `< n`). Identity labels reproduce the classic sweep
/// byte-for-byte; a warm seed simply starts the same sweep closer to
/// its fixed point.
fn one_level_from(g: &CsrGraph, resolution: f64, labels: Vec<usize>) -> (Vec<usize>, bool) {
    if g.node_count() >= PARALLEL_SWEEP_MIN_NODES {
        one_level_parallel(g, resolution, labels)
    } else {
        one_level_sequential(g, resolution, labels)
    }
}

/// Per-community total degree for the given labelling. For identity
/// labels this is exactly `degrees.to_vec()` (0.0 + d == d bitwise for
/// the non-negative degrees a [`CsrGraph`] produces).
fn sigma_tot_from(labels: &[usize], degrees: &[f64]) -> Vec<f64> {
    let mut sigma_tot = vec![0.0; labels.len()];
    for (v, &c) in labels.iter().enumerate() {
        sigma_tot[c] += degrees[v];
    }
    sigma_tot
}

/// The exact sequential greedy sweep: scan nodes in order, each
/// against the fully up-to-date state.
fn one_level_sequential(
    g: &CsrGraph,
    resolution: f64,
    mut labels: Vec<usize>,
) -> (Vec<usize>, bool) {
    let n = g.node_count();
    let two_m = 2.0 * g.total_weight();
    if two_m == 0.0 {
        return (labels, false);
    }
    let degrees = g.degrees();
    let mut sigma_tot: Vec<f64> = sigma_tot_from(&labels, degrees);
    let mut improved_any = false;

    // Scratch: community id → accumulated edge weight from the node
    // being scanned (reset lazily via a generation stamp).
    let mut scratch = GainScratch::new(n);

    loop {
        let mut moved = false;
        for v in 0..n {
            let cv = labels[v];
            let w_own = scratch.accumulate(g, &labels, v, cv);
            // Remove v from its community.
            sigma_tot[cv] -= degrees[v];
            let base_gain = w_own - resolution * sigma_tot[cv] * degrees[v] / two_m;
            let best_c = scratch.best(cv, base_gain, |c, w_to| {
                w_to - resolution * sigma_tot[c] * degrees[v] / two_m
            });
            sigma_tot[best_c] += degrees[v];
            if best_c != cv {
                labels[v] = best_c;
                moved = true;
                improved_any = true;
            }
        }
        if !moved {
            break;
        }
    }
    (labels, improved_any)
}

/// Active sets at or above this size refine via the parallel
/// propose-then-apply round; smaller ones use a pruned sequential
/// gossip round (immediate updates converge faster than frozen
/// proposals, and a scoped-thread fan-out only pays for itself on
/// large scans). A size-only cutover, so results stay thread-count
/// invariant.
const PARALLEL_PROPOSE_MIN_ACTIVE: usize = 4096;

/// The large-graph sweep: one full sequential gossip pass, then
/// pruned **propose-then-apply** refinement rounds.
///
/// The opening pass is the exact greedy sweep (immediate updates) —
/// it does the bulk of the moves at one scan per node. Each
/// refinement round then (1) **proposes**: every node adjacent to a
/// previous move recomputes its best community against a frozen
/// snapshot of labels and community masses, fanned out over
/// [`mawilab_exec::par_map`] when the active set is large; and (2)
/// **applies**: proposals are replayed in node order, revalidated
/// against the live state, and applied only when the move still
/// strictly increases modularity. Every phase is deterministic and
/// independent of the worker count. Rescanning only moved
/// neighbourhoods (standard Louvain pruning) is what makes this
/// faster than the classic full re-sweeps even single-threaded.
fn one_level_parallel(g: &CsrGraph, resolution: f64, mut labels: Vec<usize>) -> (Vec<usize>, bool) {
    let n = g.node_count();
    let two_m = 2.0 * g.total_weight();
    if two_m == 0.0 {
        return (labels, false);
    }
    let degrees = g.degrees();
    let mut sigma_tot: Vec<f64> = sigma_tot_from(&labels, degrees);
    let mut improved_any = false;
    let mut scratch = GainScratch::new(n);

    // Opening gossip sweep, collecting the movers.
    let mut movers: Vec<u32> = Vec::new();
    for v in 0..n {
        let cv = labels[v];
        let w_own = scratch.accumulate(g, &labels, v, cv);
        sigma_tot[cv] -= degrees[v];
        let base_gain = w_own - resolution * sigma_tot[cv] * degrees[v] / two_m;
        let best_c = scratch.best(cv, base_gain, |c, w_to| {
            w_to - resolution * sigma_tot[c] * degrees[v] / two_m
        });
        sigma_tot[best_c] += degrees[v];
        if best_c != cv {
            labels[v] = best_c;
            movers.push(v as u32);
            improved_any = true;
        }
    }

    // Pruned propose-then-apply refinement.
    while !movers.is_empty() {
        // Active set: the movers and their neighbourhoods, ascending.
        let mut active: Vec<u32> = Vec::new();
        for &v in &movers {
            active.push(v);
            active.extend_from_slice(g.neighbor_targets(v as usize));
        }
        active.sort_unstable();
        active.dedup();

        if active.len() >= PARALLEL_PROPOSE_MIN_ACTIVE {
            // Propose against the frozen snapshot, in parallel.
            let workers = mawilab_exec::thread_count();
            let chunk = active.len().div_ceil(workers).max(1);
            let chunks: Vec<&[u32]> = active.chunks(chunk).collect();
            let labels_ref = &labels;
            let sigma_ref = &sigma_tot;
            let proposals: Vec<(u32, u32)> = mawilab_exec::par_map(&chunks, |part| {
                let mut local = GainScratch::new(n);
                propose(
                    g, part, labels_ref, sigma_ref, degrees, two_m, resolution, &mut local,
                )
            })
            .concat();

            // Apply in node order, revalidating against live state.
            movers.clear();
            for (v, proposed) in proposals {
                let (v, proposed) = (v as usize, proposed as usize);
                let cv = labels[v];
                if proposed == cv {
                    continue;
                }
                let (mut w_own, mut w_new) = (0.0, 0.0);
                for (u, w) in g.neighbors(v) {
                    let cu = labels[u as usize];
                    if cu == cv {
                        w_own += w;
                    } else if cu == proposed {
                        w_new += w;
                    }
                }
                let st_own = sigma_tot[cv] - degrees[v];
                let base_gain = w_own - resolution * st_own * degrees[v] / two_m;
                let gain = w_new - resolution * sigma_tot[proposed] * degrees[v] / two_m;
                if gain > base_gain + 1e-12 {
                    sigma_tot[cv] -= degrees[v];
                    sigma_tot[proposed] += degrees[v];
                    labels[v] = proposed;
                    movers.push(v as u32);
                    improved_any = true;
                }
            }
        } else {
            // Small active set: pruned gossip round (immediate
            // updates), same move rule as the opening sweep.
            let mut round_movers: Vec<u32> = Vec::new();
            for &v in &active {
                let v = v as usize;
                let cv = labels[v];
                let w_own = scratch.accumulate(g, &labels, v, cv);
                sigma_tot[cv] -= degrees[v];
                let base_gain = w_own - resolution * sigma_tot[cv] * degrees[v] / two_m;
                let best_c = scratch.best(cv, base_gain, |c, w_to| {
                    w_to - resolution * sigma_tot[c] * degrees[v] / two_m
                });
                sigma_tot[best_c] += degrees[v];
                if best_c != cv {
                    labels[v] = best_c;
                    round_movers.push(v as u32);
                    improved_any = true;
                }
            }
            movers = round_movers;
        }
    }
    (labels, improved_any)
}

/// Best-community proposals for `part` against a frozen snapshot of
/// labels and community masses. A pure function of the snapshot —
/// chunking and execution strategy cannot change its output.
#[allow(clippy::too_many_arguments)]
fn propose(
    g: &CsrGraph,
    part: &[u32],
    labels: &[usize],
    sigma_tot: &[f64],
    degrees: &[f64],
    two_m: f64,
    resolution: f64,
    scratch: &mut GainScratch,
) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for &v in part {
        let v = v as usize;
        let cv = labels[v];
        let w_own = scratch.accumulate(g, labels, v, cv);
        let st_own = sigma_tot[cv] - degrees[v];
        let base_gain = w_own - resolution * st_own * degrees[v] / two_m;
        let best_c = scratch.best(cv, base_gain, |c, w_to| {
            w_to - resolution * sigma_tot[c] * degrees[v] / two_m
        });
        if best_c != cv {
            out.push((v as u32, best_c as u32));
        }
    }
    out
}

/// Reusable neighbor-community accumulation scratch: community id →
/// summed edge weight from the scanned node, reset lazily via a
/// generation stamp so each scan is O(degree).
struct GainScratch {
    weight_to: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    candidates: Vec<usize>,
}

impl GainScratch {
    fn new(n: usize) -> Self {
        GainScratch {
            weight_to: vec![0.0; n],
            stamp: vec![0; n],
            generation: 0,
            candidates: Vec::new(),
        }
    }

    /// Accumulates `v`'s edge weight per neighbouring community and
    /// returns the weight into `v`'s own community. Candidates are
    /// left sorted ascending for [`best`](Self::best).
    fn accumulate(&mut self, g: &CsrGraph, labels: &[usize], v: usize, cv: usize) -> f64 {
        self.generation += 1;
        self.candidates.clear();
        for (u, w) in g.neighbors(v) {
            let cu = labels[u as usize];
            if self.stamp[cu] != self.generation {
                self.stamp[cu] = self.generation;
                self.weight_to[cu] = 0.0;
                self.candidates.push(cu);
            }
            self.weight_to[cu] += w;
        }
        let w_own = if self.stamp[cv] == self.generation {
            self.weight_to[cv]
        } else {
            0.0
        };
        self.candidates.sort_unstable();
        w_own
    }

    /// The best community for the accumulated node: maximises
    /// `gain(c, weight_to[c])` over the sorted candidates, starting
    /// from the stay-put `base_gain`. Ties keep the lowest id so
    /// results are independent of scan order.
    fn best(&self, cv: usize, base_gain: f64, gain: impl Fn(usize, f64) -> f64) -> usize {
        let mut best_c = cv;
        let mut best_gain = base_gain;
        for &c in &self.candidates {
            if c == cv {
                continue;
            }
            let gain_c = gain(c, self.weight_to[c]);
            if gain_c > best_gain + 1e-12 {
                best_gain = gain_c;
                best_c = c;
            }
        }
        best_c
    }
}

/// Builds the aggregated graph: one node per community, inter-community
/// weights summed, intra-community weight folded into self-loops.
fn aggregate(g: &CsrGraph, p: &Partition) -> CsrGraph {
    let nc = p.community_count();
    // Self-loops: intra-community edge weight + old self-loops.
    let mut intra = vec![0.0f64; nc];
    let mut inter: Vec<(u32, u32, f64)> = Vec::new();
    for v in 0..g.node_count() {
        let cv = p.of(v);
        intra[cv] += g.self_loop(v);
        for (u, w) in g.neighbors(v) {
            if (u as usize) <= v {
                continue; // each undirected edge once
            }
            let cu = p.of(u as usize);
            if cu == cv {
                intra[cv] += w;
            } else {
                let (a, b) = (cv.min(cu) as u32, cv.max(cu) as u32);
                inter.push((a, b, w));
            }
        }
    }
    inter.sort_unstable_by_key(|&(a, b, _)| (a, b));
    // Fold parallel edges (multiple original edges between the same
    // community pair) by summing weights in place.
    let mut folded: Vec<(u32, u32, f64)> = Vec::with_capacity(inter.len());
    for (a, b, w) in inter {
        match folded.last_mut() {
            Some(last) if last.0 == a && last.1 == b => last.2 += w,
            _ => folded.push((a, b, w)),
        }
    }
    CsrGraph::from_sorted_edges(nc, &folded, intra)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense triangles joined by one weak edge.
    fn two_triangles() -> Graph {
        let mut g = Graph::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 1.0);
        }
        g.add_edge(2, 3, 0.1);
        g
    }

    #[test]
    fn separates_two_triangles() {
        let g = two_triangles();
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.of(0), p.of(1));
        assert_eq!(p.of(1), p.of(2));
        assert_eq!(p.of(3), p.of(4));
        assert_ne!(p.of(0), p.of(3));
    }

    #[test]
    fn modularity_of_good_partition_beats_trivial() {
        let g = two_triangles();
        let good = louvain(&g, 1.0);
        let trivial = Partition::from_labels(vec![0; 6]);
        let singletons = Partition::from_labels((0..6).collect());
        assert!(modularity(&g, &good) > modularity(&g, &trivial));
        assert!(modularity(&g, &good) > modularity(&g, &singletons));
    }

    #[test]
    fn isolated_nodes_stay_singleton() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        // Nodes 2, 3, 4 isolated (false-positive alarms in the paper).
        let p = louvain(&g, 1.0);
        assert_eq!(p.of(0), p.of(1));
        let c2 = p.of(2);
        let c3 = p.of(3);
        let c4 = p.of(4);
        assert_ne!(c2, c3);
        assert_ne!(c3, c4);
        assert_eq!(p.community_count(), 4);
    }

    #[test]
    fn edgeless_graph_is_all_singletons_with_zero_modularity() {
        let g = Graph::new(4);
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), 4);
        assert_eq!(modularity(&g, &p), 0.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::new(0);
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_triangles();
        let p1 = louvain(&g, 1.0);
        let p2 = louvain(&g, 1.0);
        assert_eq!(p1, p2);
    }

    #[test]
    fn ring_of_cliques_finds_each_clique() {
        // Four 4-cliques in a ring, the standard Louvain sanity graph.
        let k = 4;
        let cliques = 4;
        let mut g = Graph::new(k * cliques);
        for c in 0..cliques {
            for i in 0..k {
                for j in (i + 1)..k {
                    g.add_edge(c * k + i, c * k + j, 1.0);
                }
            }
        }
        for c in 0..cliques {
            let next = (c + 1) % cliques;
            g.add_edge(c * k, next * k + 1, 0.2);
        }
        let p = louvain(&g, 1.0);
        assert_eq!(p.community_count(), cliques);
        for c in 0..cliques {
            for i in 1..k {
                assert_eq!(p.of(c * k), p.of(c * k + i), "clique {c} split");
            }
        }
    }

    #[test]
    fn weights_drive_membership() {
        // Node 2 connects to both sides; heavier edge wins.
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(1, 2, 0.9);
        g.add_edge(2, 3, 0.1);
        let p = louvain(&g, 1.0);
        assert_eq!(p.of(2), p.of(1));
        assert_ne!(p.of(2), p.of(3));
    }

    #[test]
    fn modularity_matches_hand_computation() {
        // Single edge graph, both nodes together: Q = 1/2... compute:
        // m = 1, degrees = 1,1. Q = Σ_in/(2m) − (Σ_tot/(2m))²
        //   = 2/2 − (2/2)² = 1 − 1 = 0 for the merged partition;
        // singletons: each c has Σ_in=0, Σ_tot=1 → Q = −2·(1/2)² = −0.5.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        let merged = Partition::from_labels(vec![0, 0]);
        let single = Partition::from_labels(vec![0, 1]);
        assert!((modularity(&g, &merged) - 0.0).abs() < 1e-12);
        assert!((modularity(&g, &single) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn louvain_never_decreases_vs_singletons() {
        // Pseudo-random sparse graph; Louvain must beat or match the
        // all-singleton baseline.
        let n = 60;
        let mut g = Graph::new(n);
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..120 {
            let a = next() % n;
            let b = next() % n;
            if a != b {
                g.add_edge(a, b, ((next() % 9) + 1) as f64 / 10.0);
            }
        }
        let p = louvain(&g, 1.0);
        let singles = Partition::from_labels((0..n).collect());
        assert!(modularity(&g, &p) >= modularity(&g, &singles) - 1e-12);
    }

    #[test]
    fn partition_members_and_sizes_agree() {
        let g = two_triangles();
        let p = louvain(&g, 1.0);
        let members = p.members();
        let sizes = p.sizes();
        assert_eq!(members.len(), sizes.len());
        for (c, m) in members.iter().enumerate() {
            assert_eq!(m.len(), sizes[c]);
            for &v in m {
                assert_eq!(p.of(v), c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        louvain(&Graph::new(1), 0.0);
    }

    /// A graph big enough to take the parallel propose-then-apply
    /// path: cliques of 8 over 60% of the nodes, the rest isolated —
    /// the shape of a real similarity graph.
    fn large_similarity_like(n: usize) -> Graph {
        assert!(n >= PARALLEL_SWEEP_MIN_NODES);
        let mut g = Graph::new(n);
        let clustered = n * 6 / 10;
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for start in (0..clustered).step_by(8) {
            let end = (start + 8).min(clustered);
            for i in start..end {
                for j in (i + 1)..end {
                    if rnd() % 10 < 7 {
                        g.add_edge(i, j, ((rnd() % 90) + 10) as f64 / 100.0);
                    }
                }
            }
        }
        g
    }

    #[test]
    fn parallel_sweep_finds_the_planted_cliques() {
        let g = large_similarity_like(400);
        let p = louvain(&g, 1.0);
        // Clique members cluster together; isolated nodes stay
        // singleton.
        for start in (0..240).step_by(8) {
            let c = p.of(start);
            for i in start..(start + 8).min(240) {
                assert_eq!(p.of(i), c, "clique at {start} split");
            }
        }
        for v in 240..400 {
            assert_eq!(p.sizes()[p.of(v)], 1, "isolated node {v} absorbed");
        }
        let singles = Partition::from_labels((0..400).collect());
        assert!(modularity(&g, &p) > modularity(&g, &singles));
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        let g = large_similarity_like(512);
        let p1 = louvain(&g, 1.0);
        let p2 = louvain(&g, 1.0);
        assert_eq!(p1, p2);
    }

    #[test]
    fn parallel_propose_rounds_are_deterministic_and_improving() {
        // Big enough that the first refinement active set crosses
        // PARALLEL_PROPOSE_MIN_ACTIVE, exercising the propose-apply
        // rounds (the gossip-only tests above stay below it).
        let n = 8192;
        let g = large_similarity_like(n);
        let p1 = louvain(&g, 1.0);
        let p2 = louvain(&g, 1.0);
        assert_eq!(p1, p2);
        let singles = Partition::from_labels((0..n).collect());
        assert!(modularity(&g, &p1) > modularity(&g, &singles));
        // Isolated nodes must remain singletons.
        let sizes = p1.sizes();
        for v in (n * 6 / 10)..n {
            assert_eq!(sizes[p1.of(v)], 1, "isolated node {v} absorbed");
        }
    }

    #[test]
    fn louvain_csr_matches_louvain() {
        for n in [40usize, 400] {
            let g = if n >= PARALLEL_SWEEP_MIN_NODES {
                large_similarity_like(n)
            } else {
                two_triangles()
            };
            let via_graph = louvain(&g, 1.0);
            let via_csr = louvain_csr(&CsrGraph::from_graph(&g), 1.0);
            assert_eq!(via_graph, via_csr);
        }
    }

    /// Identity (all-singleton) seed must reproduce the cold result
    /// byte for byte, on both the sequential and the parallel sweep.
    #[test]
    fn identity_seed_equals_cold_byte_for_byte() {
        for g in [two_triangles(), large_similarity_like(512)] {
            let csr = CsrGraph::from_graph(&g);
            let n = csr.node_count();
            let cold = louvain_csr(&csr, 1.0);
            let identity = Partition::from_labels((0..n).collect());
            let warm = louvain_csr_seeded(&csr, 1.0, &identity);
            assert_eq!(cold, warm);
            assert_eq!(louvain_seeded(&g, 1.0, &identity), cold);
        }
    }

    /// Seeding with the cold answer is a fixed point: the sweep makes
    /// no further moves and returns the same partition.
    #[test]
    fn cold_result_is_a_seeded_fixed_point() {
        for g in [two_triangles(), large_similarity_like(400)] {
            let csr = CsrGraph::from_graph(&g);
            let cold = louvain_csr(&csr, 1.0);
            let warm = louvain_csr_seeded(&csr, 1.0, &cold);
            assert_eq!(cold, warm);
        }
    }

    /// A stale seed that groups isolated nodes must be demoted: the
    /// false-positive-singleton signal survives warm starts.
    #[test]
    fn seeded_zero_degree_nodes_are_demoted_to_singletons() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        // Seed claims {2,3,4} form a community (say, yesterday's
        // alarms) — today they are isolated.
        let seed = Partition::from_labels(vec![0, 0, 1, 1, 1]);
        let p = louvain_seeded(&g, 1.0, &seed);
        assert_eq!(p.of(0), p.of(1));
        assert_ne!(p.of(2), p.of(3));
        assert_ne!(p.of(3), p.of(4));
        assert_ne!(p.of(2), p.of(4));
        assert_eq!(p.community_count(), 4);
    }

    /// A carried community whose members today's graph no longer
    /// connects must dissolve before the sweep: left intact, no
    /// strictly-positive-gain move would ever split an edge-less
    /// grouping, and the warm result would not be a cold-reachable
    /// fixed point.
    #[test]
    fn seeded_disconnected_community_is_split_to_components() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        // Yesterday 0 and 2 shared a community; today no path joins
        // them — the projection must separate them, and refinement
        // then reaches the cold answer exactly.
        let seed = Partition::from_labels(vec![0, 1, 0, 2]);
        let p = louvain_seeded(&g, 1.0, &seed);
        assert_ne!(p.of(0), p.of(2));
        assert_eq!(p, louvain(&g, 1.0));
    }

    /// A wrong seed must still converge to a good partition — the
    /// refinement sweep, not the seed, decides the fixed point.
    #[test]
    fn adversarial_seed_still_finds_the_cliques() {
        let g = two_triangles();
        // Seed splits both triangles across two bogus groups.
        let seed = Partition::from_labels(vec![0, 1, 0, 1, 0, 1]);
        let p = louvain_seeded(&g, 1.0, &seed);
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.of(0), p.of(1));
        assert_eq!(p.of(1), p.of(2));
        assert_eq!(p.of(3), p.of(4));
        assert_eq!(p.of(4), p.of(5));
        assert_ne!(p.of(0), p.of(3));
        // Modularity matches the cold optimum on this graph.
        let cold = louvain(&g, 1.0);
        assert!((modularity(&g, &p) - modularity(&g, &cold)).abs() < 1e-12);
    }

    /// Warm-starting from the correct grouping must not lose to cold
    /// on modularity (same fixed-point semantics).
    #[test]
    fn good_seed_matches_cold_modularity_on_large_graph() {
        let g = large_similarity_like(400);
        let csr = CsrGraph::from_graph(&g);
        let cold = louvain_csr(&csr, 1.0);
        let warm = louvain_csr_seeded(&csr, 1.0, &cold);
        assert!((modularity(&g, &warm) - modularity(&g, &cold)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "seed partition size mismatch")]
    fn seed_size_mismatch_panics() {
        let g = two_triangles();
        let seed = Partition::from_labels(vec![0, 0]);
        louvain_seeded(&g, 1.0, &seed);
    }
}
