//! Compressed sparse row (CSR) form of a weighted undirected graph.
//!
//! The Louvain inner loop is a tight scan over neighbor lists; the
//! pointer-chasing `Vec<Vec<(u32, f64)>>` adjacency of [`Graph`] costs
//! one heap hop per node. [`CsrGraph`] flattens the adjacency into
//! three parallel arrays (offsets / targets / weights) so sweeps walk
//! contiguous memory, caches weighted degrees, and gives the
//! aggregation step a constructor that bulk-builds a level graph from
//! a sorted edge list instead of one `add_edge` linear scan per edge.

use crate::graph::Graph;

/// A weighted undirected graph in CSR form. Neighbor lists exclude
/// self-loops, which are stored separately (matching [`Graph`]).
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` / `weights`.
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    self_loops: Vec<f64>,
    /// Cached weighted degrees (self-loops counted twice).
    degrees: Vec<f64>,
    /// Total edge weight `m` (each edge once, self-loops once).
    total_weight: f64,
}

impl CsrGraph {
    /// Flattens an adjacency-list graph, preserving neighbor order.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0;
        for v in 0..n {
            total += g.neighbors(v).len();
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for v in 0..n {
            for &(u, w) in g.neighbors(v) {
                targets.push(u);
                weights.push(w);
            }
        }
        let self_loops: Vec<f64> = (0..n).map(|v| g.self_loop(v)).collect();
        let degrees: Vec<f64> = (0..n).map(|v| g.degree(v)).collect();
        CsrGraph {
            offsets,
            targets,
            weights,
            self_loops,
            degrees,
            total_weight: g.total_weight(),
        }
    }

    /// Builds a CSR graph from deduplicated undirected edges
    /// (`a < b`, sorted ascending) and per-node self-loop weights —
    /// the aggregation step's bulk constructor. Neighbor lists come
    /// out sorted.
    pub fn from_sorted_edges(n: usize, edges: &[(u32, u32, f64)], self_loops: Vec<f64>) -> Self {
        assert_eq!(self_loops.len(), n, "one self-loop slot per node");
        let mut counts = vec![0usize; n];
        for &(a, b, _) in edges {
            debug_assert!(a < b && (b as usize) < n, "edges must be a < b < n");
            counts[a as usize] += 1;
            counts[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0;
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc];
        let mut weights = vec![0.0f64; acc];
        // Iterating edges in (a, b) order appends partners in
        // ascending order on both endpoints: for node x, all partners
        // a < x arrive (sorted by a) before all partners b > x.
        for &(a, b, w) in edges {
            let (a, b) = (a as usize, b as usize);
            targets[cursor[a]] = b as u32;
            weights[cursor[a]] = w;
            cursor[a] += 1;
            targets[cursor[b]] = a as u32;
            weights[cursor[b]] = w;
            cursor[b] += 1;
        }
        let degrees: Vec<f64> = (0..n)
            .map(|v| weights[offsets[v]..offsets[v + 1]].iter().sum::<f64>() + 2.0 * self_loops[v])
            .collect();
        let total_weight =
            edges.iter().map(|&(_, _, w)| w).sum::<f64>() + self_loops.iter().sum::<f64>();
        CsrGraph {
            offsets,
            targets,
            weights,
            self_loops,
            degrees,
            total_weight,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbor ids of `v` (self-loop excluded).
    pub fn neighbor_targets(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Self-loop weight of `v` (0 when absent).
    pub fn self_loop(&self, v: usize) -> f64 {
        self.self_loops[v]
    }

    /// Weighted degree of `v` (self-loops counted twice).
    pub fn degree(&self, v: usize) -> f64 {
        self.degrees[v]
    }

    /// All weighted degrees, indexed by node.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// Total edge weight `m` (each edge once, self-loops once).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 0.5);
        g.add_edge(1, 2, 1.5);
        g.add_edge(2, 2, 0.25);
        g
    }

    #[test]
    fn from_graph_preserves_structure() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.node_count(), 4);
        for v in 0..4 {
            let flat: Vec<(u32, f64)> = c.neighbors(v).collect();
            assert_eq!(flat.as_slice(), g.neighbors(v), "node {v}");
            assert_eq!(c.degree(v), g.degree(v), "degree {v}");
            assert_eq!(c.self_loop(v), g.self_loop(v), "loop {v}");
        }
        assert!((c.total_weight() - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn from_sorted_edges_matches_from_graph() {
        let g = sample();
        let c =
            CsrGraph::from_sorted_edges(4, &[(0, 1, 0.5), (1, 2, 1.5)], vec![0.0, 0.0, 0.25, 0.0]);
        let r = CsrGraph::from_graph(&g);
        for v in 0..4 {
            let a: Vec<(u32, f64)> = c.neighbors(v).collect();
            let mut b: Vec<(u32, f64)> = r.neighbors(v).collect();
            b.sort_by_key(|&(u, _)| u);
            assert_eq!(a, b, "node {v}");
            assert_eq!(c.degree(v), r.degree(v));
        }
        assert!((c.total_weight() - r.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let c = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.total_weight(), 0.0);
    }
}
