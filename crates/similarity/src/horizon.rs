//! Horizon-scoped traffic extraction: evidence for alarms that don't
//! exist yet.
//!
//! The two-pass [`StreamingExtractor`](crate::StreamingExtractor)
//! needs the alarms *before* it sees the packets, which is why the
//! two-pass pipeline rewinds. The single-pass pipeline inverts the
//! order: packets stream past **once**, before any alarm is
//! finalized, so the extractor must bank enough evidence per packet
//! to answer "which alarms designate it?" later. The banked record is
//! tiny — `(FlowKey, ts, unit id)` — because every [`AlarmScope`] is
//! a pure function of the 5-tuple ([`AlarmScope::matches_key`]) and
//! alarm time windows only ever test `ts`.
//!
//! The sliding horizon bounds how long *raw per-packet* records live:
//! once the stream's high-water mark passes a chunk's window end by
//! more than `lag_us`, the chunk **retires** into a compact per-flow
//! store (one entry per distinct 5-tuple, holding a deduplicated
//! `(ts, id)` run). Retirement is the single-pass analogue of "the
//! detectors have now seen window W + lag": evidence inside the lag
//! stays chunk-shaped (cheap to drop if a future design finalizes
//! alarms early), evidence past it is folded down. At `lag = 0`
//! everything retires as it arrives; at `lag ≥ stream length` nothing
//! does — both ends produce byte-identical traffic sets, which the
//! equivalence suite pins against the two-pass oracle.
//!
//! [`finalize`](HorizonExtractor::finalize) resolves the finished
//! alarm set against both stores through the inverted
//! [`AlarmIndex`](crate::index): each retired flow resolves its
//! candidate alarms with a handful of hash probes and a time stab —
//! `O(flows)` index probes instead of `O(flows × alarms)` scope
//! tests — then binary-searches its time run per surviving window,
//! while still-fresh chunks replay the per-record probe of the
//! two-pass extractor. The union is provably the same set of
//! `(alarm, unit)` hits the seed per-alarm scan would produce.

use crate::index::{AlarmIndex, HitSink, KeyMemo};
use mawilab_detectors::Alarm;
use mawilab_model::{FlowKey, Packet, TimeWindow};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Range;

/// Retired flows per shard of the finalize fan-out.
const FLOW_SHARD: usize = 1 << 12;

/// One banked packet: everything alarm matching can ever ask about.
#[derive(Debug, Clone, Copy)]
struct RawRecord {
    key: FlowKey,
    ts_us: u64,
    id: u32,
}

/// A not-yet-retired chunk of raw records. Matching only ever tests a
/// record's own timestamp, so the chunk needs no prefilter span.
#[derive(Debug)]
struct RawChunk {
    window: TimeWindow,
    records: Vec<RawRecord>,
}

/// Compact retired evidence of one flow: its `(ts, id)` run in
/// arrival order, exact duplicates collapsed.
#[derive(Debug, Default)]
struct FlowRun {
    hits: Vec<(u64, u32)>,
    /// Arrival order is time order for a well-formed source; a
    /// misbehaving one flips this and the run is sorted at finalize
    /// instead of silently mis-searched.
    sorted: bool,
}

impl FlowRun {
    fn push(&mut self, ts_us: u64, id: u32) {
        if let Some(&(last_ts, last_id)) = self.hits.last() {
            if (last_ts, last_id) == (ts_us, id) {
                return;
            }
            if last_ts > ts_us {
                self.sorted = false;
            }
        }
        self.hits.push((ts_us, id));
    }
}

/// Statistics of one horizon-scoped extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HorizonStats {
    /// Chunks retired into the compact per-flow store during the
    /// drain (their raw records are gone).
    pub retired_chunks: usize,
    /// Chunks still raw at finalize (inside the lag when the stream
    /// ended).
    pub fresh_chunks: usize,
    /// Packet records folded into the compact store.
    pub retired_records: u64,
    /// Packet records still raw at finalize.
    pub fresh_records: u64,
    /// Distinct flows in the compact store.
    pub retired_flows: usize,
    /// Windows whose watermark seal landed *before* the window's own
    /// end — a clock inversion of the `SealTracker` monotonicity
    /// invariant. Always 0 by construction; counted (not clamped to
    /// zero latency) so a regression is visible in the stats instead
    /// of silently reading as an instant label.
    pub negative_latency: u64,
}

/// What [`HorizonExtractor::finalize`] produces: the per-alarm traffic
/// sets (same shape as the two-pass extractor's `into_traffic`) plus
/// the set of unit ids that matched ≥ 1 alarm (what deferred
/// packet-granularity evidence is filtered down to).
#[derive(Debug)]
pub struct HorizonTraffic {
    /// One sorted, deduplicated unit-id set per alarm, in alarm order.
    pub traffic: Vec<Vec<u32>>,
    /// Every unit id that matched at least one alarm.
    pub matched: HashSet<u32>,
    /// Retire/fresh accounting of the drain.
    pub stats: HorizonStats,
}

/// Accumulates alarm-agnostic extraction evidence during the single
/// drain, retiring it past the lag, and resolves the finished alarms
/// against it at end of stream.
#[derive(Debug)]
pub struct HorizonExtractor {
    lag_us: u64,
    high_water_us: u64,
    fresh: VecDeque<RawChunk>,
    retired: HashMap<FlowKey, FlowRun>,
    stats: HorizonStats,
}

impl HorizonExtractor {
    /// An empty extractor with the given evidence-retention lag.
    pub fn new(lag_us: u64) -> Self {
        HorizonExtractor {
            lag_us,
            high_water_us: 0,
            fresh: VecDeque::new(),
            retired: HashMap::new(),
            stats: HorizonStats::default(),
        }
    }

    /// Banks one chunk of the drain. `ids[i]` must be the traffic-unit
    /// id of `packets[i]` (incremental `ItemIndex`, stream order) —
    /// the same contract as the two-pass extractor's `observe`.
    pub fn observe(&mut self, chunk_window: TimeWindow, packets: &[Packet], ids: &[u32]) {
        assert_eq!(packets.len(), ids.len(), "one id per packet required");
        let mut records = Vec::with_capacity(packets.len());
        for (p, &id) in packets.iter().zip(ids) {
            records.push(RawRecord {
                key: FlowKey::of(p),
                ts_us: p.ts_us,
                id,
            });
        }
        self.fresh.push_back(RawChunk {
            window: chunk_window,
            records,
        });
        self.high_water_us = self.high_water_us.max(chunk_window.end_us);
        self.retire_sealed();
    }

    /// Folds every fresh chunk whose window end + lag the stream has
    /// passed into the compact per-flow store.
    fn retire_sealed(&mut self) {
        while let Some(front) = self.fresh.front() {
            if front.window.end_us.saturating_add(self.lag_us) > self.high_water_us {
                break;
            }
            let chunk = self.fresh.pop_front().expect("peeked"); // lint:allow(panic-free-data-plane): front() returned Some on this iteration
            self.stats.retired_chunks += 1;
            self.stats.retired_records += chunk.records.len() as u64;
            for r in chunk.records {
                self.retired.entry(r.key).or_default().push(r.ts_us, r.id);
            }
        }
    }

    /// Number of packet records currently held raw (inside the lag).
    pub fn fresh_records(&self) -> u64 {
        self.fresh.iter().map(|c| c.records.len() as u64).sum()
    }

    /// Resolves the finished alarm set against everything banked.
    ///
    /// Matching runs on the inverted [`AlarmIndex`](crate::index):
    /// each retired flow resolves its candidate alarms with a handful
    /// of hash probes (instead of one scope test per alarm), stabs the
    /// candidates with its run span, and binary-searches the run per
    /// surviving window. The retired store is sharded through
    /// `mawilab-exec`; hash-map shard order varies but the final
    /// per-alarm sort + dedup makes the output canonical at any thread
    /// count.
    pub fn finalize(mut self, alarms: &[Alarm]) -> HorizonTraffic {
        self.stats.fresh_chunks = self.fresh.len();
        self.stats.fresh_records = self.fresh_records();
        self.stats.retired_flows = self.retired.len();

        let index = AlarmIndex::new(alarms);

        // Retired store: sort any out-of-order runs, then shard.
        let mut retired: Vec<(FlowKey, FlowRun)> = self.retired.drain().collect();
        for (_, run) in &mut retired {
            if !run.sorted {
                run.hits.sort_unstable();
                run.hits.dedup();
            }
        }
        let shards: Vec<Range<usize>> = (0..retired.len())
            .step_by(FLOW_SHARD)
            .map(|s| s..(s + FLOW_SHARD).min(retired.len()))
            .collect();
        let parts: Vec<HitSink> = mawilab_exec::par_map(&shards, |range| {
            let mut sink = HitSink::new(alarms.len());
            for (key, run) in &retired[range.clone()] {
                let (first_ts, last_ts) = match (run.hits.first(), run.hits.last()) {
                    (Some(&(f, _)), Some(&(l, _))) => (f, l),
                    _ => continue,
                };
                let candidates = index.candidates_for(key);
                candidates.stab_span(first_ts, last_ts, |ai| {
                    let w = &alarms[ai as usize].window;
                    let from = run.hits.partition_point(|&(ts, _)| ts < w.start_us);
                    for &(ts, id) in &run.hits[from..] {
                        if ts >= w.end_us {
                            break;
                        }
                        sink.push(ai, id);
                    }
                });
            }
            sink
        });
        let mut sink = HitSink::new(alarms.len());
        for part in parts {
            sink.absorb(part);
        }

        // Fresh chunks: the per-record probe of the two-pass
        // extractor, keys instead of packets, memoized per flow.
        let mut memo = KeyMemo::default();
        for chunk in &self.fresh {
            for r in &chunk.records {
                let run = memo.run_for(&index, &r.key);
                run.stab(r.ts_us, |ai| sink.push(ai, r.id));
            }
        }

        let traffic = sink.finish();
        let matched: HashSet<u32> = traffic.iter().flatten().copied().collect();
        HorizonTraffic {
            traffic,
            matched,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingExtractor;
    use mawilab_detectors::{AlarmScope, DetectorKind, Tuning};
    use mawilab_model::{
        Granularity, ItemIndex, PacketSource, TcpFlags, Trace, TraceChunker, TraceDate, TraceMeta,
        TrafficRule,
    };
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 9, d)
    }

    fn trace() -> Trace {
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let base = meta.window().start_us;
        let mut packets = Vec::new();
        for i in 0..200u64 {
            let src = ip((i % 7) as u8);
            let dst = ip(100 + (i % 3) as u8);
            packets.push(Packet::tcp(
                base + i * 750_000,
                src,
                1000 + (i % 5) as u16,
                dst,
                if i % 4 == 0 { 80 } else { 445 },
                TcpFlags::syn(),
                60,
            ));
        }
        Trace::new(meta, packets)
    }

    fn alarms(t: &Trace) -> Vec<Alarm> {
        let w = t.meta.window();
        let mk = |scope| Alarm {
            detector: DetectorKind::Pca,
            tuning: Tuning::Optimal,
            window: w,
            scope,
            score: 1.0,
        };
        let mut v = vec![
            mk(AlarmScope::SrcHost(ip(1))),
            mk(AlarmScope::DstHost(ip(101))),
            mk(AlarmScope::Rule(TrafficRule {
                dport: Some(445),
                ..Default::default()
            })),
            mk(AlarmScope::FlowSet(vec![
                FlowKey::of(&t.packets[0]),
                FlowKey::of(&t.packets[3]),
            ])),
        ];
        // A window-restricted alarm: at mid-range lags its window
        // straddles the retired/fresh boundary, exercising both match
        // paths on one alarm.
        v.push(Alarm {
            window: TimeWindow::new(w.start_us + 30_000_000, w.start_us + 90_000_000),
            ..mk(AlarmScope::SrcHost(ip(2)))
        });
        v
    }

    /// Drives both extractors over the same chunked stream and
    /// returns `(two_pass, horizon)` traffic plus the horizon result.
    fn run_both(
        t: &Trace,
        alarms: &[Alarm],
        g: Granularity,
        bin_us: u64,
        lag_us: u64,
    ) -> (Vec<Vec<u32>>, HorizonTraffic) {
        let mut index = ItemIndex::new(g);
        let mut two_pass = StreamingExtractor::new(alarms);
        let mut horizon = HorizonExtractor::new(lag_us);
        let mut ids = Vec::new();
        let mut source = TraceChunker::new(t.clone(), bin_us);
        while let Some(chunk) = source.next_chunk().unwrap() {
            index.ids_of(&chunk.packets, &mut ids);
            two_pass.observe(chunk.window, &chunk.packets, &ids);
            horizon.observe(chunk.window, &chunk.packets, &ids);
        }
        (two_pass.into_traffic(), horizon.finalize(alarms))
    }

    #[test]
    fn horizon_matches_two_pass_extractor_across_lags_and_granularities() {
        let t = trace();
        let alarms = alarms(&t);
        for g in [
            Granularity::Packet,
            Granularity::Uniflow,
            Granularity::Biflow,
        ] {
            for bin_us in [1_000_000u64, 5_000_000, 300_000_000] {
                for lag_us in [0u64, 10_000_000, 86_400_000_000] {
                    let (two_pass, horizon) = run_both(&t, &alarms, g, bin_us, lag_us);
                    assert_eq!(
                        horizon.traffic, two_pass,
                        "granularity {g}, bin {bin_us}, lag {lag_us}"
                    );
                }
            }
        }
    }

    #[test]
    fn lag_zero_retires_everything_and_huge_lag_retires_nothing() {
        let t = trace();
        let alarms = alarms(&t);
        let (_, eager) = run_both(&t, &alarms, Granularity::Uniflow, 5_000_000, 0);
        assert_eq!(eager.stats.fresh_chunks, 0, "lag 0 must retire every chunk");
        assert!(eager.stats.retired_chunks > 10);
        assert_eq!(eager.stats.retired_records, t.len() as u64);

        let (_, lazy) = run_both(&t, &alarms, Granularity::Uniflow, 5_000_000, u64::MAX / 2);
        assert_eq!(lazy.stats.retired_chunks, 0, "huge lag must retire nothing");
        assert_eq!(lazy.stats.fresh_records, t.len() as u64);
    }

    #[test]
    fn mid_lag_splits_the_stream_and_still_matches() {
        let t = trace();
        let alarms = alarms(&t);
        // 150 s trace, 5 s chunks, 60 s lag: a genuine split, with the
        // window-restricted alarm straddling the retire boundary.
        let (two_pass, horizon) =
            run_both(&t, &alarms, Granularity::Uniflow, 5_000_000, 60_000_000);
        assert!(horizon.stats.retired_chunks > 0, "no chunk retired");
        assert!(horizon.stats.fresh_chunks > 0, "no chunk stayed fresh");
        assert_eq!(horizon.traffic, two_pass);
    }

    #[test]
    fn matched_ids_are_exactly_the_union_of_the_traffic_sets() {
        let t = trace();
        let alarms = alarms(&t);
        for lag_us in [0u64, 40_000_000, u64::MAX / 2] {
            let (_, horizon) = run_both(&t, &alarms, Granularity::Packet, 5_000_000, lag_us);
            let union: HashSet<u32> = horizon.traffic.iter().flatten().copied().collect();
            assert_eq!(horizon.matched, union, "lag {lag_us}");
        }
    }

    #[test]
    fn straggler_in_retired_chunk_still_matches_earlier_alarm() {
        // The horizon analogue of the two-pass straggler test: a
        // 4.9 s packet folded into the [5 s, 10 s) chunk, retired long
        // before finalize, must still be claimed by the [0 s, 5 s)
        // alarm via its own timestamp.
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let base = meta.window().start_us;
        let straggler = Packet::tcp(
            base + 4_900_000,
            ip(1),
            1000,
            ip(2),
            80,
            TcpFlags::syn(),
            60,
        );
        let filler = Packet::tcp(
            base + 97_000_000,
            ip(3),
            1001,
            ip(4),
            81,
            TcpFlags::syn(),
            60,
        );
        let alarm = Alarm {
            detector: DetectorKind::Kl,
            tuning: Tuning::Optimal,
            window: TimeWindow::new(base, base + 5_000_000),
            scope: AlarmScope::SrcHost(ip(1)),
            score: 1.0,
        };
        let alarms = vec![alarm];
        let mut ex = HorizonExtractor::new(10_000_000);
        ex.observe(
            TimeWindow::new(base + 5_000_000, base + 10_000_000),
            &[straggler],
            &[7],
        );
        // A much later chunk pushes the straggler's chunk past the lag.
        ex.observe(
            TimeWindow::new(base + 95_000_000, base + 100_000_000),
            &[filler],
            &[8],
        );
        let out = ex.finalize(&alarms);
        assert_eq!(out.stats.retired_chunks, 1);
        assert_eq!(out.traffic, vec![vec![7]]);
        assert!(out.matched.contains(&7) && !out.matched.contains(&8));
    }

    #[test]
    fn no_alarms_and_no_packets_are_handled() {
        let out = HorizonExtractor::new(0).finalize(&[]);
        assert!(out.traffic.is_empty());
        assert!(out.matched.is_empty());

        let t = trace();
        let alarms = alarms(&t);
        let out = HorizonExtractor::new(0).finalize(&alarms);
        assert_eq!(out.traffic.len(), alarms.len());
        assert!(out.traffic.iter().all(|s| s.is_empty()));
    }
}
