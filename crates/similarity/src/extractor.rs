//! Traffic extraction: alarms → traffic-unit id sets.
//!
//! The "oracle" of the paper's earlier work [13]: given an alarm's
//! feature scope and time window, return the ids of the traffic units
//! it designates. Ids are indices into the trace (packet index) or
//! into the flow table (uniflow/biflow id), so set intersection is
//! integer intersection regardless of the original alarm granularity.
//!
//! Two engines produce byte-identical output:
//!
//! * [`extract_traffic`] — the inverted-index engine: alarm scopes are
//!   bucketed by concrete 5-tuple fields ([`crate::index`]), every
//!   uniflow's candidate alarms resolve once, and the packet array is
//!   scanned **once** (sharded through `mawilab-exec`), stabbing each
//!   packet's timestamp into its flow's candidate run.
//! * [`extract_traffic_sequential`] — the retained seed engine (one
//!   packet-range scan per alarm), kept as the equivalence oracle.

use crate::index::{AlarmIndex, AlarmRun, HitSink};
use mawilab_detectors::{Alarm, AlarmScope, TraceView};
use mawilab_model::{FlowKey, Granularity};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Packets per scan shard of the indexed engine.
const PACKET_SHARD: usize = 1 << 16;

/// Extracts the traffic id set of every alarm, at the requested
/// granularity. Each result is sorted and deduplicated.
///
/// Inverted-index engine: O(uniflows) scope resolutions + one packet
/// scan, instead of the seed's O(alarms × packets) scope tests.
/// Byte-identical to [`extract_traffic_sequential`] at any
/// `MAWILAB_THREADS` (the shard merge is canonicalized by the final
/// per-alarm sort).
pub fn extract_traffic(
    view: &TraceView<'_>,
    alarms: &[Alarm],
    granularity: Granularity,
) -> Vec<Vec<u32>> {
    if alarms.is_empty() {
        return Vec::new();
    }
    let trace = view.trace;
    let index = AlarmIndex::new(alarms);

    // Scope tests resolve once per dense uniflow id, not per packet.
    let uniflows: Vec<u32> = (0..view.flows.uniflow_count() as u32).collect();
    let runs: Vec<AlarmRun> = mawilab_exec::par_map(&uniflows, |&u| {
        index.candidates_for(view.flows.uniflow_key(u))
    });

    // One pass over the packets, sharded; each shard accumulates
    // per-alarm hit runs merged and canonicalized below.
    let shards: Vec<Range<usize>> = (0..trace.packets.len())
        .step_by(PACKET_SHARD)
        .map(|s| s..(s + PACKET_SHARD).min(trace.packets.len()))
        .collect();
    let parts: Vec<HitSink> = mawilab_exec::par_map(&shards, |range| {
        let mut sink = HitSink::new(alarms.len());
        for i in range.clone() {
            let u = view.flows.uniflow_of(i);
            let run = &runs[u as usize];
            if run.is_empty() {
                continue;
            }
            let id = match granularity {
                Granularity::Packet => i as u32,
                Granularity::Uniflow => u,
                Granularity::Biflow => view.flows.biflow_of(i),
            };
            run.stab(trace.packets[i].ts_us, |a| sink.push(a, id));
        }
        sink
    });
    let mut merged = HitSink::new(alarms.len());
    for part in parts {
        merged.absorb(part);
    }
    merged.finish()
}

/// The seed per-alarm engine, retained as the equivalence oracle for
/// the inverted-index path: one packet-range scan per alarm. `FlowSet`
/// scopes resolve their keys to dense uniflow ids once per *distinct*
/// scope (detectors re-emit one flow set across windows), not once per
/// alarm.
pub fn extract_traffic_sequential(
    view: &TraceView<'_>,
    alarms: &[Alarm],
    granularity: Granularity,
) -> Vec<Vec<u32>> {
    let mut scope_slots: HashMap<&[FlowKey], usize> = HashMap::new();
    let mut resolved: Vec<HashSet<u32>> = Vec::new();
    let slots: Vec<Option<usize>> = alarms
        .iter()
        .map(|a| match &a.scope {
            AlarmScope::FlowSet(keys) => {
                Some(*scope_slots.entry(keys.as_slice()).or_insert_with(|| {
                    resolved.push(
                        keys.iter()
                            .filter_map(|k| view.flows.find_uniflow(k))
                            .collect(),
                    );
                    resolved.len() - 1
                }))
            }
            _ => None,
        })
        .collect();
    alarms
        .iter()
        .zip(&slots)
        .map(|(a, slot)| extract_one(view, a, granularity, slot.map(|s| &resolved[s])))
        .collect()
}

fn extract_one(
    view: &TraceView<'_>,
    alarm: &Alarm,
    granularity: Granularity,
    flow_ids: Option<&HashSet<u32>>,
) -> Vec<u32> {
    let trace = view.trace;
    let range = trace.packet_range(&alarm.window);

    let mut set: HashSet<u32> = HashSet::new();
    for i in range {
        let p = &trace.packets[i];
        let matched = match (&alarm.scope, flow_ids) {
            (AlarmScope::FlowSet(_), Some(ids)) => ids.contains(&view.flows.uniflow_of(i)),
            (scope, _) => scope.matches(p),
        };
        if !matched {
            continue;
        }
        let id = match granularity {
            Granularity::Packet => i as u32,
            Granularity::Uniflow => view.flows.uniflow_of(i),
            Granularity::Biflow => view.flows.biflow_of(i),
        };
        set.insert(id);
    }
    let mut v: Vec<u32> = set.into_iter().collect();
    v.sort_unstable();
    v
}

/// Intersection size of two sorted id slices.
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_detectors::{DetectorKind, Tuning};
    use mawilab_model::{
        FlowKey, FlowTable, Packet, TcpFlags, TimeWindow, Trace, TraceDate, TraceMeta, TrafficRule,
    };
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 1, d)
    }

    /// Trace with a bidirectional TCP conversation + one UDP flow.
    fn trace() -> Trace {
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let base = meta.window().start_us;
        Trace::new(
            meta,
            vec![
                Packet::tcp(base, ip(1), 1000, ip(2), 80, TcpFlags::syn(), 40),
                Packet::tcp(base + 10, ip(2), 80, ip(1), 1000, TcpFlags::syn_ack(), 40),
                Packet::tcp(base + 20, ip(1), 1000, ip(2), 80, TcpFlags::ack(), 40),
                Packet::udp(base + 30, ip(3), 53, ip(1), 777, 100),
                Packet::tcp(base + 40, ip(4), 2000, ip(2), 80, TcpFlags::syn(), 40),
            ],
        )
    }

    fn alarm(scope: AlarmScope, window: TimeWindow) -> Alarm {
        Alarm {
            detector: DetectorKind::Pca,
            tuning: Tuning::Optimal,
            window,
            scope,
            score: 1.0,
        }
    }

    #[test]
    fn host_scope_packet_granularity() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let a = alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::all());
        let sets = extract_traffic(&view, &[a], Granularity::Packet);
        assert_eq!(sets[0], vec![0, 2]); // the two packets from ip1
    }

    #[test]
    fn uniflow_vs_biflow_granularity() {
        // Paper Fig. 1: alarms on opposite directions of one
        // conversation share nothing at uniflow granularity but are
        // identical at biflow granularity.
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let fwd = alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::all());
        let rev = alarm(AlarmScope::SrcHost(ip(2)), TimeWindow::all());
        let uni = extract_traffic(&view, &[fwd.clone(), rev.clone()], Granularity::Uniflow);
        assert_eq!(intersection_size(&uni[0], &uni[1]), 0);
        let bi = extract_traffic(&view, &[fwd, rev], Granularity::Biflow);
        assert_eq!(intersection_size(&bi[0], &bi[1]), 1);
    }

    #[test]
    fn window_restricts_extraction() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let base = t.meta.window().start_us;
        let a = alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::new(base, base + 5));
        let sets = extract_traffic(&view, &[a], Granularity::Packet);
        assert_eq!(sets[0], vec![0]);
    }

    #[test]
    fn flowset_scope_resolves_keys() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let key = FlowKey::of(&t.packets[0]);
        let a = alarm(AlarmScope::FlowSet(vec![key]), TimeWindow::all());
        let sets = extract_traffic(&view, &[a], Granularity::Packet);
        assert_eq!(sets[0], vec![0, 2]); // SYN + ACK of the fwd flow
    }

    #[test]
    fn flowset_with_unknown_keys_is_empty() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let ghost = FlowKey {
            src: ip(9),
            dst: ip(8),
            sport: 1,
            dport: 2,
            proto: mawilab_model::Protocol::Tcp,
        };
        let a = alarm(AlarmScope::FlowSet(vec![ghost]), TimeWindow::all());
        let sets = extract_traffic(&view, &[a], Granularity::Uniflow);
        assert!(sets[0].is_empty());
    }

    #[test]
    fn rule_scope_matches_wildcards() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let rule = TrafficRule {
            dport: Some(80),
            ..Default::default()
        };
        let a = alarm(AlarmScope::Rule(rule), TimeWindow::all());
        let sets = extract_traffic(&view, &[a], Granularity::Uniflow);
        // fwd conversation flow (ip1→ip2:80) and the second client
        // (ip4→ip2:80): two uniflows.
        assert_eq!(sets[0].len(), 2);
    }

    #[test]
    fn host_alarm_includes_flows_it_sourced_only() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let a = alarm(AlarmScope::SrcHost(ip(2)), TimeWindow::all());
        let sets = extract_traffic(&view, &[a], Granularity::Uniflow);
        assert_eq!(sets[0].len(), 1); // only the reverse direction flow
    }

    #[test]
    fn sets_are_sorted_and_unique() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let a = alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::all());
        for g in [
            Granularity::Packet,
            Granularity::Uniflow,
            Granularity::Biflow,
        ] {
            let sets = extract_traffic(&view, std::slice::from_ref(&a), g);
            let s = &sets[0];
            assert!(
                s.windows(2).all(|w| w[0] < w[1]),
                "not sorted/unique at {g}"
            );
        }
    }

    #[test]
    fn intersection_size_basics() {
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[5], &[5]), 1);
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 4, 6]), 0);
    }
}
