//! # mawilab-similarity
//!
//! The graph-based similarity estimator — the paper's first main
//! ingredient (§2.1).
//!
//! Detectors report alarms at incompatible granularities (hosts, flow
//! sets, feature rules), so naive comparison is impossible. The
//! estimator makes them comparable in three steps:
//!
//! 1. **Traffic extraction** ([`extractor`]) — resolve every alarm to
//!    the set of traffic units it designates, at a chosen granularity
//!    (packets, unidirectional flows or bidirectional flows — Fig. 1
//!    shows why the choice matters).
//! 2. **Similarity graph** ([`estimator`]) — one node per alarm, an
//!    edge wherever two alarms' traffic intersects, weighted by a
//!    similarity measure (Simpson by default, the paper's pick).
//! 3. **Community mining** — Louvain modularity optimisation clusters
//!    equivalent alarms; isolated alarms become the *single
//!    communities* whose count is the estimator's quality signal
//!    (Fig. 3(a)).

#![forbid(unsafe_code)]

pub mod estimator;
pub mod extractor;
pub mod horizon;
pub(crate) mod index;
pub(crate) mod shard;
pub mod streaming;

pub use estimator::{AlarmCommunities, EstimateTimings, SimilarityEstimator, SimilarityMeasure};
pub use extractor::{extract_traffic, extract_traffic_sequential};
pub use horizon::{HorizonExtractor, HorizonStats, HorizonTraffic};
pub use mawilab_graph::Partition;
pub use streaming::StreamingExtractor;
