//! Similarity graph construction and community mining.

use crate::extractor::{extract_traffic, intersection_size};
use mawilab_detectors::{Alarm, DetectorKind, TraceView, Tuning};
use mawilab_graph::{louvain, louvain_seeded, Graph, Partition};
use mawilab_model::Granularity;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Edge-weight measure between two alarms' traffic sets (paper
/// §2.1.2). Simpson outperformed the others in the paper's
/// experiments and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimilarityMeasure {
    /// `|A∩B| / min(|A|,|B|)` — 1.0 when one alarm is contained in the
    /// other.
    #[default]
    Simpson,
    /// `|A∩B| / |A∪B|`.
    Jaccard,
    /// 1.0 whenever the sets intersect at all.
    Constant,
}

impl SimilarityMeasure {
    /// Computes the measure given `|A∩B|`, `|A|`, `|B|`.
    pub fn value(&self, inter: usize, a: usize, b: usize) -> f64 {
        if inter == 0 {
            return 0.0;
        }
        match self {
            SimilarityMeasure::Simpson => inter as f64 / a.min(b) as f64,
            SimilarityMeasure::Jaccard => inter as f64 / (a + b - inter) as f64,
            SimilarityMeasure::Constant => 1.0,
        }
    }
}

impl std::fmt::Display for SimilarityMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimilarityMeasure::Simpson => write!(f, "simpson"),
            SimilarityMeasure::Jaccard => write!(f, "jaccard"),
            SimilarityMeasure::Constant => write!(f, "constant"),
        }
    }
}

/// The similarity estimator: configuration of steps 2–3 of the paper's
/// method.
#[derive(Debug, Clone)]
pub struct SimilarityEstimator {
    /// Traffic granularity used for extraction (paper settles on
    /// uniflow, §5).
    pub granularity: Granularity,
    /// Edge-weight measure (paper: Simpson).
    pub measure: SimilarityMeasure,
    /// Edges below this weight are dropped (0.0 = keep all
    /// intersecting pairs, the paper's setting).
    pub min_similarity: f64,
    /// Louvain resolution (1.0 = classical modularity).
    pub resolution: f64,
}

impl Default for SimilarityEstimator {
    fn default() -> Self {
        SimilarityEstimator {
            granularity: Granularity::Uniflow,
            measure: SimilarityMeasure::Simpson,
            min_similarity: 0.0,
            resolution: 1.0,
        }
    }
}

impl SimilarityEstimator {
    /// Runs extraction, graph construction and community mining over
    /// a set of alarms.
    pub fn estimate(&self, view: &TraceView<'_>, alarms: Vec<Alarm>) -> AlarmCommunities {
        let traffic = extract_traffic(view, &alarms, self.granularity);
        self.estimate_from_traffic(alarms, traffic)
    }

    /// Graph construction and community mining over already-extracted
    /// per-alarm traffic sets — the entry point of the streaming
    /// pipeline, whose extraction happens chunk by chunk. `estimate`
    /// delegates here, so batch and streaming share the exact same
    /// graph/partition code.
    pub fn estimate_from_traffic(
        &self,
        alarms: Vec<Alarm>,
        traffic: Vec<Vec<u32>>,
    ) -> AlarmCommunities {
        self.estimate_from_traffic_timed(alarms, traffic).0
    }

    /// [`estimate_from_traffic`](Self::estimate_from_traffic) with a
    /// wall-clock breakdown of the two mining stages — the pipelines
    /// report graph and Louvain cost separately (§6 names this stage
    /// as the runtime bottleneck).
    pub fn estimate_from_traffic_timed(
        &self,
        alarms: Vec<Alarm>,
        traffic: Vec<Vec<u32>>,
    ) -> (AlarmCommunities, EstimateTimings) {
        self.estimate_from_traffic_seeded(alarms, traffic, None)
    }

    /// [`estimate_from_traffic_timed`](Self::estimate_from_traffic_timed)
    /// with an optional warm-start seed for the Louvain stage: a prior
    /// partition over the same alarm indices (typically yesterday's
    /// communities projected through matched alarm signatures, see the
    /// core crate's warm state). `None` is the cold path, bit for bit.
    pub fn estimate_from_traffic_seeded(
        &self,
        alarms: Vec<Alarm>,
        traffic: Vec<Vec<u32>>,
        seed: Option<&Partition>,
    ) -> (AlarmCommunities, EstimateTimings) {
        assert_eq!(
            alarms.len(),
            traffic.len(),
            "one traffic set per alarm required"
        );
        let t0 = Instant::now();
        let graph = self.build_graph(&traffic);
        let graph_t = t0.elapsed();
        let t1 = Instant::now();
        let partition = match seed {
            Some(seed) => louvain_seeded(&graph, self.resolution, seed),
            None => louvain(&graph, self.resolution),
        };
        let louvain_t = t1.elapsed();
        (
            AlarmCommunities::new(alarms, traffic, graph, partition, self.granularity),
            EstimateTimings {
                graph: graph_t,
                louvain: louvain_t,
            },
        )
    }

    /// Builds the similarity graph from per-alarm traffic sets with
    /// the sharded counting engine: per time bin of the traffic-id
    /// space, co-occurring pairs are discovered *with their exact
    /// intersection sizes* (see [`crate::shard::cooccurrence`] — the
    /// emission multiplicity of a pair over all item buckets is
    /// `|A∩B|`), so the weight is one arithmetic step per pair and
    /// the per-pair sorted-merge scoring pass of earlier revisions is
    /// gone. Edges are folded into the graph in `(a, b)` order;
    /// output is byte-identical to
    /// [`build_graph_sequential`](Self::build_graph_sequential) at
    /// any `MAWILAB_THREADS` setting.
    pub fn build_graph(&self, traffic: &[Vec<u32>]) -> Graph {
        let mut g = Graph::new(traffic.len());
        for (a, b, inter) in crate::shard::cooccurrence(traffic) {
            let (sa, sb) = (&traffic[a as usize], &traffic[b as usize]);
            let w = self.measure.value(inter as usize, sa.len(), sb.len());
            if w > self.min_similarity && w > 0.0 {
                g.add_edge(a as usize, b as usize, w);
            }
        }
        g
    }

    /// The retained single-threaded reference implementation: one
    /// global inverted index, `HashSet` pair dedup, sequential
    /// scoring. Kept as the equivalence oracle for the sharded engine
    /// (`tests/shard_equivalence.rs` property-tests
    /// [`build_graph`](Self::build_graph) against it) and as the
    /// before/after baseline in the hot-path benches.
    pub fn build_graph_sequential(&self, traffic: &[Vec<u32>]) -> Graph {
        let mut g = Graph::new(traffic.len());
        // item → alarms containing it.
        let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
        for (ai, set) in traffic.iter().enumerate() {
            for &item in set {
                index.entry(item).or_default().push(ai as u32);
            }
        }
        // Candidate pairs = pairs sharing ≥1 item.
        let mut pairs: HashSet<(u32, u32)> = HashSet::new();
        for alarms in index.values() {
            for i in 0..alarms.len() {
                for j in (i + 1)..alarms.len() {
                    pairs.insert((alarms[i], alarms[j]));
                }
            }
        }
        let mut edges: Vec<(u32, u32)> = pairs.into_iter().collect();
        edges.sort_unstable();
        for (a, b) in edges {
            let (sa, sb) = (&traffic[a as usize], &traffic[b as usize]);
            let inter = intersection_size(sa, sb);
            let w = self.measure.value(inter, sa.len(), sb.len());
            if w > self.min_similarity && w > 0.0 {
                g.add_edge(a as usize, b as usize, w);
            }
        }
        g
    }
}

/// Wall-clock breakdown of
/// [`SimilarityEstimator::estimate_from_traffic_timed`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimateTimings {
    /// Sharded similarity-graph construction.
    pub graph: Duration,
    /// Louvain community mining.
    pub louvain: Duration,
}

/// Output of the similarity estimator: alarms, their traffic sets, and
/// the community partition.
///
/// The public fields are for *read* access: accessors are backed by a
/// member-list cache computed once at construction, so mutating
/// `partition` / `alarms` / `traffic` in place desynchronizes them.
/// To re-partition, build a fresh value via [`AlarmCommunities::new`].
#[derive(Debug, Clone)]
pub struct AlarmCommunities {
    /// The analyzed alarms (node ids = indices).
    pub alarms: Vec<Alarm>,
    /// Per-alarm traffic id sets (aligned with `alarms`).
    pub traffic: Vec<Vec<u32>>,
    /// The similarity graph.
    pub graph: Graph,
    /// Louvain partition of the graph.
    pub partition: Partition,
    /// Granularity the traffic sets are expressed in.
    pub granularity: Granularity,
    /// Per-community member lists, computed once at construction —
    /// `detectors_in` / `config_hit` / `community_window` and the vote
    /// table all iterate members repeatedly, and the former O(n)
    /// scan per call dominated labeling on alarm-heavy days.
    members: Vec<Vec<usize>>,
}

impl AlarmCommunities {
    /// Bundles estimator output, precomputing the per-community
    /// member lists every downstream accessor shares.
    pub fn new(
        alarms: Vec<Alarm>,
        traffic: Vec<Vec<u32>>,
        graph: Graph,
        partition: Partition,
        granularity: Granularity,
    ) -> Self {
        assert_eq!(
            alarms.len(),
            traffic.len(),
            "one traffic set per alarm required"
        );
        assert_eq!(
            alarms.len(),
            partition.community.len(),
            "partition over different alarms"
        );
        let members = partition.members();
        AlarmCommunities {
            alarms,
            traffic,
            graph,
            partition,
            granularity,
            members,
        }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.partition.community_count()
    }

    /// Alarm indices of community `c` (ascending).
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Sizes of all communities, indexed by community id.
    pub fn sizes(&self) -> Vec<usize> {
        self.partition.sizes()
    }

    /// Number of single (size-1) communities — the estimator's
    /// false-relation signal (paper Fig. 3(a)).
    pub fn single_count(&self) -> usize {
        self.sizes().iter().filter(|&&s| s == 1).count()
    }

    /// Union of the traffic ids of a community's alarms.
    pub fn community_traffic(&self, c: usize) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &m in self.members(c) {
            out.extend_from_slice(&self.traffic[m]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct detector families with an alarm in community `c`.
    pub fn detectors_in(&self, c: usize) -> Vec<DetectorKind> {
        let mut kinds: Vec<DetectorKind> = self
            .members(c)
            .iter()
            .map(|&m| self.alarms[m].detector)
            .collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Whether configuration (detector, tuning) has ≥1 alarm in `c`.
    pub fn config_hit(&self, c: usize, detector: DetectorKind, tuning: Tuning) -> bool {
        self.members(c)
            .iter()
            .any(|&m| self.alarms[m].detector == detector && self.alarms[m].tuning == tuning)
    }

    /// Earliest-start / latest-end window over a community's alarms.
    pub fn community_window(&self, c: usize) -> Option<mawilab_model::TimeWindow> {
        let mut it = self.members(c).iter().map(|&m| self.alarms[m].window);
        let first = it.next()?;
        Some(it.fold(first, |acc, w| acc.union(&w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_detectors::{AlarmScope, DetectorKind, Tuning};
    use mawilab_model::TimeWindow;
    use std::net::Ipv4Addr;

    fn mk_alarm(d: DetectorKind, t: Tuning) -> Alarm {
        Alarm {
            detector: d,
            tuning: t,
            window: TimeWindow::new(0, 1),
            scope: AlarmScope::SrcHost(Ipv4Addr::new(1, 1, 1, 1)),
            score: 1.0,
        }
    }

    /// Builds communities directly from synthetic traffic sets.
    fn estimate_sets(sets: Vec<Vec<u32>>, alarms: Vec<Alarm>) -> AlarmCommunities {
        let est = SimilarityEstimator::default();
        let graph = est.build_graph(&sets);
        let partition = louvain(&graph, 1.0);
        AlarmCommunities::new(alarms, sets, graph, partition, Granularity::Uniflow)
    }

    #[test]
    fn measure_values() {
        let m = SimilarityMeasure::Simpson;
        assert_eq!(m.value(2, 2, 10), 1.0); // containment
        assert_eq!(m.value(1, 2, 4), 0.5);
        assert_eq!(m.value(0, 2, 4), 0.0);
        let j = SimilarityMeasure::Jaccard;
        assert_eq!(j.value(2, 4, 4), 2.0 / 6.0);
        let c = SimilarityMeasure::Constant;
        assert_eq!(c.value(1, 100, 100), 1.0);
        assert_eq!(c.value(0, 100, 100), 0.0);
    }

    #[test]
    fn simpson_bounds_and_symmetry() {
        for (i, a, b) in [(1usize, 3usize, 7usize), (3, 3, 9), (2, 5, 5), (4, 4, 4)] {
            for m in [
                SimilarityMeasure::Simpson,
                SimilarityMeasure::Jaccard,
                SimilarityMeasure::Constant,
            ] {
                let v1 = m.value(i, a, b);
                let v2 = m.value(i, b, a);
                assert_eq!(v1, v2, "asymmetric {m}");
                assert!((0.0..=1.0).contains(&v1));
            }
        }
    }

    #[test]
    fn identical_alarms_cluster() {
        let sets = vec![vec![1, 2, 3], vec![1, 2, 3], vec![10, 11]];
        let alarms = vec![
            mk_alarm(DetectorKind::Pca, Tuning::Optimal),
            mk_alarm(DetectorKind::Kl, Tuning::Optimal),
            mk_alarm(DetectorKind::Gamma, Tuning::Optimal),
        ];
        let c = estimate_sets(sets, alarms);
        assert_eq!(c.community_count(), 2);
        assert_eq!(c.partition.of(0), c.partition.of(1));
        assert_ne!(c.partition.of(0), c.partition.of(2));
        assert_eq!(c.single_count(), 1);
    }

    #[test]
    fn contained_alarm_joins_the_container() {
        // Paper's host-vs-flow example: A1 (host) contains B1, B2
        // (flows); Simpson gives weight 1 to both edges.
        let sets = vec![vec![1, 2, 3, 4, 5, 6], vec![1, 2], vec![5, 6]];
        let alarms = vec![
            mk_alarm(DetectorKind::Pca, Tuning::Optimal),
            mk_alarm(DetectorKind::Hough, Tuning::Optimal),
            mk_alarm(DetectorKind::Hough, Tuning::Sensitive),
        ];
        let c = estimate_sets(sets, alarms);
        assert_eq!(c.community_count(), 1);
        assert_eq!(
            c.detectors_in(0),
            vec![DetectorKind::Pca, DetectorKind::Hough]
        );
    }

    #[test]
    fn empty_sets_are_isolated() {
        let sets = vec![vec![], vec![1], vec![1]];
        let alarms = vec![
            mk_alarm(DetectorKind::Pca, Tuning::Optimal),
            mk_alarm(DetectorKind::Kl, Tuning::Optimal),
            mk_alarm(DetectorKind::Kl, Tuning::Sensitive),
        ];
        let c = estimate_sets(sets, alarms);
        assert_eq!(c.community_count(), 2);
        assert_eq!(c.single_count(), 1);
    }

    #[test]
    fn community_traffic_is_union() {
        let sets = vec![vec![1, 2], vec![2, 3]];
        let alarms = vec![
            mk_alarm(DetectorKind::Pca, Tuning::Optimal),
            mk_alarm(DetectorKind::Kl, Tuning::Optimal),
        ];
        let c = estimate_sets(sets, alarms);
        assert_eq!(c.community_count(), 1);
        assert_eq!(c.community_traffic(0), vec![1, 2, 3]);
    }

    #[test]
    fn config_hit_distinguishes_tunings() {
        let sets = vec![vec![1], vec![1]];
        let alarms = vec![
            mk_alarm(DetectorKind::Kl, Tuning::Optimal),
            mk_alarm(DetectorKind::Kl, Tuning::Sensitive),
        ];
        let c = estimate_sets(sets, alarms);
        assert!(c.config_hit(0, DetectorKind::Kl, Tuning::Optimal));
        assert!(c.config_hit(0, DetectorKind::Kl, Tuning::Sensitive));
        assert!(!c.config_hit(0, DetectorKind::Kl, Tuning::Conservative));
        assert!(!c.config_hit(0, DetectorKind::Pca, Tuning::Optimal));
    }

    #[test]
    fn min_similarity_prunes_weak_edges() {
        let sets = vec![(0..100).collect::<Vec<u32>>(), (99..200).collect()];
        // Overlap of exactly one item: Simpson = 1/100.
        let mut est = SimilarityEstimator {
            min_similarity: 0.05,
            ..Default::default()
        };
        let g = est.build_graph(&sets);
        assert_eq!(g.edge_count(), 0);
        est.min_similarity = 0.0;
        let g2 = est.build_graph(&sets);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn no_alarms_no_communities() {
        let c = estimate_sets(vec![], vec![]);
        assert_eq!(c.community_count(), 0);
        assert_eq!(c.single_count(), 0);
    }

    #[test]
    fn community_window_unions_member_windows() {
        let mut a1 = mk_alarm(DetectorKind::Pca, Tuning::Optimal);
        a1.window = TimeWindow::new(10, 20);
        let mut a2 = mk_alarm(DetectorKind::Kl, Tuning::Optimal);
        a2.window = TimeWindow::new(15, 40);
        let c = estimate_sets(vec![vec![1], vec![1]], vec![a1, a2]);
        assert_eq!(c.community_window(0), Some(TimeWindow::new(10, 40)));
    }

    #[test]
    fn graph_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..20).map(|i| ((i * 3)..(i * 3 + 10)).collect()).collect();
        let est = SimilarityEstimator::default();
        let g1 = est.build_graph(&sets);
        let g2 = est.build_graph(&sets);
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in 0..g1.node_count() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn sharded_build_matches_sequential_reference() {
        let sets: Vec<Vec<u32>> = (0..60)
            .map(|i| {
                let base = (i % 7) * 50;
                (base..base + 30 + i % 11).collect()
            })
            .collect();
        for measure in [
            SimilarityMeasure::Simpson,
            SimilarityMeasure::Jaccard,
            SimilarityMeasure::Constant,
        ] {
            let est = SimilarityEstimator {
                measure,
                ..Default::default()
            };
            let sharded = est.build_graph(&sets);
            let reference = est.build_graph_sequential(&sets);
            assert_eq!(sharded.edge_count(), reference.edge_count(), "{measure}");
            for v in 0..reference.node_count() {
                assert_eq!(
                    sharded.neighbors(v),
                    reference.neighbors(v),
                    "{measure} node {v}"
                );
            }
        }
    }
}
