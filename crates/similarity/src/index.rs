//! Inverted alarm index: flow key → candidate alarms, stabbed by time.
//!
//! The seed extractors test every packet against every alarm —
//! O(alarms × packets) scope tests with a fresh hash set per alarm.
//! This module inverts the direction: alarms are indexed **once** by
//! the concrete 5-tuple fields their scopes constrain, so resolving a
//! packet costs one candidate lookup per *distinct flow key* plus an
//! interval stab over the candidates' time windows. Every
//! [`AlarmScope`] is a pure function of the 5-tuple
//! ([`AlarmScope::matches_key`]), which is what makes per-key
//! memoization sound.
//!
//! Three structures cooperate:
//!
//! * [`AlarmIndex`] — host/flow scopes become hash buckets; `Rule`
//!   scopes are deduplicated (detectors re-emit the same mined rule
//!   across many analysis windows) and bucketed by their most
//!   selective concrete field, with a verification pass on the
//!   remaining wildcards.
//! * [`AlarmRun`] — one flow key's candidate alarms as an
//!   interval-stabbable run: entries sorted by window start with a
//!   prefix-max of window ends, so a timestamp probe touches only
//!   candidates whose windows can still contain it.
//! * [`KeyMemo`] / [`HitSink`] — candidates are resolved once per
//!   distinct key, and per-alarm hits accumulate as append-only runs
//!   (adjacent duplicates collapsed) that are sorted and deduplicated
//!   once at the end, instead of hashing every hit.
//!
//! All consumers canonicalize by a final sort + dedup, so the output
//! is byte-identical to the seed per-alarm scan at any thread count.

use mawilab_detectors::{Alarm, AlarmScope};
use mawilab_model::{FlowKey, TrafficRule};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One flow key's candidate alarms, interval-stabbable by timestamp.
#[derive(Debug, Clone, Default)]
pub(crate) struct AlarmRun {
    /// `(window start, window end, alarm index)`, sorted.
    entries: Vec<(u64, u64, u32)>,
    /// `prefix_max_end[j]` = max window end over `entries[..=j]`.
    prefix_max_end: Vec<u64>,
}

impl AlarmRun {
    /// `ids` must be duplicate-free — [`AlarmIndex::candidates_for`]
    /// guarantees it (each scope is exactly one variant and each
    /// distinct rule lives in exactly one bucket), which saves a
    /// sort + dedup here on the per-distinct-flow hot path.
    fn build(ids: Vec<u32>, alarms: &[Alarm]) -> Self {
        debug_assert!(
            {
                let mut check = ids.clone();
                check.sort_unstable();
                check.dedup();
                check.len() == ids.len()
            },
            "candidate alarm ids must be unique"
        );
        let mut entries: Vec<(u64, u64, u32)> = ids
            .into_iter()
            .map(|a| {
                let w = &alarms[a as usize].window;
                (w.start_us, w.end_us, a)
            })
            .collect();
        entries.sort_unstable();
        let mut prefix_max_end = Vec::with_capacity(entries.len());
        let mut max_end = 0u64;
        for &(_, end, _) in &entries {
            max_end = max_end.max(end);
            prefix_max_end.push(max_end);
        }
        debug_assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "AlarmRun entries must be sorted for partition_point stabbing"
        );
        debug_assert!(
            prefix_max_end.windows(2).all(|w| w[0] <= w[1])
                && entries
                    .iter()
                    .zip(&prefix_max_end)
                    .all(|(&(_, end, _), &pm)| pm >= end),
            "prefix_max_end must be the running max of window ends"
        );
        AlarmRun {
            entries,
            prefix_max_end,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Calls `hit` for every candidate alarm whose window contains
    /// `ts` (half-open `[start, end)`). Candidates starting after `ts`
    /// are skipped by binary search; the prefix-max of ends terminates
    /// the backward scan as soon as no earlier window can still reach
    /// `ts`.
    #[inline]
    pub(crate) fn stab(&self, ts: u64, mut hit: impl FnMut(u32)) {
        let p = self.entries.partition_point(|&(start, _, _)| start <= ts);
        for j in (0..p).rev() {
            if self.prefix_max_end[j] <= ts {
                break;
            }
            let (_, end, a) = self.entries[j];
            if end > ts {
                hit(a);
            }
        }
    }

    /// Calls `hit` for every candidate alarm whose window overlaps the
    /// inclusive timestamp range `[first_ts, last_ts]`.
    pub(crate) fn stab_span(&self, first_ts: u64, last_ts: u64, mut hit: impl FnMut(u32)) {
        let p = self
            .entries
            .partition_point(|&(start, _, _)| start <= last_ts);
        for j in (0..p).rev() {
            if self.prefix_max_end[j] <= first_ts {
                break;
            }
            let (_, end, a) = self.entries[j];
            if end > first_ts {
                hit(a);
            }
        }
    }
}

/// Alarm scopes inverted into hash buckets on their concrete 5-tuple
/// fields. Build once per alarm set; query per distinct flow key.
#[derive(Debug)]
pub(crate) struct AlarmIndex<'a> {
    alarms: &'a [Alarm],
    by_src: HashMap<Ipv4Addr, Vec<u32>>,
    by_dst: HashMap<Ipv4Addr, Vec<u32>>,
    by_flow: HashMap<FlowKey, Vec<u32>>,
    /// Distinct `Rule` scopes with the alarms carrying each (detectors
    /// re-emit one mined rule across many windows — resolve it once).
    rules: Vec<(&'a TrafficRule, Vec<u32>)>,
    /// Rule ids bucketed by their most selective concrete field; a
    /// bucket hit still verifies the rule's remaining constraints.
    rule_by_src: HashMap<Ipv4Addr, Vec<u32>>,
    rule_by_dst: HashMap<Ipv4Addr, Vec<u32>>,
    rule_by_dport: HashMap<u16, Vec<u32>>,
    rule_by_sport: HashMap<u16, Vec<u32>>,
    /// Rules with no concrete endpoint field (proto-only/any).
    rule_wild: Vec<u32>,
}

impl<'a> AlarmIndex<'a> {
    pub(crate) fn new(alarms: &'a [Alarm]) -> Self {
        let mut ix = AlarmIndex {
            alarms,
            by_src: HashMap::new(),
            by_dst: HashMap::new(),
            by_flow: HashMap::new(),
            rules: Vec::new(),
            rule_by_src: HashMap::new(),
            rule_by_dst: HashMap::new(),
            rule_by_dport: HashMap::new(),
            rule_by_sport: HashMap::new(),
            rule_wild: Vec::new(),
        };
        let mut rule_ids: HashMap<&TrafficRule, u32> = HashMap::new();
        for (ai, alarm) in alarms.iter().enumerate() {
            let ai = ai as u32;
            match &alarm.scope {
                AlarmScope::SrcHost(ip) => ix.by_src.entry(*ip).or_default().push(ai),
                AlarmScope::DstHost(ip) => ix.by_dst.entry(*ip).or_default().push(ai),
                AlarmScope::FlowSet(keys) => {
                    for k in keys {
                        let bucket = ix.by_flow.entry(*k).or_default();
                        // A scope listing one key twice must not
                        // register the alarm twice.
                        if bucket.last() != Some(&ai) {
                            bucket.push(ai);
                        }
                    }
                }
                AlarmScope::Rule(rule) => {
                    let next_id = ix.rules.len() as u32;
                    let rid = *rule_ids.entry(rule).or_insert(next_id);
                    if rid == next_id {
                        ix.rules.push((rule, Vec::new()));
                        if let Some(ip) = rule.src {
                            ix.rule_by_src.entry(ip).or_default().push(rid);
                        } else if let Some(ip) = rule.dst {
                            ix.rule_by_dst.entry(ip).or_default().push(rid);
                        } else if let Some(port) = rule.dport {
                            ix.rule_by_dport.entry(port).or_default().push(rid);
                        } else if let Some(port) = rule.sport {
                            ix.rule_by_sport.entry(port).or_default().push(rid);
                        } else {
                            ix.rule_wild.push(rid);
                        }
                    }
                    ix.rules[rid as usize].1.push(ai);
                }
            }
        }
        ix
    }

    /// Resolves every alarm whose scope matches `key` into a stabbable
    /// run. Each alarm appears at most once: a scope is exactly one
    /// variant and each distinct rule lives in exactly one bucket.
    pub(crate) fn candidates_for(&self, key: &FlowKey) -> AlarmRun {
        let mut ids: Vec<u32> = Vec::new();
        if let Some(v) = self.by_src.get(&key.src) {
            ids.extend_from_slice(v);
        }
        if let Some(v) = self.by_dst.get(&key.dst) {
            ids.extend_from_slice(v);
        }
        if let Some(v) = self.by_flow.get(key) {
            ids.extend_from_slice(v);
        }
        let mut probe_rules = |rids: &[u32]| {
            for &rid in rids {
                let (rule, alarms) = &self.rules[rid as usize];
                if rule.matches_key(key) {
                    ids.extend_from_slice(alarms);
                }
            }
        };
        if let Some(v) = self.rule_by_src.get(&key.src) {
            probe_rules(v);
        }
        if let Some(v) = self.rule_by_dst.get(&key.dst) {
            probe_rules(v);
        }
        if let Some(v) = self.rule_by_dport.get(&key.dport) {
            probe_rules(v);
        }
        if let Some(v) = self.rule_by_sport.get(&key.sport) {
            probe_rules(v);
        }
        probe_rules(&self.rule_wild);
        AlarmRun::build(ids, self.alarms)
    }
}

/// Memoizes [`AlarmIndex::candidates_for`] per distinct flow key, for
/// the streaming paths where packets of one flow recur across chunks.
#[derive(Debug, Default)]
pub(crate) struct KeyMemo {
    slots: HashMap<FlowKey, u32>,
    runs: Vec<AlarmRun>,
}

impl KeyMemo {
    pub(crate) fn run_for(&mut self, index: &AlarmIndex<'_>, key: &FlowKey) -> &AlarmRun {
        let runs = &mut self.runs;
        let slot = *self.slots.entry(*key).or_insert_with(|| {
            runs.push(index.candidates_for(key));
            (runs.len() - 1) as u32
        });
        &self.runs[slot as usize]
    }
}

/// Per-alarm hit accumulator: append-only runs with adjacent
/// duplicates collapsed, canonicalized (sorted + deduplicated) once at
/// [`finish`](HitSink::finish) — sorted-run dedup instead of one hash
/// insertion per hit.
#[derive(Debug)]
pub(crate) struct HitSink {
    hits: Vec<Vec<u32>>,
}

impl HitSink {
    pub(crate) fn new(alarm_count: usize) -> Self {
        HitSink {
            hits: vec![Vec::new(); alarm_count],
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, alarm: u32, id: u32) {
        let run = &mut self.hits[alarm as usize];
        if run.last() != Some(&id) {
            run.push(id);
        }
    }

    /// Folds another sink's runs onto this one (shard merge; the final
    /// canonical sort erases the concatenation order).
    pub(crate) fn absorb(&mut self, other: HitSink) {
        for (run, mut extra) in self.hits.iter_mut().zip(other.hits) {
            if run.is_empty() {
                *run = std::mem::take(&mut extra);
            } else {
                run.extend_from_slice(&extra);
            }
        }
    }

    /// One sorted, deduplicated id set per alarm, in alarm order.
    pub(crate) fn finish(self) -> Vec<Vec<u32>> {
        let mut hits = self.hits;
        mawilab_exec::par_for_each_mut(&mut hits, |run| {
            run.sort_unstable();
            run.dedup();
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_detectors::{DetectorKind, Tuning};
    use mawilab_model::TimeWindow;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 4, 4, d)
    }

    fn key(src: u8, sport: u16, dst: u8, dport: u16) -> FlowKey {
        FlowKey {
            src: ip(src),
            dst: ip(dst),
            sport,
            dport,
            proto: mawilab_model::Protocol::Tcp,
        }
    }

    fn alarm(scope: AlarmScope, window: TimeWindow) -> Alarm {
        Alarm {
            detector: DetectorKind::Pca,
            tuning: Tuning::Optimal,
            window,
            scope,
            score: 1.0,
        }
    }

    /// Every (key, ts) probe must agree with the direct per-alarm
    /// `matches_key` + window test.
    #[test]
    fn candidates_agree_with_direct_matching() {
        let w1 = TimeWindow::new(0, 100);
        let w2 = TimeWindow::new(50, 150);
        let alarms = vec![
            alarm(AlarmScope::SrcHost(ip(1)), w1),
            alarm(AlarmScope::DstHost(ip(2)), w2),
            alarm(AlarmScope::FlowSet(vec![key(1, 10, 2, 20)]), w1),
            alarm(
                AlarmScope::Rule(TrafficRule {
                    dport: Some(20),
                    ..Default::default()
                }),
                w2,
            ),
            alarm(AlarmScope::Rule(TrafficRule::any()), w1),
            alarm(
                AlarmScope::Rule(TrafficRule {
                    src: Some(ip(3)),
                    dport: Some(99),
                    ..Default::default()
                }),
                TimeWindow::new(10, 20),
            ),
        ];
        let index = AlarmIndex::new(&alarms);
        let keys = [
            key(1, 10, 2, 20),
            key(3, 5, 4, 99),
            key(3, 5, 4, 98),
            key(9, 9, 9, 9),
        ];
        for k in &keys {
            for ts in [0u64, 10, 49, 50, 99, 100, 149, 200] {
                let mut got: Vec<u32> = Vec::new();
                index.candidates_for(k).stab(ts, |a| got.push(a));
                got.sort_unstable();
                let want: Vec<u32> = alarms
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.window.contains(ts) && a.scope.matches_key(k))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "key {k:?} ts {ts}");
            }
        }
    }

    #[test]
    fn shared_rule_scopes_are_deduplicated() {
        let rule = TrafficRule {
            dport: Some(445),
            ..Default::default()
        };
        let alarms: Vec<Alarm> = (0..10)
            .map(|i| alarm(AlarmScope::Rule(rule), TimeWindow::new(i * 10, i * 10 + 10)))
            .collect();
        let index = AlarmIndex::new(&alarms);
        assert_eq!(index.rules.len(), 1, "one distinct rule expected");
        let mut got = Vec::new();
        index
            .candidates_for(&key(1, 1, 2, 445))
            .stab(25, |a| got.push(a));
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn stab_span_finds_overlapping_windows() {
        let alarms = vec![
            alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::new(0, 10)),
            alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::new(20, 30)),
            alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::new(5, 25)),
        ];
        let index = AlarmIndex::new(&alarms);
        let run = index.candidates_for(&key(1, 1, 2, 2));
        let mut got = Vec::new();
        run.stab_span(12, 18, |a| got.push(a));
        got.sort_unstable();
        assert_eq!(got, vec![2], "only the straddling window overlaps");
        got.clear();
        run.stab_span(9, 20, |a| got.push(a));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn hit_sink_collapses_and_canonicalizes() {
        let mut sink = HitSink::new(2);
        for id in [5u32, 5, 5, 3, 3, 5] {
            sink.push(0, id);
        }
        sink.push(1, 9);
        let mut other = HitSink::new(2);
        other.push(0, 1);
        sink.absorb(other);
        assert_eq!(sink.finish(), vec![vec![1, 3, 5], vec![9]]);
    }

    #[test]
    fn key_memo_resolves_each_key_once() {
        let alarms = vec![alarm(AlarmScope::SrcHost(ip(1)), TimeWindow::all())];
        let index = AlarmIndex::new(&alarms);
        let mut memo = KeyMemo::default();
        let k = key(1, 1, 2, 2);
        assert!(!memo.run_for(&index, &k).is_empty());
        assert!(!memo.run_for(&index, &k).is_empty());
        assert_eq!(memo.runs.len(), 1, "second probe must reuse the slot");
    }
}
