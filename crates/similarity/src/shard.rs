//! Sharded co-occurrence counting for the similarity graph.
//!
//! The graph build's dominant cost is discovering which alarm pairs
//! share traffic units and how many. The sequential reference does it
//! with one global inverted index, a `HashSet<(u32, u32)>` and a
//! per-pair sorted-merge intersection; this module shards the work so
//! independent slices run on separate threads and the per-slice work
//! is hash-free.
//!
//! **Why shard by traffic-id range, not by alarm window.** Traffic-unit
//! ids are assigned in first-appearance order ([`FlowTable`] /
//! [`ItemIndex`] both number flows as they first show up, and packet
//! ids are trace positions), so a contiguous id range *is* a time bin
//! of the traffic. Sharding the inverted index by id range is exact by
//! construction: a pair lands in shard `k` iff the two alarms co-occur
//! on an item of bin `k`, and the deduplicated union over bins is
//! precisely the global candidate set. Binning by *alarm window*
//! instead — tempting, since detection windows look like natural
//! shards — is **not** exact at flow granularity: a long-lived flow
//! puts the same flow id into two alarms whose windows never overlap,
//! and window-disjoint shards would silently drop that edge. Id-range
//! bins keep the parallel build byte-identical to the reference (the
//! property test in `tests/shard_equivalence.rs` checks exactly this).
//!
//! Each bin builds a dense per-bin inverted index (a `Vec` indexed by
//! `item - bin_start` — ids are dense, so this replaces the global
//! `HashMap`), then **counts** each pair's co-occurrences instead of
//! merely deduplicating them: an item id lives in exactly one bin, so
//! the multiplicity of `(a, b)` summed across all buckets is exactly
//! `|A∩B|`, and the graph build gets its exact intersection sizes
//! without ever running the per-pair sorted-merge scoring pass that
//! used to dominate the stage. Sparse id spaces (ids much larger than
//! the number of occurrences, which dense time-ordered ids never
//! produce but arbitrary callers can) fall back to a per-bin
//! `HashMap` index with identical output.
//!
//! [`FlowTable`]: mawilab_model::FlowTable
//! [`ItemIndex`]: mawilab_model::ItemIndex

use std::collections::HashMap;

/// How many id-range bins to cut the item space into: a few bins per
/// worker so atomic work pulling balances bins of uneven density.
const BINS_PER_WORKER: usize = 4;

/// Dense-index fallback threshold: when the id space is more than
/// this many times larger than the number of id occurrences, the
/// per-bin index uses a `HashMap` instead of a dense `Vec`.
const DENSE_SLACK: usize = 8;

/// Co-occurrence counting: every pair `(a, b)` with `a < b` sharing
/// at least one traffic item, with **how many** items they share —
/// sorted by `(a, b)`. This is candidate-pair discovery and exact
/// intersection sizing fused into one pass: each item id lives in
/// exactly one bin, so a pair's emission multiplicity summed over
/// buckets *is* `|A∩B|`. The per-pair sorted-merge scoring the graph
/// build used to run after discovery disappears entirely — discovery
/// already touched every co-occurrence, so counting them during the
/// existing sort/dedup is free by comparison.
///
/// Requires strictly increasing traffic sets (the extractor's output
/// invariant — a duplicated item would be double-counted).
pub(crate) fn cooccurrence(traffic: &[Vec<u32>]) -> Vec<(u32, u32, u32)> {
    cooccurrence_with_bins(traffic, mawilab_exec::thread_count() * BINS_PER_WORKER)
}

/// [`cooccurrence`] with an explicit bin count — the output is
/// bin-count invariant (tests sweep this directly).
fn cooccurrence_with_bins(traffic: &[Vec<u32>], requested_bins: usize) -> Vec<(u32, u32, u32)> {
    let Some(max_id) = traffic.iter().filter_map(|s| s.last().copied()).max() else {
        return Vec::new();
    };
    let id_space = max_id as usize + 1;
    let occurrences: usize = traffic.iter().map(|s| s.len()).sum();
    let dense = id_space <= occurrences.saturating_mul(DENSE_SLACK) + 1024;

    let bins = requested_bins.clamp(1, id_space);
    let width = id_space.div_ceil(bins);
    let ranges: Vec<(u64, u64)> = (0..bins)
        .map(|b| {
            let lo = (b * width) as u64;
            let hi = ((b + 1) * width).min(id_space) as u64;
            (lo, hi)
        })
        .filter(|(lo, hi)| lo < hi)
        .collect();

    let per_bin: Vec<Vec<(u32, u32, u32)>> = mawilab_exec::par_map(&ranges, |&(lo, hi)| {
        if dense {
            let width = (hi - lo) as usize;
            let slices: Vec<&[u32]> = traffic.iter().map(|s| slice_in_range(s, lo, hi)).collect();
            let mut offsets = vec![0u32; width + 1];
            for s in &slices {
                for &item in *s {
                    offsets[(item as u64 - lo) as usize + 1] += 1;
                }
            }
            for k in 0..width {
                offsets[k + 1] += offsets[k];
            }
            let mut entries = vec![0u32; offsets[width] as usize];
            let mut cursor = offsets.clone();
            for (ai, s) in slices.iter().enumerate() {
                for &item in *s {
                    let k = (item as u64 - lo) as usize;
                    entries[cursor[k] as usize] = ai as u32;
                    cursor[k] += 1;
                }
            }
            counts_of_index(
                (0..width).map(|k| &entries[offsets[k] as usize..offsets[k + 1] as usize]),
            )
        } else {
            let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
            for (ai, set) in traffic.iter().enumerate() {
                for &item in slice_in_range(set, lo, hi) {
                    index.entry(item).or_default().push(ai as u32);
                }
            }
            counts_of_index(index.values().map(|v| v.as_slice()))
        }
    });

    // The same pair can co-occur in several bins: merge and sum. The
    // merged order is the reference's `(a, b)` ascending order, and
    // integer sums are iteration-order independent, so the result is
    // identical at any bin (= thread) count.
    let mut counts: Vec<(u32, u32, u32)> = per_bin.concat();
    counts.sort_unstable_by_key(|&(a, b, _)| (a, b));
    collapse_counts(&mut counts);
    counts
}

/// Expands per-item alarm lists into `(a, b, count)` triples, where
/// `count` is the number of items whose bucket contained both alarms.
/// Consecutive identical buckets — the shape of worst-case workloads
/// where every alarm shares a common item block — collapse into one
/// emission with a multiplier instead of `k²/2` duplicates each.
fn counts_of_index<'a>(lists: impl Iterator<Item = &'a [u32]>) -> Vec<(u32, u32, u32)> {
    let mut counts: Vec<(u32, u32, u32)> = Vec::new();
    let mut prev: &[u32] = &[];
    let mut mult: u32 = 0;
    let flush = |run: &[u32], m: u32, out: &mut Vec<(u32, u32, u32)>| {
        for i in 0..run.len() {
            for j in (i + 1)..run.len() {
                out.push((run[i], run[j], m));
            }
        }
    };
    for alarms in lists {
        if alarms.len() > 1 && alarms == prev {
            mult += 1;
            continue;
        }
        flush(prev, mult, &mut counts);
        prev = alarms;
        mult = 1;
    }
    flush(prev, mult, &mut counts);
    counts.sort_unstable_by_key(|&(a, b, _)| (a, b));
    collapse_counts(&mut counts);
    counts
}

/// Sums the counts of adjacent entries with equal `(a, b)` in place.
/// Input must be sorted by `(a, b)`.
fn collapse_counts(counts: &mut Vec<(u32, u32, u32)>) {
    counts.dedup_by(|cur, acc| {
        if (acc.0, acc.1) == (cur.0, cur.1) {
            acc.2 += cur.2;
            true
        } else {
            false
        }
    });
}

/// The sub-slice of a sorted id set falling in `[lo, hi)`.
fn slice_in_range(set: &[u32], lo: u64, hi: u64) -> &[u32] {
    let start = set.partition_point(|&x| (x as u64) < lo);
    let end = set.partition_point(|&x| (x as u64) < hi);
    &set[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The candidate set of the sequential reference, straight from
    /// its definition.
    fn reference_pairs(traffic: &[Vec<u32>]) -> Vec<(u32, u32)> {
        let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
        for (ai, set) in traffic.iter().enumerate() {
            for &item in set {
                index.entry(item).or_default().push(ai as u32);
            }
        }
        let mut pairs: std::collections::HashSet<(u32, u32)> = Default::default();
        for alarms in index.values() {
            for i in 0..alarms.len() {
                for j in (i + 1)..alarms.len() {
                    pairs.insert((alarms[i], alarms[j]));
                }
            }
        }
        let mut v: Vec<(u32, u32)> = pairs.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Intersection sizes straight from the definition, for every
    /// candidate pair.
    fn reference_counts(traffic: &[Vec<u32>]) -> Vec<(u32, u32, u32)> {
        reference_pairs(traffic)
            .into_iter()
            .map(|(a, b)| {
                let inter = traffic[a as usize]
                    .iter()
                    .filter(|x| traffic[b as usize].binary_search(x).is_ok())
                    .count() as u32;
                (a, b, inter)
            })
            .collect()
    }

    #[test]
    fn cooccurrence_counts_equal_reference_intersections() {
        // Pseudo-random traffic sets (LCG — keep the test seedless
        // and deterministic) across sizes and bin counts.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for n in [0usize, 1, 2, 7, 23, 60] {
            let traffic: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let mut s: Vec<u32> = (0..next(20) + 1).map(|_| next(120) as u32).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let expected = reference_counts(&traffic);
            for bins in [1, 3, 16] {
                assert_eq!(
                    cooccurrence_with_bins(&traffic, bins),
                    expected,
                    "n={n} bins={bins}"
                );
            }
        }
    }

    #[test]
    fn cooccurrence_counts_identical_common_block() {
        // Every alarm shares one 50-item block (the consecutive
        // identical-bucket shape the multiplier collapses): each pair
        // must count exactly the 50 shared items.
        let traffic: Vec<Vec<u32>> = (0..6u32)
            .map(|i| {
                let mut s: Vec<u32> = (0..50).collect();
                s.push(100 + i);
                s
            })
            .collect();
        for (a, b, inter) in cooccurrence(&traffic) {
            assert!(a < b);
            assert_eq!(inter, 50);
        }
        assert_eq!(cooccurrence(&traffic).len(), 15);
    }

    #[test]
    fn matches_reference_on_overlapping_sets() {
        let traffic = vec![
            vec![1, 2, 3, 900],
            vec![2, 3, 4],
            vec![100, 101],
            vec![3, 100, 900],
            vec![],
        ];
        assert_eq!(cooccurrence(&traffic), reference_counts(&traffic));
    }

    #[test]
    fn empty_inputs() {
        assert!(cooccurrence(&[]).is_empty());
        assert!(cooccurrence(&[vec![], vec![]]).is_empty());
        assert!(cooccurrence(&[vec![5, 9]]).is_empty());
    }

    #[test]
    fn sparse_id_space_takes_hashmap_path() {
        // Two items near u32::MAX: dense indexing would allocate 4G
        // slots; the sparse path must produce the same counts.
        let traffic = vec![vec![7, u32::MAX - 1], vec![u32::MAX - 1], vec![7]];
        assert_eq!(cooccurrence(&traffic), vec![(0, 1, 1), (0, 2, 1)]);
    }

    #[test]
    fn max_id_item_is_not_dropped() {
        // id_space = 2^32: the last bin's exclusive bound overflows
        // u32, so bin bounds must be u64 (regression test).
        let traffic = vec![vec![u32::MAX], vec![7, u32::MAX]];
        assert_eq!(cooccurrence(&traffic), vec![(0, 1, 1)]);
    }

    #[test]
    fn pair_spanning_many_bins_sums_across_bins() {
        // Alarms sharing items across the whole id range co-occur in
        // every bin; the merged counts must sum to the exact
        // intersection size, held once.
        let a: Vec<u32> = (0..1000).collect();
        let traffic = vec![a.clone(), a];
        assert_eq!(cooccurrence(&traffic), vec![(0, 1, 1000)]);
    }

    #[test]
    fn identical_across_bin_counts() {
        // The thread count only picks the bin count; sweeping bins
        // directly covers every sharding the env override can reach
        // without mutating process-wide state (the env path itself is
        // covered by tests/thread_determinism.rs).
        let traffic: Vec<Vec<u32>> = (0..40)
            .map(|i| ((i * 13) % 61..(i * 13) % 61 + 20).collect())
            .collect();
        let expect = reference_counts(&traffic);
        for bins in [1, 3, 16, 1024] {
            assert_eq!(
                cooccurrence_with_bins(&traffic, bins),
                expect,
                "{bins} bins"
            );
        }
    }
}
